"""Per-rule fixture tests: each contract rule catches its violation and
stays quiet on the compliant twin."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.staticcheck import Finding, ProjectIndex, get_rules


def build_index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    """Write a mini package tree and parse it into a ProjectIndex."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    paths = [root / "__init__.py"]
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        paths.append(path)
    return ProjectIndex.from_files(paths)


def run_rule(rule_id: str, index: ProjectIndex) -> list[Finding]:
    (rule,) = get_rules([rule_id])
    return rule.run(index)


# --------------------------------------------------------------------------- #
# SC001 — cell purity
# --------------------------------------------------------------------------- #

RUNNER_SCAFFOLD = """
class CellTask:
    def __init__(self, execute=None):
        self.execute = execute


class SweepRunner:
    pass
"""


class TestCellPurity:
    def test_flags_wall_clock_reachable_from_celltask(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def _helper():
    import time

    return time.monotonic()


def execute_cells(cells):
    return [_helper() for _ in cells]


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        findings = run_rule("SC001", index)
        assert any(
            "time.monotonic" in f.message and f.symbol.endswith("_helper")
            for f in findings
        )

    def test_flags_legacy_rng_and_environ_in_executor(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD
                + """

def custom_executor(cells):
    import os

    import numpy as np

    seed = os.environ["SEED"]
    return np.random.rand(len(cells)), seed
""",
            },
        )
        findings = run_rule("SC001", index)
        messages = " | ".join(f.message for f in findings)
        assert "numpy.random.rand" in messages
        assert "os.environ" in messages

    def test_flags_set_iteration_into_ordered_output(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    names = list({c for c in cells})
    for item in {1, 2, 3}:
        names.append(item)
    return names


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        findings = run_rule("SC001", index)
        assert len([f for f in findings if "set" in f.message]) == 2

    def test_clean_seeded_rng_and_sorted_sets_pass(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    import numpy as np

    rng = np.random.default_rng(1234)
    names = sorted({c for c in cells})
    return rng.random(len(names)), names


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        assert run_rule("SC001", index) == []

    def test_unreachable_impurity_is_not_flagged(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    return list(cells)


def benchmark_wrapper():
    import time

    return time.perf_counter()


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        assert run_rule("SC001", index) == []


# --------------------------------------------------------------------------- #
# SC002 — oracle parity
# --------------------------------------------------------------------------- #


class TestOracleParity:
    def test_flags_signature_drift(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def spmm_loop(values, dense, out=None):
    return out
""",
                "engine.py": """
def spmm(values, dense, *, out=None, alpha=1.0):
    return out
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "signature drift" in findings[0].message
        assert "alpha" in findings[0].message

    def test_flags_missing_counterpart(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def orphan_loop(values):
    return values
""",
                "engine.py": """
def something_else(values):
    return values
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "no engine counterpart" in findings[0].message

    def test_matching_pair_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def spmm_loop(values, dense, out=None):
    return out
""",
                "engine.py": """
def spmm(values, dense, out=None):
    return out
""",
            },
        )
        assert run_rule("SC002", index) == []

    def test_pairs_with_class_method_stripping_receivers(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def csr_from_dense_loop(dense, tol=0.0):
    return dense


def csr_to_dense_loop(matrix, order="C"):
    return matrix
""",
                "formats.py": """
class CSRMatrix:
    @classmethod
    def from_dense(cls, dense, tol=0.0):
        return cls()

    def to_dense(self, order="C"):
        return None
""",
            },
        )
        assert run_rule("SC002", index) == []

    def test_method_counterpart_drift_is_flagged(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def csr_to_dense_loop(matrix, order="C"):
    return matrix
""",
                "formats.py": """
class CSRMatrix:
    def to_dense(self, order="F"):
        return None
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "signature drift" in findings[0].message


# --------------------------------------------------------------------------- #
# SC003 — cache-key coverage
# --------------------------------------------------------------------------- #


class TestCacheKeyCoverage:
    def test_flags_field_missing_from_to_dict(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int
    n: int

    def to_dict(self):
        return {"m": self.m}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert findings[0].symbol.endswith("Cell.n")

    def test_flags_cosmetic_field_in_to_dict(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cell:
    m: int
    label: str = field(default="", compare=False)

    def to_dict(self):
        return {"m": self.m, "label": self.label}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "cosmetic" in findings[0].message

    def test_flags_hand_rolled_config_hash(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int

    def to_dict(self):
        return {"m": self.m}

    def config_hash(self):
        return str(hash((self.m,)))
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "to_dict" in findings[0].message

    def test_flags_missing_to_dict_entirely(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int

    def config_hash(self):
        return str(hash((self.m,)))
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "without a to_dict" in findings[0].message

    def test_covered_cell_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(frozen=True)
class Cell:
    m: int
    n: int
    label: str = field(default="", compare=False)
    _cache: ClassVar[dict] = {}

    def to_dict(self):
        return {"m": self.m, "n": self.n}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        assert run_rule("SC003", index) == []


# --------------------------------------------------------------------------- #
# SC004 — kernel conformance
# --------------------------------------------------------------------------- #

KERNEL_BASE = """
class SpMMKernel:
    launch_arch_agnostic = False

    def prepare(self, problem):
        raise NotImplementedError

    def run(self, problem):
        raise NotImplementedError

    def build_launch(self, problem, arch):
        raise NotImplementedError

    def build_launch_batch(self, shapes, arch):
        return [self.build_launch(s, arch) for s in shapes]
"""


class TestKernelConformance:
    def test_flags_unpaired_build_launch(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class HalfKernel(SpMMKernel):
    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem
""",
            },
        )
        findings = run_rule("SC004", index)
        assert len(findings) == 1
        assert "without build_launch_batch" in findings[0].message

    def test_flags_arch_use_in_declared_agnostic_kernel(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class LyingKernel(SpMMKernel):
    launch_arch_agnostic = True

    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem.size * arch.sm_count

    def build_launch_batch(self, shapes, arch):
        return super().build_launch_batch(shapes, arch)
""",
            },
        )
        findings = run_rule("SC004", index)
        assert len(findings) == 1
        assert "launch_arch_agnostic=True" in findings[0].message
        assert findings[0].symbol.endswith("build_launch")

    def test_super_forwarding_is_sanctioned(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class ForwardingKernel(SpMMKernel):
    launch_arch_agnostic = True

    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return super().build_launch(problem, arch)

    def build_launch_batch(self, shapes, arch):
        return super().build_launch_batch(shapes, arch)
""",
            },
        )
        assert run_rule("SC004", index) == []

    def test_flags_abstract_kernel_in_registry(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "registry.py": """
from .base import SpMMKernel


class GhostKernel(SpMMKernel):
    pass


class NotAKernel:
    pass


_FACTORIES = {
    "ghost": GhostKernel,
    "impostor": NotAKernel,
}
""",
            },
        )
        findings = run_rule("SC004", index)
        messages = " | ".join(f.message for f in findings)
        assert "without concrete" in messages
        assert "does not inherit" in messages

    def test_concrete_registered_kernel_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class GoodKernel(SpMMKernel):
    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem

    def build_launch_batch(self, shapes, arch):
        return shapes


_FACTORIES = {"good": GoodKernel}
""",
            },
        )
        assert run_rule("SC004", index) == []


# --------------------------------------------------------------------------- #
# SC005 — reply protocol
# --------------------------------------------------------------------------- #


class TestReplyProtocol:
    def test_flags_fall_through_without_reply(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "handler.py": """
def handle(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        if msg == "skip":
            pass
        else:
            conn.send(msg)
""",
            },
        )
        findings = run_rule("SC005", index)
        assert any("falls through without emitting a reply" in f.message for f in findings)

    def test_flags_double_reply(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "handler.py": """
def handle(conn):
    while True:
        msg = conn.recv()
        conn.send(msg)
        conn.send("ack")
""",
            },
        )
        findings = run_rule("SC005", index)
        assert any("two or more replies" in f.message for f in findings)

    def test_flags_raise_before_reply(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "handler.py": """
def handle(conn):
    while True:
        msg = conn.recv()
        if not msg:
            raise ValueError("bad request")
        conn.send(msg)
""",
            },
        )
        findings = run_rule("SC005", index)
        assert any("raises before any reply" in f.message for f in findings)

    def test_passes_one_reply_per_path_with_error_handler(
        self, tmp_path: Path
    ) -> None:
        index = build_index(
            tmp_path,
            {
                "handler.py": """
def _process(msg):
    return msg * 2


def handle(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        try:
            result = _process(msg)
        except Exception as exc:
            conn.send(("err", str(exc)))
            continue
        conn.send(("ok", result))
""",
            },
        )
        assert run_rule("SC005", index) == []

    def test_helper_reply_charged_when_channel_is_passed(
        self, tmp_path: Path
    ) -> None:
        index = build_index(
            tmp_path,
            {
                "handler.py": """
def _reply(conn, payload):
    conn.send(payload)


def handle(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            return
        _reply(conn, msg)
""",
            },
        )
        assert run_rule("SC005", index) == []

    def test_client_end_loop_is_not_a_handler(self, tmp_path: Path) -> None:
        # Receives on one pipe, sends on *other* pipes: the client end of
        # those pipes, not a request handler — never flagged.
        index = build_index(
            tmp_path,
            {
                "client.py": """
def collect(jobs, pipes):
    while True:
        msg = jobs.recv()
        if msg is None:
            break
        for pipe in pipes:
            pipe.send(msg)
""",
            },
        )
        assert run_rule("SC005", index) == []


# --------------------------------------------------------------------------- #
# SC006 — resource lifecycle
# --------------------------------------------------------------------------- #


class TestResourceLifecycle:
    def test_flags_thread_bound_and_never_released(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "spawn.py": """
import threading


def run(fn):
    worker = threading.Thread(target=fn)
    worker.start()
""",
            },
        )
        findings = run_rule("SC006", index)
        assert any("'worker' is never released" in f.message for f in findings)

    def test_flags_discarded_resource_construction(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "spawn.py": """
import multiprocessing


def make():
    multiprocessing.Queue()
""",
            },
        )
        findings = run_rule("SC006", index)
        assert any("constructed and discarded" in f.message for f in findings)

    def test_flags_self_attr_without_class_release(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "owner.py": """
import multiprocessing


class Owner:
    def start(self):
        self.queue = multiprocessing.Queue()
""",
            },
        )
        findings = run_rule("SC006", index)
        assert any(
            "stored on self.queue but no method of Owner releases it" in f.message
            for f in findings
        )

    def test_flags_bare_join(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "stop.py": """
def stop(worker):
    worker.join()
""",
            },
        )
        findings = run_rule("SC006", index)
        assert any("bare worker.join()" in f.message for f in findings)

    def test_passes_finally_release_and_bounded_join(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "clean.py": """
def read(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def stop(worker):
    worker.join(timeout=5.0)
    if worker.is_alive():
        worker.terminate()
""",
            },
        )
        assert run_rule("SC006", index) == []

    def test_passes_class_owned_resource_with_release_method(
        self, tmp_path: Path
    ) -> None:
        index = build_index(
            tmp_path,
            {
                "owner.py": """
import threading


class Owner:
    def start(self):
        self.worker = threading.Thread(target=self._run)
        self.worker.start()

    def _run(self):
        pass

    def close(self):
        self.worker.join(timeout=2.0)
""",
            },
        )
        assert run_rule("SC006", index) == []

    def test_passes_handoff_by_return(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "factory.py": """
import multiprocessing


def make_queue():
    q = multiprocessing.Queue()
    return q
""",
            },
        )
        assert run_rule("SC006", index) == []


# --------------------------------------------------------------------------- #
# SC007 — lock discipline
# --------------------------------------------------------------------------- #


class TestLockDiscipline:
    def test_flags_blocking_read_under_lock(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "locked.py": """
import threading

_LOCK = threading.Lock()


def drain(queue):
    with _LOCK:
        return queue.get()
""",
            },
        )
        findings = run_rule("SC007", index)
        assert any(
            "blocking operation" in f.message and "_LOCK" in f.message
            for f in findings
        )

    def test_flags_transitively_blocking_callee_under_lock(
        self, tmp_path: Path
    ) -> None:
        index = build_index(
            tmp_path,
            {
                "locked.py": """
import threading

_LOCK = threading.Lock()


def _slow(queue):
    return queue.get()


def locked_drain(queue):
    with _LOCK:
        return _slow(queue)
""",
            },
        )
        findings = run_rule("SC007", index)
        assert any("transitively" in f.message for f in findings)

    def test_flags_lock_order_cycle(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "order.py": """
import threading

_A = threading.Lock()
_B = threading.Lock()


def forward():
    with _A:
        with _B:
            pass


def backward():
    with _B:
        with _A:
            pass
""",
            },
        )
        findings = run_rule("SC007", index)
        assert any("lock-order cycle" in f.message for f in findings)

    def test_passes_consistent_order_and_outside_blocking(
        self, tmp_path: Path
    ) -> None:
        index = build_index(
            tmp_path,
            {
                "order.py": """
import threading

_A = threading.Lock()
_B = threading.Lock()


def one():
    with _A:
        with _B:
            pass


def two():
    with _A:
        with _B:
            pass


def drain(queue):
    with _A:
        count = 1
    del count
    return queue.get()
""",
            },
        )
        assert run_rule("SC007", index) == []

    def test_passes_condition_wait_on_held_lock(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cond.py": """
import threading

_COND = threading.Condition()


def wait_for_work():
    with _COND:
        _COND.wait()
""",
            },
        )
        assert run_rule("SC007", index) == []


# --------------------------------------------------------------------------- #
# The real tree
# --------------------------------------------------------------------------- #


def test_repo_tree_is_clean(capsys) -> None:
    """Snapshot: the full repo (src + tests) has an empty finding set.

    Runs the real CLI so inline suppressions (which all carry reasons, or
    SC008 would fire) are honoured, exactly as CI runs it.
    """
    repo = Path(__file__).resolve().parents[2]
    src = repo / "src"
    if not src.is_dir():
        pytest.skip("src/ layout not available (installed package)")
    from repro.staticcheck import main

    assert main([str(src), str(repo / "tests"), "--format", "json"]) == 0, (
        "staticcheck regressed on the repo tree:\n" + capsys.readouterr().out
    )
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["parse_errors"] == []
