"""Per-rule fixture tests: each contract rule catches its violation and
stays quiet on the compliant twin."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.staticcheck import Finding, ProjectIndex, get_rules


def build_index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    """Write a mini package tree and parse it into a ProjectIndex."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    paths = [root / "__init__.py"]
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        paths.append(path)
    return ProjectIndex.from_files(paths)


def run_rule(rule_id: str, index: ProjectIndex) -> list[Finding]:
    (rule,) = get_rules([rule_id])
    return rule.run(index)


# --------------------------------------------------------------------------- #
# SC001 — cell purity
# --------------------------------------------------------------------------- #

RUNNER_SCAFFOLD = """
class CellTask:
    def __init__(self, execute=None):
        self.execute = execute


class SweepRunner:
    pass
"""


class TestCellPurity:
    def test_flags_wall_clock_reachable_from_celltask(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def _helper():
    import time

    return time.monotonic()


def execute_cells(cells):
    return [_helper() for _ in cells]


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        findings = run_rule("SC001", index)
        assert any(
            "time.monotonic" in f.message and f.symbol.endswith("_helper")
            for f in findings
        )

    def test_flags_legacy_rng_and_environ_in_executor(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD
                + """

def custom_executor(cells):
    import os

    import numpy as np

    seed = os.environ["SEED"]
    return np.random.rand(len(cells)), seed
""",
            },
        )
        findings = run_rule("SC001", index)
        messages = " | ".join(f.message for f in findings)
        assert "numpy.random.rand" in messages
        assert "os.environ" in messages

    def test_flags_set_iteration_into_ordered_output(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    names = list({c for c in cells})
    for item in {1, 2, 3}:
        names.append(item)
    return names


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        findings = run_rule("SC001", index)
        assert len([f for f in findings if "set" in f.message]) == 2

    def test_clean_seeded_rng_and_sorted_sets_pass(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    import numpy as np

    rng = np.random.default_rng(1234)
    names = sorted({c for c in cells})
    return rng.random(len(names)), names


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        assert run_rule("SC001", index) == []

    def test_unreachable_impurity_is_not_flagged(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "runner.py": RUNNER_SCAFFOLD,
                "cells.py": """
from .runner import CellTask


def execute_cells(cells):
    return list(cells)


def benchmark_wrapper():
    import time

    return time.perf_counter()


TASK = CellTask(execute=execute_cells)
""",
            },
        )
        assert run_rule("SC001", index) == []


# --------------------------------------------------------------------------- #
# SC002 — oracle parity
# --------------------------------------------------------------------------- #


class TestOracleParity:
    def test_flags_signature_drift(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def spmm_loop(values, dense, out=None):
    return out
""",
                "engine.py": """
def spmm(values, dense, *, out=None, alpha=1.0):
    return out
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "signature drift" in findings[0].message
        assert "alpha" in findings[0].message

    def test_flags_missing_counterpart(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def orphan_loop(values):
    return values
""",
                "engine.py": """
def something_else(values):
    return values
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "no engine counterpart" in findings[0].message

    def test_matching_pair_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def spmm_loop(values, dense, out=None):
    return out
""",
                "engine.py": """
def spmm(values, dense, out=None):
    return out
""",
            },
        )
        assert run_rule("SC002", index) == []

    def test_pairs_with_class_method_stripping_receivers(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def csr_from_dense_loop(dense, tol=0.0):
    return dense


def csr_to_dense_loop(matrix, order="C"):
    return matrix
""",
                "formats.py": """
class CSRMatrix:
    @classmethod
    def from_dense(cls, dense, tol=0.0):
        return cls()

    def to_dense(self, order="C"):
        return None
""",
            },
        )
        assert run_rule("SC002", index) == []

    def test_method_counterpart_drift_is_flagged(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "reference.py": """
def csr_to_dense_loop(matrix, order="C"):
    return matrix
""",
                "formats.py": """
class CSRMatrix:
    def to_dense(self, order="F"):
        return None
""",
            },
        )
        findings = run_rule("SC002", index)
        assert len(findings) == 1
        assert "signature drift" in findings[0].message


# --------------------------------------------------------------------------- #
# SC003 — cache-key coverage
# --------------------------------------------------------------------------- #


class TestCacheKeyCoverage:
    def test_flags_field_missing_from_to_dict(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int
    n: int

    def to_dict(self):
        return {"m": self.m}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert findings[0].symbol.endswith("Cell.n")

    def test_flags_cosmetic_field_in_to_dict(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cell:
    m: int
    label: str = field(default="", compare=False)

    def to_dict(self):
        return {"m": self.m, "label": self.label}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "cosmetic" in findings[0].message

    def test_flags_hand_rolled_config_hash(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int

    def to_dict(self):
        return {"m": self.m}

    def config_hash(self):
        return str(hash((self.m,)))
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "to_dict" in findings[0].message

    def test_flags_missing_to_dict_entirely(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int

    def config_hash(self):
        return str(hash((self.m,)))
""",
            },
        )
        findings = run_rule("SC003", index)
        assert len(findings) == 1
        assert "without a to_dict" in findings[0].message

    def test_covered_cell_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "cells.py": """
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(frozen=True)
class Cell:
    m: int
    n: int
    label: str = field(default="", compare=False)
    _cache: ClassVar[dict] = {}

    def to_dict(self):
        return {"m": self.m, "n": self.n}

    def config_hash(self):
        return str(self.to_dict())
""",
            },
        )
        assert run_rule("SC003", index) == []


# --------------------------------------------------------------------------- #
# SC004 — kernel conformance
# --------------------------------------------------------------------------- #

KERNEL_BASE = """
class SpMMKernel:
    launch_arch_agnostic = False

    def prepare(self, problem):
        raise NotImplementedError

    def run(self, problem):
        raise NotImplementedError

    def build_launch(self, problem, arch):
        raise NotImplementedError

    def build_launch_batch(self, shapes, arch):
        return [self.build_launch(s, arch) for s in shapes]
"""


class TestKernelConformance:
    def test_flags_unpaired_build_launch(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class HalfKernel(SpMMKernel):
    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem
""",
            },
        )
        findings = run_rule("SC004", index)
        assert len(findings) == 1
        assert "without build_launch_batch" in findings[0].message

    def test_flags_arch_use_in_declared_agnostic_kernel(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class LyingKernel(SpMMKernel):
    launch_arch_agnostic = True

    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem.size * arch.sm_count

    def build_launch_batch(self, shapes, arch):
        return super().build_launch_batch(shapes, arch)
""",
            },
        )
        findings = run_rule("SC004", index)
        assert len(findings) == 1
        assert "launch_arch_agnostic=True" in findings[0].message
        assert findings[0].symbol.endswith("build_launch")

    def test_super_forwarding_is_sanctioned(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class ForwardingKernel(SpMMKernel):
    launch_arch_agnostic = True

    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return super().build_launch(problem, arch)

    def build_launch_batch(self, shapes, arch):
        return super().build_launch_batch(shapes, arch)
""",
            },
        )
        assert run_rule("SC004", index) == []

    def test_flags_abstract_kernel_in_registry(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "registry.py": """
from .base import SpMMKernel


class GhostKernel(SpMMKernel):
    pass


class NotAKernel:
    pass


_FACTORIES = {
    "ghost": GhostKernel,
    "impostor": NotAKernel,
}
""",
            },
        )
        findings = run_rule("SC004", index)
        messages = " | ".join(f.message for f in findings)
        assert "without concrete" in messages
        assert "does not inherit" in messages

    def test_concrete_registered_kernel_is_clean(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "base.py": KERNEL_BASE,
                "kern.py": """
from .base import SpMMKernel


class GoodKernel(SpMMKernel):
    def prepare(self, problem):
        return problem

    def run(self, problem):
        return problem

    def build_launch(self, problem, arch):
        return problem

    def build_launch_batch(self, shapes, arch):
        return shapes


_FACTORIES = {"good": GoodKernel}
""",
            },
        )
        assert run_rule("SC004", index) == []


# --------------------------------------------------------------------------- #
# The real tree
# --------------------------------------------------------------------------- #


def test_repo_source_tree_is_clean() -> None:
    """The shipped src/ tree satisfies every contract rule."""
    src = Path(__file__).resolve().parents[2] / "src"
    if not src.is_dir():
        pytest.skip("src/ layout not available (installed package)")
    index = ProjectIndex.from_files(sorted(src.rglob("*.py")))
    assert index.parse_errors == []
    for rule in get_rules(None):
        assert rule.run(index) == [], f"{rule.rule_id} regressed on src/"
