"""CLI contract tests: exit codes, JSON report schema, suppressions."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.staticcheck import main
from repro.staticcheck.cli import REPORT_VERSION

CLEAN_MODULE = """
def add(a, b):
    return a + b
"""

DIRTY_MODULE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    m: int
    n: int

    def to_dict(self):
        return {"m": self.m}

    def config_hash(self):
        return str(self.to_dict())
"""


def write_tree(tmp_path: Path, source: str) -> Path:
    root = tmp_path / "proj"
    root.mkdir()
    (root / "__init__.py").write_text("", encoding="utf-8")
    (root / "mod.py").write_text(source, encoding="utf-8")
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, CLEAN_MODULE)
        assert main([str(root)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "SC003" in out
        assert "1 finding(s)" in out

    def test_unknown_rule_exits_two(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, CLEAN_MODULE)
        assert main([str(root), "--rules", "SC999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path: Path, capsys) -> None:
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_bad_flag_exits_two(self, tmp_path: Path) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["--format", "yaml"])
        assert excinfo.value.code == 2

    def test_parse_error_exits_one(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, "def broken(:\n")
        assert main([str(root)]) == 1
        assert "parse error" in capsys.readouterr().out


class TestJsonReport:
    def test_schema_and_counts(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        assert main([str(root), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == REPORT_VERSION
        assert report["tool"] == "repro.staticcheck"
        assert {r["id"] for r in report["rules"]} == {
            "SC001",
            "SC002",
            "SC003",
            "SC004",
            "SC005",
            "SC006",
            "SC007",
            "SC008",
        }
        assert report["files_scanned"] == 2
        assert report["parse_errors"] == []
        assert report["suppressed"] == 0
        assert report["counts"]["SC003"] == 1
        (finding,) = report["findings"]
        assert finding["rule"] == "SC003"
        assert finding["path"].endswith("mod.py")
        assert {"path", "line", "col", "rule", "symbol", "message"} <= set(finding)

    def test_output_file_written_alongside_text(
        self, tmp_path: Path, capsys
    ) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        out_file = tmp_path / "report.json"
        assert main([str(root), "--output", str(out_file)]) == 1
        assert "SC003" in capsys.readouterr().out  # text still on stdout
        report = json.loads(out_file.read_text(encoding="utf-8"))
        assert report["counts"]["SC003"] == 1

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "SC001",
            "SC002",
            "SC003",
            "SC004",
            "SC005",
            "SC006",
            "SC007",
            "SC008",
        ):
            assert rule_id in out


class TestSuppressions:
    def test_inline_ignore_suppresses_matching_rule(
        self, tmp_path: Path, capsys
    ) -> None:
        source = DIRTY_MODULE.replace(
            "    n: int",
            "    n: int  # staticcheck: ignore[SC003] -- fixture: hash is partial",
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "(1 suppressed)" in out

    def test_ignore_of_other_rule_does_not_suppress(
        self, tmp_path: Path, capsys
    ) -> None:
        source = DIRTY_MODULE.replace(
            "    n: int", "    n: int  # staticcheck: ignore[SC001]"
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 1
        assert "SC003" in capsys.readouterr().out

    def test_blanket_ignore_suppresses_everything(
        self, tmp_path: Path, capsys
    ) -> None:
        source = DIRTY_MODULE.replace(
            "    n: int", "    n: int  # staticcheck: ignore -- fixture blanket"
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 0
        assert "(1 suppressed)" in capsys.readouterr().out

    def test_suppressed_count_lands_in_json(self, tmp_path: Path, capsys) -> None:
        source = DIRTY_MODULE.replace(
            "    n: int",
            "    n: int  # staticcheck: ignore[SC003] -- fixture: hash is partial",
        )
        root = write_tree(tmp_path, source)
        assert main([str(root), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["suppressed"] == 1
        assert report["findings"] == []


class TestSuppressionHygiene:
    def test_reasonless_suppression_is_flagged(
        self, tmp_path: Path, capsys
    ) -> None:
        source = DIRTY_MODULE.replace(
            "    n: int", "    n: int  # staticcheck: ignore[SC003]"
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "SC008" in out
        assert "without a reason" in out

    def test_unused_suppression_is_flagged(self, tmp_path: Path, capsys) -> None:
        source = CLEAN_MODULE.replace(
            "    return a + b",
            "    return a + b  # staticcheck: ignore[SC001] -- stale",
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "SC008" in out
        assert "unused suppression of SC001" in out

    def test_unused_not_decided_for_unexecuted_rules(
        self, tmp_path: Path, capsys
    ) -> None:
        source = CLEAN_MODULE.replace(
            "    return a + b",
            "    return a + b  # staticcheck: ignore[SC001] -- stale",
        )
        root = write_tree(tmp_path, source)
        # SC001 did not run, so its suppression cannot be proved stale.
        assert main([str(root), "--rules", "SC003,SC008"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_syntax_inside_string_is_not_a_suppression(
        self, tmp_path: Path, capsys
    ) -> None:
        source = CLEAN_MODULE + '\nDOC = "# staticcheck: ignore[SC001]"\n'
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sc008_itself_cannot_be_suppressed(
        self, tmp_path: Path, capsys
    ) -> None:
        source = CLEAN_MODULE.replace(
            "    return a + b",
            "    return a + b  # staticcheck: ignore[SC001, SC008] -- nice try",
        )
        root = write_tree(tmp_path, source)
        assert main([str(root)]) == 1
        assert "unused suppression" in capsys.readouterr().out


class TestSarif:
    def test_sarif_log_shape(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        assert main([str(root), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.staticcheck"
        rule_ids = {entry["id"] for entry in driver["rules"]}
        assert "SC003" in rule_ids and "SC008" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "SC003"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-indexed

    def test_sarif_clean_run_has_no_results(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, CLEAN_MODULE)
        assert main([str(root), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


class TestPathsFilter:
    def test_paths_prefix_restricts_reporting(
        self, tmp_path: Path, capsys
    ) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        other = tmp_path / "other"
        other.mkdir()
        (other / "clean.py").write_text(CLEAN_MODULE, encoding="utf-8")
        # Index both trees, report only the clean one: exit goes to 0.
        assert main([str(root), str(other), "--paths", str(other)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_paths_keeps_matching_findings(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        assert main([str(root), "--paths", str(root)]) == 1
        assert "SC003" in capsys.readouterr().out


class TestCacheDir:
    def test_warm_run_reproduces_report(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        cache = tmp_path / "cache"
        assert main([str(root), "--cache-dir", str(cache), "--format", "json"]) == 1
        cold = json.loads(capsys.readouterr().out)
        assert main([str(root), "--cache-dir", str(cache), "--format", "json"]) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm == cold
        assert any(cache.rglob("*.pkl"))  # entries actually persisted

    def test_edited_file_misses_cache(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        cache = tmp_path / "cache"
        assert main([str(root), "--cache-dir", str(cache)]) == 1
        capsys.readouterr()
        (root / "mod.py").write_text(CLEAN_MODULE, encoding="utf-8")
        assert main([str(root), "--cache-dir", str(cache)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path: Path, capsys) -> None:
        root = write_tree(tmp_path, DIRTY_MODULE)
        cache = tmp_path / "cache"
        assert main([str(root), "--cache-dir", str(cache)]) == 1
        capsys.readouterr()
        for blob in cache.rglob("*.pkl"):
            blob.write_bytes(b"not a pickle")
        assert main([str(root), "--cache-dir", str(cache)]) == 1
        assert "SC003" in capsys.readouterr().out
