"""Dataflow-layer tests: call graph, effect summaries, fixpoint, monotonicity.

The key invariant every interprocedural rule leans on is *monotonicity*:
for every call edge ``caller -> callee`` the caller's transitive effect set
(and acquired-lock set) is a superset of the callee's.  The property test
generates random call graphs — including cycles — renders them to source,
and checks the invariant on the computed summaries.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticcheck import ProjectIndex
from repro.staticcheck import effects
from repro.staticcheck.flow import FlowAnalysis, reachable


def build_index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    paths = [root / "__init__.py"]
    for name, source in files.items():
        path = root / name
        path.write_text(source, encoding="utf-8")
        paths.append(path)
    return ProjectIndex.from_files(paths)


class TestCallGraph:
    def test_same_module_and_imported_calls_resolve(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "util.py": """
def helper():
    return 1
""",
                "app.py": """
from .util import helper


def local():
    return helper()


def entry():
    return local()
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        assert "pkg.util.helper" in flow.graph.callees("pkg.app.local")
        assert "pkg.app.local" in flow.graph.callees("pkg.app.entry")

    def test_method_calls_resolve_through_self(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "svc.py": """
class Service:
    def step(self):
        return 1

    def run(self):
        return self.step()
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        assert "pkg.svc.Service.step" in flow.graph.callees("pkg.svc.Service.run")

    def test_reachable_carries_provenance(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "chain.py": """
def leaf():
    return 1


def mid():
    return leaf()


def root():
    return mid()
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        root = index.functions["pkg.chain.root"]
        provenance = reachable(flow.graph, [(root, "the-root")])
        assert provenance["pkg.chain.leaf"] == "the-root"
        assert provenance["pkg.chain.mid"] == "the-root"


class TestSummaries:
    def test_direct_effects_propagate_to_callers(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "mod.py": """
def _blocking(queue):
    return queue.get()


def caller(queue):
    return _blocking(queue)


def pure(x):
    return x + 1
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        leaf = flow.summary("pkg.mod._blocking")
        caller = flow.summary("pkg.mod.caller")
        pure = flow.summary("pkg.mod.pure")
        assert leaf is not None and effects.BLOCKING in leaf.direct
        assert caller is not None and effects.BLOCKING in caller.effects
        assert effects.BLOCKING not in caller.direct  # transitive only
        assert pure is not None and pure.effects == frozenset()

    def test_fixpoint_terminates_on_cycles(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "mut.py": """
def ping(queue, depth):
    if depth:
        return pong(queue, depth - 1)
    return queue.get()


def pong(queue, depth):
    return ping(queue, depth)
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        for qualname in ("pkg.mut.ping", "pkg.mut.pong"):
            summary = flow.summary(qualname)
            assert summary is not None
            assert effects.BLOCKING in summary.effects

    def test_acquires_propagate(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "locked.py": """
import threading

_LOCK = threading.Lock()


def critical():
    with _LOCK:
        return 1


def outer():
    return critical()
""",
            },
        )
        flow = FlowAnalysis.for_index(index)
        outer = flow.summary("pkg.locked.outer")
        assert outer is not None
        assert "pkg.locked._LOCK" in outer.acquires


def _assert_monotone(flow: FlowAnalysis) -> None:
    for caller, callees in flow.graph.edges.items():
        caller_summary = flow.summary(caller)
        assert caller_summary is not None
        for callee in callees:
            callee_summary = flow.summary(callee)
            if callee_summary is None:
                continue
            assert caller_summary.effects >= callee_summary.effects, (
                f"effects not monotone on edge {caller} -> {callee}"
            )
            assert caller_summary.acquires >= callee_summary.acquires, (
                f"acquires not monotone on edge {caller} -> {callee}"
            )


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_call_graphs_are_monotone(
        self, data: st.DataObject, tmp_path_factory: pytest.TempPathFactory
    ) -> None:
        n = data.draw(st.integers(min_value=2, max_value=7), label="n")
        blocking = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n), label="blocking"
        )
        callees = data.draw(
            st.lists(
                st.sets(st.integers(min_value=0, max_value=n - 1), max_size=3),
                min_size=n,
                max_size=n,
            ),
            label="edges",
        )
        lines = []
        for i in range(n):
            lines.append(f"def f{i}(q):")
            body = []
            if blocking[i]:
                body.append("    q.get()")
            for j in sorted(callees[i]):
                body.append(f"    f{j}(q)")
            body.append("    return None")
            lines.extend(body)
            lines.append("")
        tmp = tmp_path_factory.mktemp("monotone")
        index = build_index(tmp, {"gen.py": "\n".join(lines)})
        assert index.parse_errors == []
        flow = FlowAnalysis.for_index(index)
        _assert_monotone(flow)
        # A function with a direct blocking site must carry the effect.
        for i in range(n):
            summary = flow.summary(f"pkg.gen.f{i}")
            assert summary is not None
            if blocking[i]:
                assert effects.BLOCKING in summary.effects

    def test_repo_tree_is_monotone(self) -> None:
        src = Path(__file__).resolve().parents[2] / "src"
        if not src.is_dir():
            pytest.skip("src/ layout not available (installed package)")
        index = ProjectIndex.from_files(sorted(src.rglob("*.py")))
        _assert_monotone(FlowAnalysis.for_index(index))
