"""Tests for the single-shot pattern pruners."""

import numpy as np
import pytest

from repro.core.pattern import PatternKind
from repro.pruning.base import PruneResult
from repro.pruning.patterns import (
    BalancedPruner,
    BlockwisePruner,
    ShflBWPruner,
    UnstructuredPruner,
    VectorwisePruner,
    make_pruner,
)
from repro.sparse.validate import is_balanced, is_blockwise, is_shflbw, is_vector_wise


@pytest.fixture
def weight(rng):
    return rng.normal(size=(64, 64))


class TestPruneResult:
    def test_sparsity_and_density(self, weight):
        result = UnstructuredPruner().prune(weight, 0.75)
        assert result.sparsity == pytest.approx(0.75, abs=0.01)
        assert result.density == pytest.approx(0.25, abs=0.01)
        assert isinstance(result, PruneResult)

    def test_weights_respect_mask(self, weight):
        result = UnstructuredPruner().prune(weight, 0.5)
        assert np.all(result.weights[~result.mask] == 0.0)
        np.testing.assert_allclose(result.weights[result.mask], weight[result.mask])


class TestUnstructuredPruner:
    def test_keeps_largest_magnitudes(self, weight):
        result = UnstructuredPruner().prune(weight, 0.9)
        kept_min = np.abs(weight[result.mask]).min()
        dropped_max = np.abs(weight[~result.mask]).max()
        assert kept_min >= dropped_max - 1e-12

    def test_invalid_sparsity(self, weight):
        with pytest.raises(ValueError):
            UnstructuredPruner().prune(weight, 1.0)
        with pytest.raises(ValueError):
            UnstructuredPruner().prune(weight, -0.1)


class TestBlockwisePruner:
    def test_output_is_blockwise(self, weight):
        result = BlockwisePruner(block_size=16).prune(weight, 0.75)
        assert is_blockwise(result.weights, 16)
        assert result.pattern is PatternKind.BLOCKWISE

    def test_sparsity_close_to_target(self, weight):
        result = BlockwisePruner(block_size=8).prune(weight, 0.75)
        assert result.sparsity == pytest.approx(0.75, abs=0.05)

    def test_indivisible_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            BlockwisePruner(block_size=16).prune(rng.normal(size=(40, 64)), 0.5)

    def test_info_contains_block_size(self, weight):
        assert BlockwisePruner(block_size=8).prune(weight, 0.5).info["block_size"] == 8


class TestVectorwisePruner:
    def test_output_is_vector_wise(self, weight):
        result = VectorwisePruner(vector_size=16).prune(weight, 0.75)
        assert is_vector_wise(result.weights, 16)
        assert result.pattern is PatternKind.VECTORWISE

    def test_retains_more_than_blockwise(self, weight):
        vw = VectorwisePruner(vector_size=16).prune(weight, 0.75)
        bw = BlockwisePruner(block_size=16).prune(weight, 0.75)
        assert np.abs(vw.weights).sum() >= np.abs(bw.weights).sum() * 0.999


class TestBalancedPruner:
    def test_output_is_balanced(self, weight):
        result = BalancedPruner().prune(weight, 0.5)
        assert is_balanced(result.weights)
        assert result.sparsity == pytest.approx(0.5)

    def test_only_fixed_sparsity_allowed(self, weight):
        with pytest.raises(ValueError):
            BalancedPruner().prune(weight, 0.75)

    def test_custom_n_m(self, rng):
        weight = rng.normal(size=(8, 16))
        result = BalancedPruner(n=1, m=4).prune(weight, 0.75)
        assert is_balanced(result.weights, n=1, m=4)


class TestShflBWPruner:
    def test_output_is_shflbw(self, weight):
        pruner = ShflBWPruner(vector_size=16)
        result = pruner.prune(weight, 0.75)
        assert is_shflbw(result.weights, 16, result.info["row_indices"])
        assert result.pattern is PatternKind.SHFLBW

    def test_info_has_witness_and_groups(self, weight):
        result = ShflBWPruner(vector_size=16).prune(weight, 0.75)
        assert "row_indices" in result.info
        assert len(result.info["groups"]) == 4
        assert 0 < result.info["retained_fraction"] <= 1.0

    def test_retains_at_least_blockwise(self, weight):
        shfl = ShflBWPruner(vector_size=16).prune(weight, 0.8)
        bw = BlockwisePruner(block_size=16).prune(weight, 0.8)
        assert np.abs(shfl.weights).sum() >= np.abs(bw.weights).sum() * 0.999


class TestMakePruner:
    def test_builds_each_pattern(self):
        assert isinstance(make_pruner("unstructured"), UnstructuredPruner)
        assert isinstance(make_pruner("blockwise", block_size=8), BlockwisePruner)
        assert isinstance(make_pruner("vectorwise", vector_size=8), VectorwisePruner)
        assert isinstance(make_pruner("balanced"), BalancedPruner)
        assert isinstance(make_pruner("shfl-bw", vector_size=8), ShflBWPruner)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            make_pruner("diagonal")

    def test_dense_pattern_has_no_pruner(self):
        with pytest.raises(ValueError):
            make_pruner("dense")
