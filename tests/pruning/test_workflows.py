"""Tests for the ADMM and grow-and-prune pruning workflows."""

import numpy as np
import pytest

from repro.pruning.admm import ADMMConfig, ADMMPruner
from repro.pruning.grow_prune import GrowPruneConfig, GrowPrunePruner
from repro.pruning.patterns import ShflBWPruner, UnstructuredPruner, VectorwisePruner
from repro.pruning.schedule import linear_schedule
from repro.sparse.validate import is_shflbw, is_vector_wise


@pytest.fixture
def weight(rng):
    return rng.normal(size=(32, 32))


class TestADMM:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ADMMConfig(rho=0.0)
        with pytest.raises(ValueError):
            ADMMConfig(num_rounds=0)

    def test_result_satisfies_pattern(self, weight):
        pruner = ADMMPruner(VectorwisePruner(vector_size=8), ADMMConfig(num_rounds=3, steps_per_round=3))
        result = pruner.run(weight, 0.75)
        assert is_vector_wise(result.weights, 8)
        assert result.sparsity == pytest.approx(0.75, abs=0.05)

    def test_shflbw_projection(self, weight):
        pruner = ADMMPruner(ShflBWPruner(vector_size=8), ADMMConfig(num_rounds=2, steps_per_round=2))
        result = pruner.run(weight, 0.75)
        assert is_shflbw(result.weights, 8)

    def test_admm_pulls_weights_toward_pattern(self, weight):
        # With no task gradient, ADMM should drive the primal/dual gap down.
        pruner = ADMMPruner(
            UnstructuredPruner(), ADMMConfig(num_rounds=8, steps_per_round=10, rho=0.5, learning_rate=0.1)
        )
        result = pruner.run(weight, 0.5)
        assert result.info["primal_dual_gap"] < 0.5

    def test_gradient_callback_used(self, weight):
        calls = []

        def gradient_fn(w):
            calls.append(1)
            return np.zeros_like(w)

        ADMMPruner(UnstructuredPruner(), ADMMConfig(num_rounds=2, steps_per_round=3)).run(
            weight, 0.5, gradient_fn=gradient_fn
        )
        assert len(calls) == 6

    def test_admm_retains_more_mass_than_one_shot_under_task(self, weight):
        # The task gradient pulls weights toward the identity-preserving
        # solution of a simple quadratic; ADMM should not destroy the target
        # pattern while doing so.
        target = weight.copy()

        def gradient_fn(w):
            return w - target

        pruner = ADMMPruner(VectorwisePruner(vector_size=8), ADMMConfig(num_rounds=4, steps_per_round=5))
        result = pruner.run(weight, 0.75, gradient_fn=gradient_fn)
        assert is_vector_wise(result.weights, 8)


class TestGrowPrune:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GrowPruneConfig(num_rounds=0)
        with pytest.raises(ValueError):
            GrowPruneConfig(grow_fraction=1.0)

    def test_final_result_matches_target_pattern(self, weight):
        pruner = GrowPrunePruner(ShflBWPruner(vector_size=8), GrowPruneConfig(num_rounds=3))
        result = pruner.run(weight, 0.75)
        # The keep-mask must satisfy the pattern (individual kept weights may
        # have been zeroed by the intermediate masked rounds).
        assert is_shflbw(result.mask, 8, result.info["row_indices"])
        assert result.sparsity == pytest.approx(0.75, abs=0.05)

    def test_update_fn_called_each_round(self, weight):
        calls = []

        def update_fn(w, mask):
            calls.append(mask.mean())
            return w

        GrowPrunePruner(UnstructuredPruner(), GrowPruneConfig(num_rounds=4)).run(
            weight, 0.5, update_fn=update_fn
        )
        assert len(calls) == 4

    def test_schedule_ramps_sparsity(self, weight):
        densities = []

        def update_fn(w, mask):
            densities.append(mask.mean())
            return w

        config = GrowPruneConfig(
            num_rounds=4, grow_fraction=0.0, schedule=linear_schedule(0.8, num_steps=4)
        )
        GrowPrunePruner(UnstructuredPruner(), config).run(weight, 0.8, update_fn=update_fn)
        assert densities[0] > densities[-1]

    def test_grow_fraction_reactivates_weights(self, weight):
        masks = []

        def update_fn(w, mask):
            masks.append(mask.copy())
            return w

        GrowPrunePruner(UnstructuredPruner(), GrowPruneConfig(num_rounds=1, grow_fraction=0.2)).run(
            weight, 0.5, update_fn=update_fn
        )
        # 50% pruned + 20% of pruned regrown => ~60% density after growing.
        assert masks[0].mean() == pytest.approx(0.6, abs=0.02)
