"""Tests for importance scores and sparsity schedules."""

import numpy as np
import pytest

from repro.pruning.importance import (
    gradient_scores,
    magnitude_scores,
    normalize_scores,
    taylor_scores,
)
from repro.pruning.schedule import (
    SparsitySchedule,
    constant_schedule,
    cubic_schedule,
    linear_schedule,
)


class TestImportance:
    def test_magnitude_is_absolute_value(self, rng):
        w = rng.normal(size=(4, 4))
        np.testing.assert_allclose(magnitude_scores(w), np.abs(w))

    def test_gradient_scores(self, rng):
        w, g = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        np.testing.assert_allclose(gradient_scores(w, g), np.abs(w * g))

    def test_taylor_scores(self, rng):
        w, g = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        np.testing.assert_allclose(taylor_scores(w, g), (w * g) ** 2)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            gradient_scores(rng.normal(size=(4, 4)), rng.normal(size=(4, 5)))

    def test_normalize_sums_to_one(self, rng):
        normalized = normalize_scores(np.abs(rng.normal(size=(8, 8))))
        assert normalized.sum() == pytest.approx(1.0)

    def test_normalize_zero_scores(self):
        normalized = normalize_scores(np.zeros((2, 2)))
        assert normalized.sum() == pytest.approx(1.0)


class TestSchedules:
    def test_constant(self):
        schedule = constant_schedule(0.75)
        assert schedule.sparsity_at(0) == 0.75
        assert schedule.sparsity_at(100) == 0.75

    def test_linear_ramps_monotonically(self):
        schedule = linear_schedule(0.9, num_steps=11)
        targets = schedule.targets(11)
        assert targets[0] == pytest.approx(0.0)
        assert targets[-1] == pytest.approx(0.9)
        assert all(b >= a for a, b in zip(targets, targets[1:], strict=False))

    def test_cubic_ramps_faster_early(self):
        linear = linear_schedule(0.9, num_steps=11)
        cubic = cubic_schedule(0.9, num_steps=11)
        assert cubic.sparsity_at(3) > linear.sparsity_at(3)
        assert cubic.sparsity_at(10) == pytest.approx(linear.sparsity_at(10))

    def test_before_and_after_window(self):
        schedule = SparsitySchedule(0.1, 0.8, begin_step=5, end_step=15)
        assert schedule.sparsity_at(0) == 0.1
        assert schedule.sparsity_at(20) == 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SparsitySchedule(initial_sparsity=1.2)
        with pytest.raises(ValueError):
            SparsitySchedule(begin_step=5, end_step=1)
        with pytest.raises(ValueError):
            SparsitySchedule(exponent=0.0)
        with pytest.raises(ValueError):
            constant_schedule(0.5).targets(0)
