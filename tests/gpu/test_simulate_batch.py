"""Hypothesis net: the batched simulator is bit-identical to the scalar one.

``simulate_batch`` over a :class:`LaunchBatch` stacked from arbitrary
:class:`KernelLaunch` descriptions must reproduce every field of every
scalar ``simulate`` result *exactly* — total and component times, waves,
bound classification, utilization — across random tiles, traffic
breakdowns, compute units and architectures.  This is the contract the
whole batched estimation engine (and the sweep fast path on top of it)
rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import available_gpus, get_gpu
from repro.gpu.memory import TrafficBatch, TrafficBreakdown
from repro.gpu.pipeline import pipeline_time_grid
from repro.gpu.roofline import attainable_flops, attainable_flops_grid
from repro.gpu.simulator import (
    ComputeUnit,
    KernelLaunch,
    LaunchBatch,
    simulate,
    simulate_batch,
)
from repro.gpu.tiling import TileConfig

SETTINGS = dict(max_examples=60, deadline=None)

gpus = st.sampled_from(sorted(available_gpus()))
units = st.sampled_from(list(ComputeUnit))
efficiencies = st.floats(min_value=0.05, max_value=1.0)


@st.composite
def traffic_breakdowns(draw, min_operands=0, max_operands=4):
    traffic = TrafficBreakdown()
    for index in range(draw(st.integers(min_operands, max_operands))):
        traffic.add(
            f"op{index}",
            draw(st.floats(min_value=0.0, max_value=1e9)),
            reads=draw(st.floats(min_value=0.0, max_value=40.0)),
            access_efficiency=draw(st.floats(min_value=0.05, max_value=1.0)),
            is_write=draw(st.booleans()),
        )
    return traffic


@st.composite
def launches(draw):
    tile = TileConfig(
        tile_m=draw(st.integers(1, 256)),
        tile_n=draw(st.integers(1, 256)),
        tile_k=draw(st.integers(1, 128)),
        threads=32 * draw(st.integers(1, 8)),
        pipeline_stages=draw(st.integers(1, 4)),
    )
    return KernelLaunch(
        name=draw(st.sampled_from(["a", "b", "c"])),
        useful_flops=draw(st.floats(min_value=0.0, max_value=1e13)),
        traffic=draw(traffic_breakdowns()),
        meta_traffic=draw(traffic_breakdowns(max_operands=2)),
        tile=tile,
        num_tiles=draw(st.integers(1, 20000)),
        k_steps=draw(st.integers(1, 512)),
        compute_unit=draw(units),
        compute_efficiency=draw(efficiencies),
        bandwidth_efficiency=draw(efficiencies),
        prefetch_metadata=draw(st.booleans()),
        meta_prefetch_steps=draw(st.integers(1, 8)),
        extra_overhead_s=draw(st.floats(min_value=0.0, max_value=1e-3)),
        launches=draw(st.integers(1, 8)),
    )


class TestSimulateBatchMatchesScalar:
    @settings(**SETTINGS)
    @given(batch=st.lists(launches(), min_size=1, max_size=8), gpu=gpus)
    def test_every_field_bit_identical(self, batch, gpu):
        arch = get_gpu(gpu)
        timing = simulate_batch(arch, LaunchBatch.from_launches(batch))
        assert len(timing) == len(batch)
        for index, launch in enumerate(batch):
            assert timing.timing(index) == simulate(arch, launch)

    @settings(**SETTINGS)
    @given(batch=st.lists(launches(), min_size=2, max_size=6), gpu=gpus)
    def test_concat_is_transparent(self, batch, gpu):
        """Merging batches cannot change any launch's numbers."""
        arch = get_gpu(gpu)
        split = LaunchBatch.concat(
            [LaunchBatch.from_launches([launch]) for launch in batch]
        )
        merged = simulate_batch(arch, split)
        whole = simulate_batch(arch, LaunchBatch.from_launches(batch))
        for index in range(len(batch)):
            assert merged.timing(index) == whole.timing(index)

    @settings(**SETTINGS)
    @given(launch=launches(), gpu=gpus)
    def test_derived_rates_match(self, launch, gpu):
        arch = get_gpu(gpu)
        scalar = simulate(arch, launch)
        batch = simulate_batch(arch, LaunchBatch.from_launches([launch]))
        assert float(batch.achieved_tflops[0]) == scalar.achieved_tflops
        assert float(batch.achieved_bandwidth_gbs[0]) == scalar.achieved_bandwidth_gbs


class TestComputeGrids:
    @settings(**SETTINGS)
    @given(
        gpu=gpus,
        tiles=st.tuples(st.integers(1, 256), st.integers(1, 256), st.integers(1, 128)),
        num_tiles=st.integers(1, 5000),
        useful=st.floats(min_value=0.0, max_value=1e12),
        efficiency=efficiencies,
    )
    def test_sparse_tensor_core_grid_matches_scalar(
        self, gpu, tiles, num_tiles, useful, efficiency
    ):
        from repro.gpu.tensorcore import (
            sparse_tensor_core_time,
            sparse_tensor_core_time_grid,
        )

        arch = get_gpu(gpu)
        tile_m, tile_n, tile_k = tiles
        scalar = sparse_tensor_core_time(
            arch,
            useful,
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            num_tiles=num_tiles,
            efficiency=efficiency,
        )
        batch = sparse_tensor_core_time_grid(
            arch,
            np.array([useful]),
            tile_m=np.array([tile_m]),
            tile_n=np.array([tile_n]),
            tile_k=np.array([tile_k]),
            num_tiles=np.array([num_tiles]),
            efficiency=np.array([efficiency]),
        )
        assert float(batch.time_s[0]) == scalar.time_s
        assert float(batch.issued_flops[0]) == scalar.issued_flops
        assert float(batch.utilization[0]) == scalar.utilization


class TestLaunchBatchValidation:
    def _minimal(self, **overrides):
        fields = dict(
            names=["k"],
            useful_flops=np.array([1.0]),
            traffic=TrafficBatch(1),
            tile_m=np.array([16]),
            tile_n=np.array([16]),
            tile_k=np.array([16]),
            num_tiles=np.array([1]),
            k_steps=np.array([1]),
        )
        fields.update(overrides)
        return LaunchBatch(**fields)

    def test_minimal_batch_simulates(self):
        timing = simulate_batch(get_gpu("V100"), self._minimal())
        assert len(timing) == 1 and timing.total_time_s[0] > 0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"useful_flops": np.array([-1.0])},
            {"num_tiles": np.array([0])},
            {"k_steps": np.array([0])},
            {"launches": np.array([0])},
            {"compute_efficiency": np.array([0.0])},
            {"bandwidth_efficiency": np.array([1.5])},
            {"tile_m": np.array([0])},
        ],
    )
    def test_field_ranges_enforced(self, overrides):
        with pytest.raises(ValueError):
            self._minimal(**overrides)

    def test_name_count_checked(self):
        with pytest.raises(ValueError):
            self._minimal(names=["a", "b"])

    def test_scalar_useful_flops_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="one entry per launch"):
            self._minimal(useful_flops=1.0e9)

    def test_traffic_size_checked(self):
        with pytest.raises(ValueError):
            self._minimal(traffic=TrafficBatch(3))

    def test_unknown_compute_unit_code_rejected(self):
        with pytest.raises(ValueError):
            self._minimal(compute_unit=np.array([7], dtype=np.int8))

    def test_empty_from_launches_rejected(self):
        with pytest.raises(ValueError):
            LaunchBatch.from_launches([])

    def test_empty_concat_rejected(self):
        with pytest.raises(ValueError):
            LaunchBatch.concat([])


class TestTrafficBatch:
    @settings(**SETTINGS)
    @given(
        breakdowns=st.lists(traffic_breakdowns(), min_size=1, max_size=5), gpu=gpus
    )
    def test_from_breakdowns_matches_scalar_aggregates(self, breakdowns, gpu):
        arch = get_gpu(gpu)
        batch = TrafficBatch.from_breakdowns(breakdowns)
        raw = batch.total_raw_bytes()
        dram = batch.total_dram_bytes(arch)
        memory = batch.memory_time(arch, bandwidth_efficiency=0.85)
        for index, breakdown in enumerate(breakdowns):
            assert float(raw[index]) == breakdown.total_raw_bytes()
            assert float(dram[index]) == breakdown.total_dram_bytes(arch)
            assert float(memory[index]) == breakdown.memory_time(
                arch, bandwidth_efficiency=0.85
            )

    def test_add_validates(self):
        batch = TrafficBatch(2)
        with pytest.raises(ValueError, match="negative bytes"):
            batch.add("w", np.array([-1.0, 0.0]))
        with pytest.raises(ValueError, match="negative read"):
            batch.add("w", 1.0, reads=np.array([-1.0, 1.0]))
        with pytest.raises(ValueError, match="access efficiency"):
            batch.add("w", 1.0, access_efficiency=0.0)
        with pytest.raises(ValueError, match="length-2"):
            batch.add("w", np.array([1.0, 2.0, 3.0]))

    def test_bandwidth_efficiency_validated(self):
        batch = TrafficBatch(1).add("w", 8.0)
        with pytest.raises(ValueError):
            batch.dram_time(get_gpu("V100"), bandwidth_efficiency=0.0)


class TestPipelineGridValidation:
    def test_invalid_streams_rejected(self):
        with pytest.raises(ValueError):
            pipeline_time_grid(
                compute_time=np.array([-1.0]),
                load_time=np.array([0.0]),
                meta_time=np.array([0.0]),
                k_steps=np.array([1]),
                pipeline_stages=np.array([2]),
                meta_prefetch_steps=np.array([4]),
                prefetch_metadata=np.array([True]),
            )


class TestRooflineGrid:
    @settings(**SETTINGS)
    @given(
        intensities=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=8
        ),
        gpu=gpus,
        tensor=st.booleans(),
    )
    def test_matches_scalar_roofline(self, intensities, gpu, tensor):
        arch = get_gpu(gpu)
        batch = attainable_flops_grid(
            arch, np.array(intensities), use_tensor_core=tensor
        )
        for index, intensity in enumerate(intensities):
            point = attainable_flops(arch, intensity, use_tensor_core=tensor)
            assert float(batch.attainable_flops[index]) == point.attainable_flops
            assert bool(batch.memory_bound[index]) == point.memory_bound
            assert float(batch.efficiency[index]) == point.efficiency

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            attainable_flops_grid(get_gpu("T4"), np.array([-1.0]))
