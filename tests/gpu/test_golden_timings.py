"""Golden-regression net over the analytical timing model.

The timing model is the substrate every number in the evaluation depends on:
Figure 1's crossover regions, Figure 6's speedup bars and the Section 6.2
headline all reduce to ``simulate()`` outputs.  This suite snapshots the
full paper grid into a checked-in JSON fixture:

* ``simulate``: per (GPU x paper kernel x sparsity) total time and bound
  classification on the Figure 1 GEMM shape (2048/128/2048), straight
  through ``SpMMKernel.estimate`` — no sweep machinery in the loop;
* ``figure6``: the complete Figure 6 speedup grid
  (3 models x 3 GPUs x kernel line-up x 4 sparsities).

A kernel/simulator refactor that shifts any total time, bound or speedup —
and therefore potentially a crossover point the paper's claims hinge on —
fails here with the exact cells that moved.  To shift the goldens
*deliberately*, regenerate the fixture and review the diff::

    PYTHONPATH=src python -m pytest tests/gpu/test_golden_timings.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval.runner import MODEL_VERSION
from repro.eval.speedup import PAPER_GPUS, PAPER_SPARSITIES, figure6_sweep
from repro.gpu.arch import get_gpu
from repro.kernels.base import GEMMShape, KernelNotApplicableError
from repro.kernels.registry import make_kernel, paper_baseline_specs

GOLDEN_PATH = Path(__file__).parent / "goldens" / "golden_timings.json"
#: The Figure 1 GEMM shape used for the per-kernel simulate() snapshot.
GOLDEN_SHAPE = (2048, 128, 2048)
#: Relative tolerance for float comparison: tight enough that any real model
#: change trips it, loose enough to absorb benign float-summation noise.
REL_TOL = 1.0e-9


def _simulate_grid() -> dict:
    """``{gpu: {kernel_label: {sparsity: {total_time_s, bound} | None}}}``."""
    shape = GEMMShape(*GOLDEN_SHAPE)
    grid: dict[str, dict[str, dict[str, dict | None]]] = {}
    for gpu in PAPER_GPUS:
        arch = get_gpu(gpu)
        per_kernel: dict[str, dict[str, dict | None]] = {}
        for label, (name, kwargs) in paper_baseline_specs().items():
            kernel = make_kernel(name, **kwargs)
            supported = getattr(kernel, "supported_archs", None)
            cells: dict[str, dict | None] = {}
            for sparsity in PAPER_SPARSITIES:
                key = str(sparsity)
                if supported is not None and arch.name not in supported:
                    cells[key] = None
                    continue
                try:
                    timing = kernel.estimate(arch, shape, 1.0 - sparsity)
                except (KernelNotApplicableError, ValueError):
                    cells[key] = None
                    continue
                cells[key] = {
                    "total_time_s": timing.total_time_s,
                    "bound": timing.bound,
                }
            per_kernel[label] = cells
        grid[gpu] = per_kernel
    return grid


def _figure6_grid() -> dict:
    """``{"model|gpu": {kernel_label: {sparsity: speedup | None}}}``."""
    results = figure6_sweep()
    return {
        f"{model}|{gpu}": {
            label: {str(s): value for s, value in by_sparsity.items()}
            for label, by_sparsity in per_kernel.items()
        }
        for (model, gpu), per_kernel in results.items()
    }


def build_goldens() -> dict:
    return {
        "model_version": MODEL_VERSION,
        "gemm_shape": list(GOLDEN_SHAPE),
        "simulate": _simulate_grid(),
        "figure6": _figure6_grid(),
    }


def _assert_leaf_equal(path: str, golden, current) -> None:
    __tracebackhide__ = True
    if isinstance(golden, float) and isinstance(current, (int, float)):
        assert current == pytest.approx(golden, rel=REL_TOL, abs=1e-15), (
            f"{path}: golden {golden!r} vs current {current!r}"
        )
    else:
        assert current == golden, f"{path}: golden {golden!r} vs current {current!r}"


def _assert_tree_equal(path: str, golden, current) -> None:
    if isinstance(golden, dict):
        assert isinstance(current, dict), f"{path}: structure changed"
        assert set(current) == set(golden), (
            f"{path}: keys changed "
            f"(missing {sorted(set(golden) - set(current))}, "
            f"new {sorted(set(current) - set(golden))})"
        )
        for key in golden:
            _assert_tree_equal(f"{path}/{key}", golden[key], current[key])
    elif isinstance(golden, list):
        assert len(current) == len(golden), f"{path}: length changed"
        for i, (g, c) in enumerate(zip(golden, current)):
            _assert_tree_equal(f"{path}[{i}]", g, c)
    else:
        _assert_leaf_equal(path, golden, current)


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture {GOLDEN_PATH} is missing; regenerate it with "
            "pytest tests/gpu/test_golden_timings.py --update-goldens"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_update_goldens(update_goldens):
    """Rewrites the fixture when ``--update-goldens`` is passed (and is a
    no-op assertion otherwise, so the flag has exactly one writer)."""
    if not update_goldens:
        pytest.skip("pass --update-goldens to regenerate the fixture")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(build_goldens(), sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )


def test_golden_model_version(goldens):
    """A MODEL_VERSION bump must come with regenerated goldens."""
    assert goldens["model_version"] == MODEL_VERSION, (
        "timing MODEL_VERSION changed; regenerate the goldens deliberately "
        "with --update-goldens and review the diff"
    )
    assert goldens["gemm_shape"] == list(GOLDEN_SHAPE)


def test_golden_simulate_totals_and_bounds(goldens):
    """simulate() totals and bound classification over GPUs x kernels x
    sparsities are unchanged."""
    _assert_tree_equal("simulate", goldens["simulate"], _simulate_grid())


def test_golden_figure6_speedups(goldens):
    """The full Figure 6 speedup grid (and its None applicability holes) is
    unchanged."""
    _assert_tree_equal("figure6", goldens["figure6"], _figure6_grid())


def test_golden_grid_is_complete(goldens):
    """The fixture really covers the paper grid: 3 GPUs x full kernel
    line-up x 4 sparsities, and 3 models x 3 GPUs for Figure 6."""
    simulate = goldens["simulate"]
    assert set(simulate) == set(PAPER_GPUS)
    labels = set(paper_baseline_specs())
    for gpu, per_kernel in simulate.items():
        assert set(per_kernel) == labels
        for cells in per_kernel.values():
            assert set(cells) == {str(s) for s in PAPER_SPARSITIES}
    assert set(goldens["figure6"]) == {
        f"{model}|{gpu}"
        for model in ("transformer", "gnmt", "resnet50")
        for gpu in PAPER_GPUS
    }
