"""Golden-regression net over the analytical timing model.

The timing model is the substrate every number in the evaluation depends on:
Figure 1's crossover regions, Figure 6's speedup bars and the Section 6.2
headline all reduce to ``simulate()`` outputs.  This suite snapshots the
full paper grid into a checked-in JSON fixture:

* ``simulate``: per (GPU x paper kernel x sparsity) total time and bound
  classification on the Figure 1 GEMM shape (2048/128/2048), straight
  through ``SpMMKernel.estimate`` — no sweep machinery in the loop;
* ``figure6``: the complete Figure 6 speedup grid
  (3 models x 3 GPUs x kernel line-up x 4 sparsities).

A kernel/simulator refactor that shifts any total time, bound or speedup —
and therefore potentially a crossover point the paper's claims hinge on —
fails here with *every* cell that moved, and additionally writes the full
structured diff to ``golden-diff.json`` (path overridable via the
``GOLDEN_DIFF_PATH`` environment variable) so CI can upload it as an
artifact and regressions are diagnosable from the Actions UI.  To shift the
goldens *deliberately*, regenerate the fixture and review the diff::

    python -m pytest tests/gpu/test_golden_timings.py --update-goldens
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.eval.runner import MODEL_VERSION
from repro.eval.speedup import PAPER_GPUS, PAPER_SPARSITIES, figure6_sweep
from repro.gpu.arch import get_gpu
from repro.kernels.base import GEMMShape, KernelNotApplicableError
from repro.kernels.registry import make_kernel, paper_baseline_specs

GOLDEN_PATH = Path(__file__).parent / "goldens" / "golden_timings.json"
#: The Figure 1 GEMM shape used for the per-kernel simulate() snapshot.
GOLDEN_SHAPE = (2048, 128, 2048)
#: Relative tolerance for float comparison: tight enough that any real model
#: change trips it, loose enough to absorb benign float-summation noise.
REL_TOL = 1.0e-9


def _simulate_grid() -> dict:
    """``{gpu: {kernel_label: {sparsity: {total_time_s, bound} | None}}}``."""
    shape = GEMMShape(*GOLDEN_SHAPE)
    grid: dict[str, dict[str, dict[str, dict | None]]] = {}
    for gpu in PAPER_GPUS:
        arch = get_gpu(gpu)
        per_kernel: dict[str, dict[str, dict | None]] = {}
        for label, (name, kwargs) in paper_baseline_specs().items():
            kernel = make_kernel(name, **kwargs)
            supported = getattr(kernel, "supported_archs", None)
            cells: dict[str, dict | None] = {}
            for sparsity in PAPER_SPARSITIES:
                key = str(sparsity)
                if supported is not None and arch.name not in supported:
                    cells[key] = None
                    continue
                try:
                    timing = kernel.estimate(arch, shape, 1.0 - sparsity)
                except (KernelNotApplicableError, ValueError):
                    cells[key] = None
                    continue
                cells[key] = {
                    "total_time_s": timing.total_time_s,
                    "bound": timing.bound,
                }
            per_kernel[label] = cells
        grid[gpu] = per_kernel
    return grid


def _figure6_grid() -> dict:
    """``{"model|gpu": {kernel_label: {sparsity: speedup | None}}}``."""
    results = figure6_sweep()
    return {
        f"{model}|{gpu}": {
            label: {str(s): value for s, value in by_sparsity.items()}
            for label, by_sparsity in per_kernel.items()
        }
        for (model, gpu), per_kernel in results.items()
    }


def build_goldens() -> dict:
    return {
        "model_version": MODEL_VERSION,
        "gemm_shape": list(GOLDEN_SHAPE),
        "simulate": _simulate_grid(),
        "figure6": _figure6_grid(),
    }


def _leaf_matches(golden, current) -> bool:
    if isinstance(golden, float) and isinstance(current, (int, float)):
        return current == pytest.approx(golden, rel=REL_TOL, abs=1e-15)
    return current == golden


def _tree_diff(path: str, golden, current, diffs: list[dict]) -> None:
    """Collect every differing cell (not just the first) into ``diffs``."""
    if isinstance(golden, dict):
        if not isinstance(current, dict):
            diffs.append({"path": path, "kind": "structure-changed"})
            return
        missing = sorted(set(golden) - set(current))
        new = sorted(set(current) - set(golden))
        if missing or new:
            diffs.append(
                {"path": path, "kind": "keys-changed", "missing": missing, "new": new}
            )
        for key in golden:
            if key in current:
                _tree_diff(f"{path}/{key}", golden[key], current[key], diffs)
    elif isinstance(golden, list):
        if not isinstance(current, list) or len(current) != len(golden):
            diffs.append({"path": path, "kind": "length-changed"})
            return
        for i, (g, c) in enumerate(zip(golden, current, strict=True)):
            _tree_diff(f"{path}[{i}]", g, c, diffs)
    elif not _leaf_matches(golden, current):
        diffs.append(
            {"path": path, "kind": "value-changed", "golden": golden, "current": current}
        )


def golden_diff_path() -> Path:
    """Where the structured diff lands (CI uploads this file on failure)."""
    return Path(os.environ.get("GOLDEN_DIFF_PATH", "golden-diff.json"))


def _write_diff_artifact(section: str, diffs: list[dict]) -> Path:
    """Merge one section's diff into the artifact file (sections are checked
    by separate tests, and all of them must land in one artifact)."""
    path = golden_diff_path()
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["model_version"] = MODEL_VERSION
    payload[section] = diffs
    path.write_text(json.dumps(payload, indent=1, default=str), encoding="utf-8")
    return path


def _check_tree(section: str, golden, current) -> None:
    __tracebackhide__ = True
    diffs: list[dict] = []
    _tree_diff(section, golden, current, diffs)
    if not diffs:
        return
    artifact = _write_diff_artifact(section, diffs)
    preview = "\n".join(
        f"  {d['path']}: {d['kind']}"
        + (
            f" golden={d['golden']!r} current={d['current']!r}"
            if d["kind"] == "value-changed"
            else ""
        )
        for d in diffs[:10]
    )
    more = f"\n  ... and {len(diffs) - 10} more" if len(diffs) > 10 else ""
    pytest.fail(
        f"{len(diffs)} golden '{section}' cell(s) moved "
        f"(full structured diff written to {artifact}):\n{preview}{more}"
    )


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture {GOLDEN_PATH} is missing; regenerate it with "
            "pytest tests/gpu/test_golden_timings.py --update-goldens"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_update_goldens(update_goldens):
    """Rewrites the fixture when ``--update-goldens`` is passed (and is a
    no-op assertion otherwise, so the flag has exactly one writer)."""
    if not update_goldens:
        pytest.skip("pass --update-goldens to regenerate the fixture")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(build_goldens(), sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )


def test_golden_model_version(goldens):
    """A MODEL_VERSION bump must come with regenerated goldens."""
    assert goldens["model_version"] == MODEL_VERSION, (
        "timing MODEL_VERSION changed; regenerate the goldens deliberately "
        "with --update-goldens and review the diff"
    )
    assert goldens["gemm_shape"] == list(GOLDEN_SHAPE)


def test_golden_simulate_totals_and_bounds(goldens):
    """simulate() totals and bound classification over GPUs x kernels x
    sparsities are unchanged."""
    _check_tree("simulate", goldens["simulate"], _simulate_grid())


def test_golden_figure6_speedups(goldens):
    """The full Figure 6 speedup grid (and its None applicability holes) is
    unchanged."""
    _check_tree("figure6", goldens["figure6"], _figure6_grid())


class TestDiffArtifact:
    """The failure path itself: a moved cell must produce a structured,
    uploadable diff file naming exactly the cells that moved."""

    def test_mismatch_writes_artifact_and_fails(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GOLDEN_DIFF_PATH", str(tmp_path / "golden-diff.json"))
        golden = {"V100": {"k": {"0.75": {"total_time_s": 1.0, "bound": "memory"}}}}
        current = {"V100": {"k": {"0.75": {"total_time_s": 2.0, "bound": "memory"}}}}
        with pytest.raises(pytest.fail.Exception, match="1 golden 'simulate'"):
            _check_tree("simulate", golden, current)
        payload = json.loads((tmp_path / "golden-diff.json").read_text())
        assert payload["model_version"] == MODEL_VERSION
        (diff,) = payload["simulate"]
        assert diff["path"] == "simulate/V100/k/0.75/total_time_s"
        assert diff["kind"] == "value-changed"
        assert diff["golden"] == 1.0 and diff["current"] == 2.0

    def test_sections_merge_into_one_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GOLDEN_DIFF_PATH", str(tmp_path / "golden-diff.json"))
        with pytest.raises(pytest.fail.Exception):
            _check_tree("simulate", {"a": 1.0}, {"a": 2.0})
        with pytest.raises(pytest.fail.Exception, match="keys-changed"):
            _check_tree("figure6", {"b": 1.0}, {"c": 1.0})
        payload = json.loads((tmp_path / "golden-diff.json").read_text())
        assert set(payload) == {"model_version", "simulate", "figure6"}

    def test_matching_trees_write_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GOLDEN_DIFF_PATH", str(tmp_path / "golden-diff.json"))
        tree = {"a": [1.0, 2.0], "b": None}
        _check_tree("simulate", tree, {"a": [1.0, 2.0], "b": None})
        assert not (tmp_path / "golden-diff.json").exists()


def test_golden_grid_is_complete(goldens):
    """The fixture really covers the paper grid: 3 GPUs x full kernel
    line-up x 4 sparsities, and 3 models x 3 GPUs for Figure 6."""
    simulate = goldens["simulate"]
    assert set(simulate) == set(PAPER_GPUS)
    labels = set(paper_baseline_specs())
    for gpu, per_kernel in simulate.items():
        assert set(per_kernel) == labels
        for cells in per_kernel.values():
            assert set(cells) == {str(s) for s in PAPER_SPARSITIES}
    assert set(goldens["figure6"]) == {
        f"{model}|{gpu}"
        for model in ("transformer", "gnmt", "resnet50")
        for gpu in PAPER_GPUS
    }
