"""Tests for tiling, occupancy and wave quantisation."""

import pytest

from repro.gpu.arch import T4, V100
from repro.gpu.tiling import (
    TileConfig,
    concurrent_tiles,
    default_gemm_tile,
    occupancy,
    optimal_tile_extent,
    wave_count,
    wave_efficiency,
)


class TestTileConfig:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TileConfig(tile_m=0, tile_n=64, tile_k=32)

    def test_threads_must_be_warp_multiple(self):
        with pytest.raises(ValueError):
            TileConfig(tile_m=64, tile_n=64, tile_k=32, threads=100)

    def test_smem_scales_with_stages(self):
        one = TileConfig(64, 64, 32, pipeline_stages=1)
        two = TileConfig(64, 64, 32, pipeline_stages=2)
        assert two.smem_bytes == 2 * one.smem_bytes

    def test_grid_tiles(self):
        tile = TileConfig(64, 64, 32)
        assert tile.grid_tiles(128, 128) == 4
        assert tile.grid_tiles(129, 128) == 6

    def test_k_steps(self):
        tile = TileConfig(64, 64, 32)
        assert tile.k_steps(64) == 2
        assert tile.k_steps(65) == 3

    def test_flops_and_bytes_per_step(self):
        tile = TileConfig(64, 32, 16)
        assert tile.flops_per_k_step == 2 * 64 * 32 * 16
        assert tile.load_bytes_per_k_step == (64 * 16 + 16 * 32) * 2

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            TileConfig(64, 64, 32).grid_tiles(0, 10)


class TestOccupancy:
    def test_small_tile_fits_many_blocks(self):
        small = TileConfig(32, 32, 16, threads=64)
        assert occupancy(V100, small) >= 2

    def test_huge_tile_still_runs(self):
        huge = TileConfig(256, 256, 64, pipeline_stages=3)
        assert occupancy(V100, huge) == 1

    def test_concurrent_tiles_scales_with_sms(self):
        tile = TileConfig(64, 64, 32)
        assert concurrent_tiles(V100, tile) == occupancy(V100, tile) * 80
        assert concurrent_tiles(V100, tile) > concurrent_tiles(T4, tile)


class TestWaves:
    def test_one_wave_when_grid_fits(self):
        tile = TileConfig(64, 64, 32)
        assert wave_count(V100, tile, 10) == 1

    def test_multiple_waves_for_large_grids(self):
        tile = TileConfig(64, 64, 32)
        conc = concurrent_tiles(V100, tile)
        assert wave_count(V100, tile, conc + 1) == 2

    def test_wave_efficiency_in_unit_interval(self):
        tile = TileConfig(64, 64, 32)
        for tiles in (1, 10, 1000, 4096):
            eff = wave_efficiency(V100, tile, tiles)
            assert 0.0 < eff <= 1.0

    def test_invalid_num_tiles(self):
        with pytest.raises(ValueError):
            wave_count(V100, TileConfig(64, 64, 32), 0)


class TestOptimalTile:
    def test_matches_regfile_formula(self):
        t_opt = optimal_tile_extent(V100)
        assert t_opt == pytest.approx((256 * 1024 / 4) ** 0.5)

    def test_default_tile_shrinks_for_small_problems(self):
        tile = default_gemm_tile(64, 64, 64)
        assert tile.tile_m <= 64
        assert tile.tile_n <= 64

    def test_default_tile_prefers_large_tiles_for_big_problems(self):
        tile = default_gemm_tile(8192, 8192, 8192)
        assert tile.tile_m == 128
        assert tile.tile_n == 128

    def test_default_tile_creates_enough_parallelism(self):
        tile = default_gemm_tile(2048, 128, 2048, min_tiles=96)
        grid = tile.grid_tiles(2048, 128)
        assert grid >= 96 or (tile.tile_m == 32 and tile.tile_n == 32)
