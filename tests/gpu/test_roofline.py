"""Tests for the roofline / operation-intensity analysis (Section 3.2.2)."""

import math

import pytest

from repro.gpu.arch import A100, T4, V100
from repro.gpu.roofline import (
    attainable_flops,
    dense_gemm_intensity,
    dense_tile_reuse,
    machine_balance,
    max_reuse_blockwise,
    max_reuse_dense,
    max_reuse_unstructured,
    reuse_ratio_vs_dense,
)
from repro.gpu.tiling import optimal_tile_extent


class TestRoofline:
    def test_memory_bound_below_balance(self):
        balance = machine_balance(V100)
        point = attainable_flops(V100, balance / 10)
        assert point.memory_bound
        assert point.attainable_flops < point.peak_flops

    def test_compute_bound_above_balance(self):
        balance = machine_balance(V100)
        point = attainable_flops(V100, balance * 10)
        assert not point.memory_bound
        assert point.attainable_flops == pytest.approx(point.peak_flops)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            attainable_flops(V100, -1.0)

    def test_efficiency_bounded(self):
        point = attainable_flops(V100, 10.0)
        assert 0.0 < point.efficiency <= 1.0

    def test_a100_balance_highest(self):
        assert machine_balance(A100) > machine_balance(V100)


class TestIntensity:
    def test_dense_gemm_intensity_grows_with_size(self):
        small = dense_gemm_intensity(128, 128, 128)
        large = dense_gemm_intensity(4096, 4096, 4096)
        assert large > small

    def test_square_tile_reuse(self):
        # 2 * T^2 / (2T values * 2 bytes) = T / 2 flop per byte.
        assert dense_tile_reuse(128, 128) == pytest.approx(64.0)
        assert dense_tile_reuse(256, 256) == pytest.approx(128.0)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            dense_gemm_intensity(0, 1, 1)
        with pytest.raises(ValueError):
            dense_tile_reuse(0, 4)


class TestMaxReuse:
    def test_unstructured_follows_sqrt_alpha(self):
        dense = max_reuse_dense(V100)
        for alpha in (0.5, 0.25, 0.1, 0.05):
            assert max_reuse_unstructured(V100, alpha) == pytest.approx(
                math.sqrt(alpha) * dense
            )

    def test_unstructured_reuse_vanishes_with_sparsity(self):
        assert max_reuse_unstructured(V100, 0.01) < max_reuse_unstructured(V100, 0.5)

    def test_blockwise_reuse_independent_of_density(self):
        # The paper's key point: block-wise tiles stay dense regardless of
        # the overall sparsity, so reuse does not degrade.
        assert max_reuse_blockwise(V100, 64) == max_reuse_blockwise(V100, 64)

    def test_blockwise_matches_dense_when_v_reaches_t_opt(self):
        t_opt = int(optimal_tile_extent(V100))
        assert max_reuse_blockwise(V100, t_opt) == pytest.approx(max_reuse_dense(V100), rel=0.01)

    def test_blockwise_beats_unstructured_at_high_sparsity(self):
        # Section 3.2.2 summary: at DNN-relevant sparsity, block/vector/Shfl-BW
        # retain more reuse than unstructured patterns.
        assert max_reuse_blockwise(V100, 64) > max_reuse_unstructured(V100, 0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_reuse_unstructured(V100, 0.0)
        with pytest.raises(ValueError):
            max_reuse_blockwise(V100, 0)


class TestReuseRatio:
    def test_dense_ratio_is_one(self):
        assert reuse_ratio_vs_dense(V100, "dense", 1.0) == 1.0

    def test_shflbw_same_as_blockwise(self):
        assert reuse_ratio_vs_dense(V100, "shflbw", 0.25, 64) == pytest.approx(
            reuse_ratio_vs_dense(V100, "blockwise", 0.25, 64)
        )

    def test_balanced_same_as_unstructured(self):
        assert reuse_ratio_vs_dense(V100, "balanced", 0.5) == pytest.approx(
            reuse_ratio_vs_dense(V100, "unstructured", 0.5)
        )

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            reuse_ratio_vs_dense(T4, "mystery", 0.5)
