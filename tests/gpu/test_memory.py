"""Tests for the memory-traffic model."""

import pytest

from repro.gpu.arch import T4, V100
from repro.gpu.memory import (
    BYTES_FP16,
    OperandTraffic,
    TrafficBreakdown,
    gather_access_efficiency,
)


class TestOperandTraffic:
    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            OperandTraffic("weight", -1.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            OperandTraffic("weight", 1.0, access_efficiency=0.0)
        with pytest.raises(ValueError):
            OperandTraffic("weight", 1.0, access_efficiency=1.5)

    def test_raw_bytes_scale_with_reads(self):
        op = OperandTraffic("activation", 1024.0, reads=4.0)
        assert op.raw_bytes == 4096.0

    def test_small_footprint_rereads_filtered_by_l2(self):
        op = OperandTraffic("activation", 1024.0, reads=8.0)
        # 1 KiB fits easily in half the L2: only one DRAM read.
        assert op.dram_bytes(V100) == pytest.approx(1024.0)

    def test_large_footprint_rereads_hit_dram(self):
        huge = 100 * 1024 * 1024  # much larger than L2
        op = OperandTraffic("activation", float(huge), reads=4.0)
        assert op.dram_bytes(V100) > 3.5 * huge

    def test_partial_l2_residency_interpolates(self):
        half_l2 = V100.l2_capacity / 2
        op = OperandTraffic("activation", 2.0 * half_l2, reads=3.0)
        dram = op.dram_bytes(V100)
        assert 2.0 * half_l2 < dram < 6.0 * half_l2

    def test_writes_not_filtered(self):
        op = OperandTraffic("output", 1024.0, reads=4.0, is_write=True)
        assert op.dram_bytes(V100) == pytest.approx(4096.0)

    def test_access_efficiency_inflates_traffic(self):
        op = OperandTraffic("gather", 1024.0, access_efficiency=0.5)
        assert op.dram_bytes(V100) == pytest.approx(2048.0)


class TestTrafficBreakdown:
    def _traffic(self) -> TrafficBreakdown:
        t = TrafficBreakdown()
        t.add("weight", 1.0e6)
        t.add("activation", 2.0e6, reads=2.0)
        t.add("output", 0.5e6, is_write=True)
        return t

    def test_total_raw_bytes(self):
        assert self._traffic().total_raw_bytes() == pytest.approx(1.0e6 + 4.0e6 + 0.5e6)

    def test_dram_time_positive_and_scaled_by_efficiency(self):
        traffic = self._traffic()
        full = traffic.dram_time(V100, bandwidth_efficiency=1.0)
        derated = traffic.dram_time(V100, bandwidth_efficiency=0.5)
        assert derated == pytest.approx(2.0 * full)

    def test_memory_time_at_least_dram_and_l2(self):
        traffic = self._traffic()
        assert traffic.memory_time(V100) >= traffic.dram_time(V100)
        assert traffic.memory_time(V100) >= traffic.l2_time(V100)

    def test_t4_slower_than_v100_on_same_traffic(self):
        traffic = self._traffic()
        assert traffic.dram_time(T4) > traffic.dram_time(V100)

    def test_by_operand_merges_names(self):
        t = TrafficBreakdown()
        t.add("weight", 100.0)
        t.add("weight", 50.0)
        assert t.by_operand(V100)["weight"] == pytest.approx(150.0)

    def test_operation_intensity(self):
        t = TrafficBreakdown()
        t.add("weight", 1000.0)
        assert t.operation_intensity(2000.0, V100) == pytest.approx(2.0)

    def test_operation_intensity_infinite_for_zero_traffic(self):
        assert TrafficBreakdown().operation_intensity(10.0, V100) == float("inf")

    def test_invalid_bandwidth_efficiency(self):
        with pytest.raises(ValueError):
            self._traffic().dram_time(V100, bandwidth_efficiency=0.0)


class TestGatherEfficiency:
    def test_full_line_is_fully_efficient(self):
        assert gather_access_efficiency(128) == 1.0

    def test_short_runs_waste_bandwidth(self):
        assert gather_access_efficiency(BYTES_FP16) == pytest.approx(2 / 32)

    def test_invalid_run_length(self):
        with pytest.raises(ValueError):
            gather_access_efficiency(0)
