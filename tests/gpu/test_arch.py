"""Tests for the GPU architecture registry."""

import pytest

from repro.gpu.arch import (
    A100,
    T4,
    V100,
    MMAShape,
    available_gpus,
    get_gpu,
    register_gpu,
)


class TestMMAShape:
    def test_flops_counts_macs_as_two_ops(self):
        assert MMAShape(16, 8, 16).flops == 2 * 16 * 8 * 16

    def test_str_contains_dims(self):
        assert str(MMAShape(16, 8, 16)) == "m16n8k16"


class TestRegistry:
    def test_available_gpus_contains_paper_gpus(self):
        assert {"A100", "T4", "V100"} <= set(available_gpus())

    def test_get_gpu_case_insensitive(self):
        assert get_gpu("v100") is V100
        assert get_gpu("T4") is T4

    def test_get_gpu_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            get_gpu("H100")

    def test_register_custom_gpu(self):
        custom = V100.with_overrides(name="TEST-GPU")
        register_gpu(custom)
        assert get_gpu("test-gpu") is custom

    def test_register_duplicate_requires_overwrite(self):
        with pytest.raises(ValueError):
            register_gpu(V100)
        register_gpu(V100, overwrite=True)


class TestPaperSpecs:
    def test_a100_has_sparse_tensor_cores(self):
        assert A100.supports_sparse_tensor_core
        assert not V100.supports_sparse_tensor_core
        assert not T4.supports_sparse_tensor_core

    def test_tensor_core_peak_exceeds_cuda_core_peak(self):
        for arch in (V100, T4, A100):
            assert arch.tensor_flops > 3 * arch.cuda_core_flops

    def test_a100_is_fastest(self):
        assert A100.tensor_flops > V100.tensor_flops > T4.tensor_flops
        assert A100.dram_bandwidth > V100.dram_bandwidth > T4.dram_bandwidth

    def test_a100_needs_about_63_macs_per_value(self):
        # Section 2.1: "one needs to perform 63 MACs on each loaded value".
        assert 50 <= A100.macs_per_value_for_peak <= 80

    def test_compute_to_bandwidth_positive(self):
        for arch in (V100, T4, A100):
            assert arch.compute_to_bandwidth > 0

    def test_per_sm_throughput(self):
        assert V100.tensor_flops_per_sm == pytest.approx(V100.tensor_flops / 80)
        assert V100.cuda_core_flops_per_sm == pytest.approx(V100.cuda_core_flops / 80)

    def test_with_overrides_does_not_mutate(self):
        modified = V100.with_overrides(sm_count=100)
        assert modified.sm_count == 100
        assert V100.sm_count == 80

    def test_peak_flops_selects_unit(self):
        assert V100.peak_flops(True) == V100.tensor_flops
        assert V100.peak_flops(False) == V100.cuda_core_flops
