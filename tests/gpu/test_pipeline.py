"""Tests for the software-pipeline / metadata-prefetch model."""

import pytest

from repro.gpu.pipeline import PipelineSpec, dense_pipeline_time, pipeline_time


class TestPipelineSpec:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec(compute_time=-1.0, load_time=1.0)

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec(compute_time=1.0, load_time=1.0, k_steps=0)
        with pytest.raises(ValueError):
            PipelineSpec(compute_time=1.0, load_time=1.0, pipeline_stages=0)
        with pytest.raises(ValueError):
            PipelineSpec(compute_time=1.0, load_time=1.0, meta_prefetch_steps=0)


class TestOverlap:
    def test_pipelined_loop_is_max_of_streams(self):
        spec = PipelineSpec(compute_time=2.0, load_time=1.0, k_steps=10, pipeline_stages=2)
        est = pipeline_time(spec)
        assert est.steady_state_time == pytest.approx(20.0)
        assert est.bound == "compute"

    def test_memory_bound_when_loads_dominate(self):
        spec = PipelineSpec(compute_time=1.0, load_time=3.0, k_steps=10, pipeline_stages=2)
        est = pipeline_time(spec)
        assert est.bound == "memory"
        assert est.steady_state_time == pytest.approx(30.0)

    def test_single_stage_serialises(self):
        spec = PipelineSpec(compute_time=1.0, load_time=1.0, k_steps=10, pipeline_stages=1)
        est = pipeline_time(spec)
        assert est.bound == "serial"
        assert est.steady_state_time == pytest.approx(20.0)

    def test_prologue_grows_with_stages(self):
        short = PipelineSpec(compute_time=1.0, load_time=1.0, k_steps=10, pipeline_stages=2)
        deep = PipelineSpec(compute_time=1.0, load_time=1.0, k_steps=10, pipeline_stages=4)
        assert pipeline_time(deep).prologue_time > pipeline_time(short).prologue_time

    def test_overlap_efficiency_bounded(self):
        spec = PipelineSpec(compute_time=1.0, load_time=1.0, k_steps=5, pipeline_stages=3)
        est = pipeline_time(spec)
        assert 0.0 < est.overlap_efficiency <= 1.0


class TestMetadataPrefetch:
    def _spec(self) -> PipelineSpec:
        return PipelineSpec(
            compute_time=2.0,
            load_time=1.5,
            meta_time=1.0,
            k_steps=20,
            pipeline_stages=3,
            meta_prefetch_steps=4,
        )

    def test_prefetching_hides_metadata_latency(self):
        spec = self._spec()
        with_prefetch = pipeline_time(spec, prefetch_metadata=True)
        without = pipeline_time(spec, prefetch_metadata=False)
        assert with_prefetch.total_time < without.total_time

    def test_no_benefit_when_metadata_free(self):
        spec = PipelineSpec(compute_time=2.0, load_time=1.0, meta_time=0.0, k_steps=10)
        assert pipeline_time(spec, prefetch_metadata=True).total_time == pytest.approx(
            pipeline_time(spec, prefetch_metadata=False).total_time
        )

    def test_dense_pipeline_helper(self):
        est = dense_pipeline_time(compute_time=1.0, load_time=2.0, k_steps=10)
        assert est.bound == "memory"
        assert est.total_time > 0
