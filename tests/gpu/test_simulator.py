"""Tests for the kernel-timing simulator."""

import pytest

from repro.gpu.arch import A100, T4, V100
from repro.gpu.memory import TrafficBreakdown
from repro.gpu.simulator import ComputeUnit, KernelLaunch, simulate
from repro.gpu.tiling import TileConfig


def make_launch(**overrides) -> KernelLaunch:
    """A plausible mid-sized GEMM launch used across tests."""
    traffic = TrafficBreakdown()
    traffic.add("weight", 8.0e6)
    traffic.add("activation", 1.0e6, reads=4.0)
    traffic.add("output", 1.0e6, is_write=True)
    defaults = dict(
        name="test-kernel",
        useful_flops=2.0e9,
        traffic=traffic,
        tile=TileConfig(64, 64, 32),
        num_tiles=512,
        k_steps=32,
    )
    defaults.update(overrides)
    return KernelLaunch(**defaults)


class TestLaunchValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            make_launch(useful_flops=-1.0)

    def test_invalid_tiles_rejected(self):
        with pytest.raises(ValueError):
            make_launch(num_tiles=0)
        with pytest.raises(ValueError):
            make_launch(k_steps=0)
        with pytest.raises(ValueError):
            make_launch(launches=0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            make_launch(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            make_launch(bandwidth_efficiency=1.5)


class TestSimulate:
    def test_total_time_positive(self):
        timing = simulate(V100, make_launch())
        assert timing.total_time_s > 0
        assert timing.waves >= 1

    def test_faster_gpu_is_faster(self):
        launch = make_launch()
        assert simulate(A100, launch).total_time_s < simulate(T4, launch).total_time_s

    def test_includes_launch_overhead(self):
        timing = simulate(V100, make_launch())
        assert timing.overhead_s >= V100.kernel_launch_overhead_s

    def test_extra_overhead_added(self):
        base = simulate(V100, make_launch())
        slow = simulate(V100, make_launch(extra_overhead_s=1.0e-3))
        assert slow.total_time_s == pytest.approx(base.total_time_s + 1.0e-3, rel=1e-6)

    def test_cuda_core_slower_than_tensor_core(self):
        tc = simulate(V100, make_launch(compute_unit=ComputeUnit.TENSOR_CORE))
        cc = simulate(V100, make_launch(compute_unit=ComputeUnit.CUDA_CORE))
        assert cc.compute_time_s > tc.compute_time_s

    def test_sparse_tensor_core_only_helps_on_a100(self):
        launch_tc = make_launch(compute_unit=ComputeUnit.TENSOR_CORE)
        launch_sp = make_launch(compute_unit=ComputeUnit.SPARSE_TENSOR_CORE)
        assert simulate(A100, launch_sp).compute_time_s < simulate(A100, launch_tc).compute_time_s
        assert simulate(V100, launch_sp).compute_time_s == pytest.approx(
            simulate(V100, launch_tc).compute_time_s
        )

    def test_small_grid_underutilises_compute(self):
        # The same total work split into 8 huge tiles cannot use all 80 SMs,
        # while 80 smaller tiles can; the effective compute time reflects it.
        wide = simulate(V100, make_launch(num_tiles=80, k_steps=32))
        narrow = simulate(V100, make_launch(num_tiles=8, k_steps=320))
        assert narrow.compute_time_s > wide.compute_time_s

    def test_more_traffic_means_more_time(self):
        heavy_traffic = TrafficBreakdown()
        heavy_traffic.add("weight", 200.0e6)
        heavy = simulate(V100, make_launch(traffic=heavy_traffic))
        light = simulate(V100, make_launch())
        assert heavy.total_time_s > light.total_time_s

    def test_metadata_prefetch_beneficial(self):
        meta = TrafficBreakdown()
        meta.add("metadata", 4.0e6)
        with_prefetch = simulate(V100, make_launch(meta_traffic=meta, prefetch_metadata=True))
        without = simulate(V100, make_launch(meta_traffic=meta, prefetch_metadata=False))
        assert with_prefetch.total_time_s <= without.total_time_s

    def test_achieved_metrics_consistent(self):
        timing = simulate(V100, make_launch())
        assert timing.achieved_tflops == pytest.approx(
            timing.useful_flops / timing.total_time_s / 1e12
        )
        assert timing.achieved_bandwidth_gbs > 0

    def test_speedup_over(self):
        fast = simulate(A100, make_launch())
        slow = simulate(T4, make_launch())
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0
