"""Tests for the tensor-core / CUDA-core compute model."""

import pytest

from repro.gpu.arch import A100, V100, MMAShape
from repro.gpu.tensorcore import (
    ceil_div,
    cuda_core_time,
    mma_instructions_for_tile,
    sparse_tensor_core_time,
    tensor_core_tile_flops,
    tensor_core_time,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestMMACoverage:
    def test_exact_tile_needs_no_padding(self):
        mma = MMAShape(16, 8, 16)
        assert mma_instructions_for_tile(32, 16, 32, mma) == 2 * 2 * 2

    def test_ragged_tile_rounds_up(self):
        mma = MMAShape(16, 8, 16)
        assert mma_instructions_for_tile(17, 9, 17, mma) == 2 * 2 * 2

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            mma_instructions_for_tile(0, 8, 16, MMAShape(16, 8, 16))

    def test_tile_flops_counts_padding(self):
        mma = MMAShape(16, 8, 16)
        assert tensor_core_tile_flops(8, 8, 16, mma) == mma.flops


class TestTensorCoreTime:
    def test_time_scales_inversely_with_peak(self):
        flops = 1.0e9
        t_v100 = tensor_core_time(V100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=1)
        t_a100 = tensor_core_time(A100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=1)
        assert t_a100.time_s < t_v100.time_s

    def test_small_tiles_waste_throughput(self):
        # Fragments smaller than the MMA granule still issue whole
        # instructions, so their useful/issued utilisation drops.
        aligned = tensor_core_time(
            V100, 2.0 * 16 * 16 * 16 * 1000, tile_m=16, tile_n=16, tile_k=16, num_tiles=1000
        )
        ragged = tensor_core_time(
            V100, 2.0 * 8 * 8 * 8 * 1000, tile_m=8, tile_n=8, tile_k=8, num_tiles=1000
        )
        assert ragged.utilization < aligned.utilization

    def test_utilization_never_exceeds_one(self):
        est = tensor_core_time(V100, 1.0e9, tile_m=64, tile_n=64, tile_k=64, num_tiles=10)
        assert 0.0 < est.utilization <= 1.0

    def test_efficiency_bounds_checked(self):
        with pytest.raises(ValueError):
            tensor_core_time(V100, 1.0, tile_m=16, tile_n=16, tile_k=16, num_tiles=1, efficiency=0.0)


class TestCudaCoreTime:
    def test_slower_than_tensor_core_for_same_work(self):
        flops = 1.0e9
        tc = tensor_core_time(V100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=100)
        cc = cuda_core_time(V100, flops)
        assert cc.time_s > tc.time_s

    def test_occupancy_derates_throughput(self):
        full = cuda_core_time(V100, 1.0e9, occupancy=1.0)
        half = cuda_core_time(V100, 1.0e9, occupancy=0.5)
        assert half.time_s == pytest.approx(2.0 * full.time_s)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cuda_core_time(V100, 1.0, efficiency=2.0)
        with pytest.raises(ValueError):
            cuda_core_time(V100, 1.0, occupancy=0.0)
        with pytest.raises(ValueError):
            cuda_core_time(V100, 1.0, vector_width=0)


class TestSparseTensorCore:
    def test_a100_halves_time(self):
        flops = 1.0e9
        dense = tensor_core_time(A100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=100)
        sparse = sparse_tensor_core_time(A100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=100)
        assert sparse.time_s == pytest.approx(dense.time_s / 2.0)

    def test_no_benefit_without_hardware_support(self):
        flops = 1.0e9
        dense = tensor_core_time(V100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=100)
        sparse = sparse_tensor_core_time(V100, flops, tile_m=128, tile_n=128, tile_k=64, num_tiles=100)
        assert sparse.time_s == pytest.approx(dense.time_s)
