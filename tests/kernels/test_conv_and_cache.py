"""Tests for the convolution estimation path, the activation-traffic lower
bound and the prepare cache."""

import numpy as np
import pytest

from repro.gpu.arch import get_gpu
from repro.kernels.base import (
    GEMMShape,
    KernelNotApplicableError,
    activation_traffic,
    conv_to_gemm_shape,
)
from repro.kernels.registry import make_kernel
from repro.sparse.spconv import Conv2dSpec

V100 = get_gpu("V100")


class TestActivationTrafficLowerBound:
    def test_clamps_to_kept_fraction_when_single_row_tile(self):
        # M <= row_tile: one tile covers all rows, so the compulsory traffic
        # is kept_fraction of the activation footprint — not the full matrix.
        shape = GEMMShape(m=32, n=64, k=256)
        traffic = activation_traffic(shape, row_tile=64, kept_fraction=0.25)
        (operand,) = traffic.operands
        assert operand.reads == pytest.approx(0.25)

    def test_dense_behaviour_unchanged(self):
        shape = GEMMShape(m=32, n=64, k=256)
        traffic = activation_traffic(shape, row_tile=64, kept_fraction=1.0)
        (operand,) = traffic.operands
        assert operand.reads == pytest.approx(1.0)

    def test_multi_tile_reads_unchanged(self):
        shape = GEMMShape(m=256, n=64, k=256)
        traffic = activation_traffic(shape, row_tile=64, kept_fraction=0.5)
        (operand,) = traffic.operands
        assert operand.reads == pytest.approx(4 * 0.5)


class TestEstimateConvOverhead:
    def test_3x3_conv_pays_unfold_overhead(self):
        kernel = make_kernel("shfl-bw", vector_size=32)
        spec = Conv2dSpec(64, 128, 3, padding=1)
        shape = conv_to_gemm_shape(spec, batch=8, height=14, width=14)
        gemm = kernel.estimate(V100, shape, 0.25)
        conv = kernel.estimate_conv(V100, spec, 0.25, batch=8, height=14, width=14)
        expected = gemm.total_time_s * (
            1.0 + kernel.conv_unfold_overhead * (1.0 - 1.0 / 9.0)
        )
        assert conv.total_time_s == pytest.approx(expected)
        assert conv.total_time_s > gemm.total_time_s

    def test_1x1_conv_unfolds_for_free(self):
        kernel = make_kernel("dense")
        spec = Conv2dSpec(256, 64, 1)
        shape = conv_to_gemm_shape(spec, batch=8, height=14, width=14)
        gemm = kernel.estimate(V100, shape, 1.0)
        conv = kernel.estimate_conv(V100, spec, 1.0, batch=8, height=14, width=14)
        assert conv.total_time_s == pytest.approx(gemm.total_time_s)

    def test_unsupported_kernel_still_rejected(self):
        spec = Conv2dSpec(64, 128, 3, padding=1)
        with pytest.raises(KernelNotApplicableError):
            make_kernel("cusparse-bsr").estimate_conv(
                V100, spec, 0.25, batch=8, height=14, width=14
            )


class TestPrepareCache:
    def _counting_kernel(self):
        kernel = make_kernel("shfl-bw", vector_size=4)
        calls = {"prepare": 0}
        original = kernel.prepare

        def counted(weight, **kwargs):
            calls["prepare"] += 1
            return original(weight, **kwargs)

        kernel.prepare = counted
        return kernel, calls

    def test_matmul_reuses_compressed_weights(self, rng):
        kernel, calls = self._counting_kernel()
        weight = rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5)
        a1 = rng.normal(size=(16, 3))
        a2 = rng.normal(size=(16, 5))
        out1 = kernel.matmul(weight, a1)
        out2 = kernel.matmul(weight, a2)
        assert calls["prepare"] == 1
        np.testing.assert_allclose(out1, weight @ a1, atol=1e-10)
        np.testing.assert_allclose(out2, weight @ a2, atol=1e-10)

    def test_different_weights_not_conflated(self, rng):
        kernel, calls = self._counting_kernel()
        w1 = rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5)
        w2 = w1.copy()
        w2[0, 0] += 1.0
        acts = rng.normal(size=(16, 3))
        out1 = kernel.matmul(w1, acts)
        out2 = kernel.matmul(w2, acts)
        assert calls["prepare"] == 2
        np.testing.assert_allclose(out1, w1 @ acts, atol=1e-10)
        np.testing.assert_allclose(out2, w2 @ acts, atol=1e-10)

    def test_kwargs_part_of_cache_key(self, rng):
        kernel, calls = self._counting_kernel()
        weight = rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5)
        acts = rng.normal(size=(16, 3))
        kernel.matmul(weight, acts)
        kernel.matmul(weight, acts, row_indices=np.arange(8)[::-1].copy())
        assert calls["prepare"] == 2

    def test_cache_is_bounded(self, rng):
        kernel, calls = self._counting_kernel()
        kernel.prepare_cache_size = 2
        acts = rng.normal(size=(16, 3))
        weights = [
            rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5) for _ in range(3)
        ]
        for w in weights:
            kernel.matmul(w, acts)
        assert len(kernel._prepare_cache) == 2
        # The oldest entry was evicted; using it again re-prepares.
        kernel.matmul(weights[0], acts)
        assert calls["prepare"] == 4
