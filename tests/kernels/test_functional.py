"""Functional correctness of every kernel: prepare + run must reproduce the
dense matmul of the (pattern-pruned) weight matrix."""

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw
from repro.kernels.registry import make_kernel
from repro.pruning.patterns import (
    BalancedPruner,
    BlockwisePruner,
    UnstructuredPruner,
    VectorwisePruner,
)
from repro.sparse.spconv import Conv2dSpec, conv2d_dense


@pytest.fixture
def activations(rng):
    return rng.normal(size=(48, 12))


@pytest.fixture
def weight(rng):
    return rng.normal(size=(32, 48))


class TestDenseKernels:
    def test_dense_tensorcore(self, weight, activations):
        kernel = make_kernel("dense")
        np.testing.assert_allclose(kernel.matmul(weight, activations), weight @ activations)

    def test_dense_cudacore(self, weight, activations):
        kernel = make_kernel("dense-cudacore")
        np.testing.assert_allclose(kernel.matmul(weight, activations), weight @ activations)


class TestUnstructuredKernels:
    @pytest.mark.parametrize("name", ["sputnik", "cusparse-csr"])
    def test_matches_dense(self, name, weight, activations):
        pruned = UnstructuredPruner().prune(weight, 0.7).weights
        kernel = make_kernel(name)
        np.testing.assert_allclose(
            kernel.matmul(pruned, activations), pruned @ activations, atol=1e-12
        )


class TestBlockwiseKernel:
    def test_matches_dense(self, weight, activations):
        pruned = BlockwisePruner(block_size=8).prune(weight, 0.5).weights
        kernel = make_kernel("cusparse-bsr", block_size=8)
        np.testing.assert_allclose(
            kernel.matmul(pruned, activations), pruned @ activations, atol=1e-12
        )


class TestBalancedKernel:
    def test_matches_dense(self, weight, activations):
        pruned = BalancedPruner().prune(weight, 0.5).weights
        kernel = make_kernel("cusparselt")
        np.testing.assert_allclose(
            kernel.matmul(pruned, activations), pruned @ activations, atol=1e-12
        )


class TestVectorWiseKernels:
    @pytest.mark.parametrize("name,v", [("vector-wise", 8), ("vectorsparse", 8), ("tilewise", 16)])
    def test_matches_dense(self, name, v, weight, activations):
        pruned = VectorwisePruner(vector_size=v).prune(weight, 0.75).weights
        kernel = make_kernel(name, vector_size=v)
        np.testing.assert_allclose(
            kernel.matmul(pruned, activations), pruned @ activations, atol=1e-12
        )


class TestShflBWKernel:
    def test_matches_dense_with_permutation(self, weight, activations):
        pruned, result = prune_shflbw(weight, sparsity=0.75, vector_size=8)
        kernel = make_kernel("shfl-bw", vector_size=8)
        out = kernel.matmul(pruned, activations, row_indices=result.row_indices)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)

    def test_matches_dense_without_permutation(self, weight, activations):
        pruned = VectorwisePruner(vector_size=8).prune(weight, 0.5).weights
        kernel = make_kernel("shfl-bw", vector_size=8)
        np.testing.assert_allclose(
            kernel.matmul(pruned, activations), pruned @ activations, atol=1e-12
        )

    def test_conv_kernel_matches_dense_conv(self, rng):
        spec = Conv2dSpec(2, 8, 3, padding=1)
        inputs = rng.normal(size=(1, 2, 6, 6))
        conv_weight = rng.normal(size=(8, 2, 3, 3))
        gemm_weight = conv_weight.reshape(8, -1)
        pruned, result = prune_shflbw(gemm_weight, sparsity=0.5, vector_size=4)
        kernel = make_kernel("shfl-bw-conv", vector_size=4)
        out = kernel.conv_matmul(
            pruned.reshape(conv_weight.shape), inputs, spec, row_indices=result.row_indices
        )
        expected = conv2d_dense(inputs, pruned.reshape(conv_weight.shape), spec)
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestEndToEndPruneThenRun:
    """The full paper pipeline: search the pattern, compress, execute."""

    def test_prune_compress_execute(self, rng, activations):
        weight = rng.normal(size=(64, 48))
        pruned, result = prune_shflbw(weight, sparsity=0.8, vector_size=16)
        kernel = make_kernel("shfl-bw", vector_size=16)
        prepared = kernel.prepare(pruned, row_indices=result.row_indices)
        out = kernel.run(prepared, activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)
        # The compressed format stores only the kept density.
        assert prepared.density == pytest.approx(1.0 - 0.8, abs=0.05)
