"""Hypothesis net: every kernel's batched grid estimation matches scalar.

For every kernel in the registry's paper line-up, over random shapes,
densities and architectures:

* ``estimate_grid`` must reproduce ``estimate`` *bit for bit* on every cell
  a scalar estimate accepts (every :class:`KernelTiming` field, not just the
  totals),
* ``build_launch_batch`` must raise exactly when the scalar path raises
  (same exception type) on grids containing an invalid cell,
* the model-grid helpers (``model_time_grid`` / ``layer_times_grid``) must
  reproduce the scalar ``model_time`` / ``layer_time`` sums, convolution
  unfolding overhead included.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.speedup import layer_time, layer_times_grid, model_time, model_time_grid
from repro.gpu.arch import available_gpus, get_gpu
from repro.kernels.base import GEMMShape, KernelNotApplicableError, SpMMKernel
from repro.kernels.registry import make_kernel, paper_baseline_specs
from repro.models.shapes import model_layers

SETTINGS = dict(max_examples=40, deadline=None)

#: Every distinct kernel of the paper line-up (label -> constructor spec).
KERNEL_SPECS = sorted(paper_baseline_specs().items())
gpus = st.sampled_from(sorted(available_gpus()))
kernel_specs = st.sampled_from(KERNEL_SPECS)
#: Multiples of 64 keep every vector/block size in the line-up divisible.
aligned_dims = st.integers(min_value=1, max_value=48).map(lambda i: i * 64)
batch_dims = st.integers(min_value=1, max_value=4096)
densities = st.sampled_from((0.05, 0.1, 0.25, 0.5, 0.75, 1.0))


def _supported(kernel, arch) -> bool:
    supported = getattr(kernel, "supported_archs", None)
    return supported is None or arch.name in supported


@st.composite
def grids(draw):
    cells = draw(st.integers(min_value=1, max_value=6))
    shapes = [
        GEMMShape(draw(aligned_dims), draw(batch_dims), draw(aligned_dims))
        for _ in range(cells)
    ]
    return shapes, [draw(densities) for _ in range(cells)]


class TestEstimateGridMatchesScalar:
    def test_every_registry_kernel_overrides_the_batched_builder(self):
        for _, (name, kwargs) in KERNEL_SPECS:
            kernel = make_kernel(name, **kwargs)
            assert (
                type(kernel).build_launch_batch is not SpMMKernel.build_launch_batch
            ), f"{name} still uses the scalar fallback builder"

    @settings(**SETTINGS)
    @given(spec=kernel_specs, grid=grids(), gpu=gpus)
    def test_cells_bit_identical(self, spec, grid, gpu):
        _, (name, kwargs) = spec
        kernel = make_kernel(name, **kwargs)
        arch = get_gpu(gpu)
        if not _supported(kernel, arch):
            return
        shapes, cell_densities = grid
        scalars = []
        for shape, density in zip(shapes, cell_densities, strict=True):
            try:
                scalars.append(kernel.estimate(arch, shape, density))
            except (KernelNotApplicableError, ValueError):
                scalars.append(None)
        if any(timing is None for timing in scalars):
            # The scalar path rejects some cell; the batch must reject the
            # whole grid with the same exception family.
            with pytest.raises((KernelNotApplicableError, ValueError)):
                kernel.estimate_grid(arch, shapes, cell_densities)
            return
        timing = kernel.estimate_grid(arch, shapes, cell_densities)
        assert len(timing) == len(shapes)
        for index, scalar in enumerate(scalars):
            assert timing.timing(index) == scalar

    @settings(**SETTINGS)
    @given(grid=grids(), gpu=gpus, vector_size=st.sampled_from((8, 16, 32, 64)))
    def test_vector_size_kwarg_respected(self, grid, gpu, vector_size):
        kernel = make_kernel("shfl-bw")
        arch = get_gpu(gpu)
        shapes, cell_densities = grid
        timing = kernel.estimate_grid(
            arch, shapes, cell_densities, vector_size=vector_size
        )
        for index, (shape, density) in enumerate(zip(shapes, cell_densities, strict=True)):
            assert timing.timing(index) == kernel.estimate(
                arch, shape, density, vector_size=vector_size
            )

    @settings(**SETTINGS)
    @given(grid=grids(), gpu=gpus, prefetch=st.booleans(), writeback=st.booleans())
    def test_shflbw_ablation_variants_match(self, grid, gpu, prefetch, writeback):
        """The ablation knobs (metadata prefetch off, un-fused write-back)
        flow through the batched builder exactly as through the scalar one."""
        from repro.kernels.shflbw import ShflBWKernel

        kernel = ShflBWKernel(
            vector_size=32,
            prefetch_metadata=prefetch,
            reordered_write_back=writeback,
        )
        arch = get_gpu(gpu)
        shapes, cell_densities = grid
        timing = kernel.estimate_grid(arch, shapes, cell_densities)
        for index, scalar in enumerate(timing.timings()):
            assert scalar == kernel.estimate(
                arch, shapes[index], cell_densities[index]
            )

    def test_generic_fallback_builder_matches_scalar_too(self):
        """A custom kernel without an override still gets a correct (if
        unvectorized) batched path from the base class."""

        class Custom(type(make_kernel("dense"))):
            name = "custom-dense"
            build_launch_batch = SpMMKernel.build_launch_batch

        kernel = Custom()
        arch = get_gpu("V100")
        shapes = [GEMMShape(256, 64, 512), GEMMShape(128, 1024, 128)]
        timing = kernel.estimate_grid(arch, shapes, [1.0, 1.0])
        for index, shape in enumerate(shapes):
            assert timing.timing(index) == kernel.estimate(arch, shape, 1.0)


class TestModelGrids:
    @settings(**SETTINGS)
    @given(
        spec=kernel_specs,
        model=st.sampled_from(("transformer", "gnmt", "resnet50")),
        gpu=gpus,
        grid=st.lists(densities, min_size=1, max_size=4),
    )
    def test_model_time_grid_matches_scalar_sum(self, spec, model, gpu, grid):
        _, (name, kwargs) = spec
        kernel = make_kernel(name, **kwargs)
        arch = get_gpu(gpu)
        if not _supported(kernel, arch):
            return
        layers = model_layers(model)
        scalars = []
        for density in grid:
            try:
                scalars.append(model_time(kernel, arch, layers, density))
            except (KernelNotApplicableError, ValueError):
                scalars.append(None)
        if any(total is None for total in scalars):
            with pytest.raises((KernelNotApplicableError, ValueError)):
                model_time_grid(kernel, arch, layers, grid)
            return
        totals = model_time_grid(kernel, arch, layers, grid)
        assert totals.shape == (len(grid),)
        for index, scalar in enumerate(scalars):
            assert float(totals[index]) == scalar

    @settings(**SETTINGS)
    @given(
        model=st.sampled_from(("transformer", "gnmt", "resnet50")),
        gpu=gpus,
        density=densities,
    )
    def test_layer_times_grid_matches_layer_time(self, model, gpu, density):
        kernel = make_kernel("shfl-bw", vector_size=64)
        arch = get_gpu(gpu)
        layers = model_layers(model)
        times = layer_times_grid(kernel, arch, layers, density)
        assert times.shape == (len(layers),)
        for index, layer in enumerate(layers):
            assert float(times[index]) == layer_time(kernel, arch, layer, density)

    def test_conv_unsupported_kernel_raises_scalar_message(self):
        kernel = make_kernel("sputnik")
        layers = model_layers("resnet50")
        with pytest.raises(
            KernelNotApplicableError, match="no convolution implementation"
        ):
            model_time_grid(kernel, get_gpu("V100"), layers, [0.5])

    def test_conv_unfold_overhead_applied(self):
        """3x3 conv layers must pay the unfold overhead in the batched path
        (a pure-GEMM batch would undercut the scalar conv estimate)."""
        kernel = make_kernel("dense")
        arch = get_gpu("V100")
        layers = [
            layer for layer in model_layers("resnet50") if layer.conv.kernel_size > 1
        ]
        times = layer_times_grid(kernel, arch, layers, 1.0)
        for index, layer in enumerate(layers):
            bare = kernel.estimate(arch, layer.gemm, 1.0).total_time_s
            assert float(times[index]) > bare
