"""Behavioural tests of the kernel performance estimates.

These encode the paper's qualitative claims: how speedups scale with
sparsity, vector size and GPU, and which baselines fall where.
"""

import pytest

from repro.gpu.arch import get_gpu
from repro.kernels.base import GEMMShape, KernelNotApplicableError, conv_to_gemm_shape
from repro.kernels.registry import available_kernels, make_kernel, paper_baselines
from repro.sparse.spconv import Conv2dSpec

SHAPE = GEMMShape(m=2048, n=128, k=2048)
V100 = get_gpu("V100")
T4 = get_gpu("T4")
A100 = get_gpu("A100")


def time_of(name, arch, density, **kwargs):
    return make_kernel(name, **kwargs).estimate(arch, SHAPE, density).total_time_s


class TestGEMMShape:
    def test_flops(self):
        assert GEMMShape(2, 3, 4).flops == 48

    def test_sparse_flops(self):
        assert GEMMShape(2, 3, 4).sparse_flops(0.5) == 24

    def test_invalid(self):
        with pytest.raises(ValueError):
            GEMMShape(0, 1, 1)
        with pytest.raises(ValueError):
            GEMMShape(2, 3, 4).sparse_flops(0.0)

    def test_conv_to_gemm(self):
        spec = Conv2dSpec(64, 128, 3, padding=1)
        shape = conv_to_gemm_shape(spec, batch=8, height=14, width=14)
        assert shape.m == 128
        assert shape.k == 64 * 9
        assert shape.n == 8 * 14 * 14


class TestSpeedupTrends:
    def test_shflbw_speedup_grows_with_sparsity(self):
        dense = time_of("dense", V100, 1.0)
        times = [time_of("shfl-bw", V100, d, vector_size=64) for d in (0.5, 0.25, 0.15, 0.05)]
        speedups = [dense / t for t in times]
        assert speedups == sorted(speedups)

    def test_shflbw_beats_dense_at_75_percent(self):
        for arch in (V100, T4, A100):
            dense = make_kernel("dense").estimate(arch, SHAPE, 1.0).total_time_s
            sparse = make_kernel("shfl-bw", vector_size=64).estimate(arch, SHAPE, 0.25).total_time_s
            assert dense / sparse > 1.5

    def test_unstructured_below_dense_even_at_95_percent(self):
        # Figure 1 / Figure 6: unstructured sparsity cannot exceed the
        # tensor-core dense baseline at 95 % sparsity.
        dense = time_of("dense", V100, 1.0)
        sputnik = time_of("sputnik", V100, 0.05)
        assert dense / sputnik < 1.0

    def test_unstructured_beats_cuda_core_dense_at_high_sparsity(self):
        dense_cc = time_of("dense-cudacore", V100, 1.0)
        assert time_of("sputnik", V100, 0.1) < dense_cc

    def test_shflbw_matches_vector_wise(self):
        # Section 6.2: row shuffling costs 0.97-1.02x of vector-wise.
        for arch in (V100, T4, A100):
            for density in (0.25, 0.15):
                vw = make_kernel("vector-wise", vector_size=64).estimate(arch, SHAPE, density)
                sb = make_kernel("shfl-bw", vector_size=64).estimate(arch, SHAPE, density)
                ratio = vw.total_time_s / sb.total_time_s
                assert 0.95 <= ratio <= 1.05

    def test_larger_v_no_slower_on_t4(self):
        small = time_of("shfl-bw", T4, 0.25, vector_size=32)
        large = time_of("shfl-bw", T4, 0.25, vector_size=64)
        assert large <= small * 1.05

    def test_vectorsparse_slower_than_ours(self):
        # Section 6.2: V=8 limits data reuse.
        ours = time_of("shfl-bw", V100, 0.25, vector_size=32)
        theirs = time_of("vectorsparse", V100, 0.25)
        assert theirs > ours

    def test_tilewise_below_dense(self):
        dense = time_of("dense", V100, 1.0)
        tile = time_of("tilewise", V100, 0.25)
        assert dense / tile < 1.0

    def test_balanced_small_speedup_on_a100(self):
        dense = make_kernel("dense").estimate(A100, SHAPE, 1.0).total_time_s
        balanced = make_kernel("cusparselt").estimate(A100, SHAPE, 0.5).total_time_s
        assert 1.0 < dense / balanced < 2.0

    def test_balanced_rejected_off_a100_or_off_density(self):
        kernel = make_kernel("cusparselt")
        with pytest.raises(KernelNotApplicableError):
            kernel.estimate(V100, SHAPE, 0.5)
        with pytest.raises(KernelNotApplicableError):
            kernel.estimate(A100, SHAPE, 0.25)

    def test_bsr_requires_divisible_shape(self):
        kernel = make_kernel("cusparse-bsr", block_size=32)
        with pytest.raises(ValueError):
            kernel.estimate(V100, GEMMShape(m=100, n=64, k=128), 0.5)


class TestMetadata:
    def test_dense_kernel_has_no_metadata(self):
        assert make_kernel("dense").metadata_bytes(SHAPE, 1.0) == 0.0

    def test_shflbw_metadata_includes_row_indices(self):
        vw = make_kernel("vector-wise", vector_size=32).metadata_bytes(SHAPE, 0.25, vector_size=32)
        sb = make_kernel("shfl-bw", vector_size=32).metadata_bytes(SHAPE, 0.25, vector_size=32)
        assert sb == pytest.approx(vw + SHAPE.m * 4)

    def test_sparse_metadata_scales_with_density(self):
        kernel = make_kernel("sputnik")
        assert kernel.metadata_bytes(SHAPE, 0.5) > kernel.metadata_bytes(SHAPE, 0.1)


class TestRegistry:
    def test_all_registered_names_construct(self):
        for name in available_kernels():
            assert make_kernel(name) is not None

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            make_kernel("warp-speed")

    def test_paper_baselines_lineup(self):
        lineup = paper_baselines((32, 64))
        assert "Shfl-BW,V=32" in lineup
        assert "Shfl-BW,V=64" in lineup
        assert "Balanced 2in4" in lineup
        assert "TileWise (VW,V=128)" in lineup

    def test_conv_estimate_requires_support(self):
        spec = Conv2dSpec(64, 128, 3, padding=1)
        dense = make_kernel("dense")
        timing = dense.estimate_conv(A100, spec, 1.0, batch=8, height=14, width=14)
        assert timing.total_time_s > 0
        with pytest.raises(KernelNotApplicableError):
            make_kernel("sputnik").estimate_conv(A100, spec, 0.25, batch=8, height=14, width=14)
