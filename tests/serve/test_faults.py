"""Chaos suite: seeded fault schedules against the serving invariants.

Every test here drives the live service (or the pool directly) under a
deterministic :class:`FaultPlan` and asserts the robustness contract of
PR 9: every accepted request gets exactly one response (success or
structured error), surviving outputs are byte-identical to ``replay()``,
recovery is bounded (retry budget, quarantine, circuit breaker, hang
timeout), and shutdown always terminates within its bound.

The schedules are parameterised over seeds; CI's chaos-smoke job extends
the seed set through the ``CHAOS_SEED`` environment variable so every
matrix leg explores a different deterministic schedule.
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.serve import (
    FaultPlan,
    FaultSpec,
    InferenceService,
    PoolStompedWarning,
    ServeBatch,
    WorkerPool,
)

from conftest import LAYER, make_requests

#: Fixed local seed matrix; CI's chaos-smoke legs add more via CHAOS_SEED.
SEEDS = [0, 1, 2]
if os.environ.get("CHAOS_SEED"):
    SEEDS = sorted({*SEEDS, int(os.environ["CHAOS_SEED"])})


def chaos_service(plan, **overrides):
    """A width-1 service tuned for fast, deterministic chaos runs.

    Width 1 makes live batch composition identical to replay's (one
    request per batch), so surviving responses can be compared byte for
    byte; the tiny backoff keeps seeded kill-storms fast.
    """
    defaults = dict(
        workers=2,
        width=1,
        max_pending=256,
        backoff_base_s=0.01,
        hang_timeout_s=2.0,
        max_retries=3,
    )
    defaults.update(overrides)
    return InferenceService(plan, **defaults)


def serve_all(service, requests, *, timeout=120.0):
    """Submit every request and gather exactly one response per handle."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PoolStompedWarning)
        with service:
            handles = [service.submit(request) for request in requests]
            return [handle.result(timeout=timeout) for handle in handles]


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        left = FaultPlan.seeded(11, batches=50, rate=0.5)
        right = FaultPlan.seeded(11, batches=50, rate=0.5)
        assert left == right
        assert FaultPlan.seeded(12, batches=50, rate=0.5) != left

    def test_action_respects_attempt_budget(self):
        plan = FaultPlan((FaultSpec(kind="kill", batch_id=3, times=2),))
        assert plan.action_for(3, 0) is not None
        assert plan.action_for(3, 1) is not None
        assert plan.action_for(3, 2) is None
        assert plan.action_for(4, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", batch_id=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="kill", batch_id=0, times=0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, batches=4, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, batches=4, kinds=("meteor",))

    def test_empty_plan_is_falsy_and_inert(self):
        plan = FaultPlan()
        assert not plan
        assert plan.action_for(0, 0) is None


class TestSeededChaos:
    """The acceptance criterion: seeded schedules x worker counts."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_no_accepted_request_lost_or_unanswered(self, plan, seed, workers):
        requests = make_requests(18, seed=seed)
        fault_plan = FaultPlan.seeded(seed, batches=18, rate=0.4)
        service = chaos_service(plan, workers=workers, fault_plan=fault_plan)
        responses = serve_all(service, requests)
        # Exactly one response per accepted request, success or error.
        assert len(responses) == len(requests)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        # Surviving responses are byte-identical to the deterministic replay.
        replayed = service.replay(requests)
        survivors = 0
        for live, offline in zip(responses, replayed, strict=True):
            if live.ok:
                survivors += 1
                assert live.output.tobytes() == offline.output.tobytes()
            else:
                assert live.error  # structured, never empty
        # Accounting: every request is either served or answered with an error.
        stats = service.stats
        assert stats.served == survivors
        assert stats.served + (len(requests) - survivors) == len(requests)
        assert stats.rejected == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transient_faults_lose_nothing(self, plan, seed):
        """kill/delay/corrupt with times=1 always recover: zero errors."""
        requests = make_requests(16, seed=seed + 100)
        fault_plan = FaultPlan.seeded(
            seed, batches=16, rate=0.5, kinds=("kill", "delay", "corrupt")
        )
        service = chaos_service(plan, fault_plan=fault_plan)
        responses = serve_all(service, requests)
        assert all(response.ok for response in responses)
        replayed = service.replay(requests)
        for live, offline in zip(responses, replayed, strict=True):
            assert live.output.tobytes() == offline.output.tobytes()
        assert service.stats.served == 16


class TestPoisonBatch:
    def test_quarantined_after_max_retries_not_forever(self, plan):
        """A deterministically crashing batch is isolated, not looped."""
        requests = make_requests(6)
        fault_plan = FaultPlan((FaultSpec(kind="kill", batch_id=0, times=99),))
        service = chaos_service(plan, fault_plan=fault_plan, max_retries=2)
        responses = serve_all(service, requests)
        poisoned = [r for r in responses if not r.ok]
        assert len(poisoned) == 1
        assert poisoned[0].request_id == "0"
        assert "quarantined" in poisoned[0].error
        assert service.stats.quarantined == 1
        assert service.stats.retried == 2  # exactly the budget, then isolation
        assert service.stats.served == 5

    def test_executor_exception_costs_one_reply_not_one_process(self, plan):
        """A raising cell is answered with a structured error; no retries."""
        requests = make_requests(5)
        fault_plan = FaultPlan((FaultSpec(kind="raise", batch_id=2, times=99),))
        service = chaos_service(plan, fault_plan=fault_plan)
        responses = serve_all(service, requests)
        failed = [r for r in responses if not r.ok]
        assert [r.request_id for r in failed] == ["2"]
        assert "executor" in failed[0].error
        assert service.stats.errors == 1
        assert service.stats.retried == 0  # an answered batch is never retried


class TestHungWorker:
    def test_hang_detected_and_recovered(self, plan):
        requests = make_requests(6)
        fault_plan = FaultPlan((FaultSpec(kind="hang", batch_id=1, times=1),))
        service = chaos_service(
            plan, fault_plan=fault_plan, hang_timeout_s=0.5
        )
        responses = serve_all(service, requests)
        assert all(response.ok for response in responses)
        assert service.stats.retried >= 1

    def test_bounded_stop_sheds_with_hang_detection_disabled(self, plan):
        """stop(timeout=...) must return within its bound and report what
        it shed, even when every worker is wedged and undetectable."""
        requests = make_requests(4)
        fault_plan = FaultPlan(
            tuple(FaultSpec(kind="hang", batch_id=i, times=9) for i in range(4))
        )
        service = chaos_service(
            plan, fault_plan=fault_plan, hang_timeout_s=None
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PoolStompedWarning)
            service.start()
            handles = [service.submit(request) for request in requests]
            time.sleep(0.3)
            began = time.monotonic()
            report = service.stop(timeout=1.0)
            elapsed = time.monotonic() - began
        assert elapsed < 15.0  # join + abort + per-stage pool escalation
        assert report["clean"] is False
        assert report["shed"] == 4
        assert report["pool"]["terminated"] + report["pool"]["killed"] >= 1
        for handle in handles:
            response = handle.result(timeout=1.0)
            assert not response.ok
            assert "shutdown" in response.error


class TestCircuitBreaker:
    def test_pool_collapse_degrades_to_inline_execution(self, plan):
        """Workers that die on every batch trip the breaker; the service
        keeps answering (inline) instead of crash-looping forever."""
        requests = make_requests(10)
        fault_plan = FaultPlan(
            tuple(FaultSpec(kind="kill", batch_id=i, times=99) for i in range(10))
        )
        service = chaos_service(
            plan,
            fault_plan=fault_plan,
            max_retries=99,
            breaker_threshold=3,
        )
        responses = serve_all(service, requests)
        # The fault plan only reaches workers: inline execution serves fine.
        assert all(response.ok for response in responses)
        assert service.stats.degraded > 0
        replayed = service.replay(requests)
        for live, offline in zip(responses, replayed, strict=True):
            assert live.output.tobytes() == offline.output.tobytes()


class TestPoolChaos:
    """Crash-recovery invariants on the pool itself (no service on top)."""

    def make_batches(self, plan, count):
        requests = make_requests(count)
        return [
            ServeBatch(
                plan=plan,
                weight_seed=2024,
                layer=LAYER,
                requests=(requests[i],),
                batch_id=i,
            )
            for i in range(count)
        ]

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_collect_all_terminates_when_every_worker_dies_once(
        self, plan, workers
    ):
        """Each of the first N batches kills its worker once; collect_all
        must still return every result (bounded resubmission, zero lost)."""
        batches = self.make_batches(plan, 2 * workers + 2)
        fault_plan = FaultPlan(
            tuple(
                FaultSpec(kind="kill", batch_id=i, times=1) for i in range(workers)
            )
        )
        pool = WorkerPool(
            workers,
            fault_plan=fault_plan,
            backoff_base_s=0.01,
            breaker_threshold=100,
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PoolStompedWarning)
                results = []
                for batch in batches:
                    pool.submit(batch)
                    results.extend(pool.collect(timeout=0.0))
                results.extend(pool.collect_all())
        finally:
            pool.close()
        assert sorted(r.batch.batch_id for r in results) == list(
            range(len(batches))
        )
        assert all(r.error is None for r in results)
        # Bounded resubmission: every kill retries its batch (plus any
        # batches stranded on the dead worker), never more than the
        # whole stream per casualty.
        assert workers <= pool.retried <= workers * len(batches)
        assert pool.quarantined == 0
        assert len(pool) == workers  # every casualty was replaced

    def test_corrupt_reply_is_exactly_one_message_per_batch(self, plan):
        """A corrupted reply must *replace* the real result, not precede it.

        Regression: the worker once sent the garbage message and then fell
        through to send the real result as well — two replies for one
        batch desynchronised the stream framing.  Exactly one result per
        batch id must come back, with the corrupted attempt retried.
        """
        batches = self.make_batches(plan, 6)
        fault_plan = FaultPlan((FaultSpec(kind="corrupt", batch_id=0, times=1),))
        pool = WorkerPool(1, fault_plan=fault_plan, backoff_base_s=0.01)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PoolStompedWarning)
                for batch in batches:
                    pool.submit(batch)
                results = pool.collect_all()
        finally:
            pool.close()
        assert sorted(r.batch.batch_id for r in results) == list(range(6))
        assert all(r.error is None for r in results)
        assert pool.retried >= 1  # the corrupted attempt was resubmitted

    def test_seeded_pool_schedule_is_reproducible(self, plan):
        """The same seed yields the same retry/quarantine accounting."""
        outcomes = []
        for _ in range(2):
            batches = self.make_batches(plan, 8)
            pool = WorkerPool(
                2,
                fault_plan=FaultPlan.seeded(
                    5, batches=8, rate=0.5, kinds=("kill", "raise"), times=1
                ),
                backoff_base_s=0.01,
            )
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", PoolStompedWarning)
                    for batch in batches:
                        pool.submit(batch)
                        pool.collect(timeout=0.0)
                    results = pool.collect_all()
                    results.extend(pool.collect(timeout=0.0))
            finally:
                pool.close()
            outcomes.append((pool.retried, pool.quarantined))
        assert outcomes[0] == outcomes[1]
