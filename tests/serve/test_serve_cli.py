"""``python -m repro.serve`` end to end over the stdin JSONL transport."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(args: list[str], stdin: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
    )


def jsonl_requests(count: int, *, k: int = 256, seed: int = 11) -> str:
    rng = np.random.default_rng(seed)
    lines = [
        json.dumps({"id": str(i), "activations": rng.normal(size=k).tolist()})
        for i in range(count)
    ]
    return "\n".join(lines) + "\n"


BASE_ARGS = ["--gemm", "256", "32", "256", "--gpu", "V100", "--sparsity", "0.9"]


class TestStdinJsonl:
    def test_replay_mode_serves_in_order(self):
        result = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], jsonl_requests(6))
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        assert [r["id"] for r in responses] == [str(i) for i in range(6)]
        assert all(r["status"] == "ok" for r in responses)
        assert all(len(r["output"]) == 256 for r in responses)

    def test_replay_is_worker_count_invariant(self):
        stdin = jsonl_requests(8)
        serial = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], stdin)
        parallel = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--replay", "--workers", "2"], stdin
        )
        assert serial.returncode == parallel.returncode == 0
        assert serial.stdout == parallel.stdout

    def test_live_mode_with_deadline(self):
        result = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--deadline-ms", "5"], jsonl_requests(4)
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        assert [r["id"] for r in responses] == [str(i) for i in range(4)]
        assert all(r["latency_ms"] >= 0.0 for r in responses)

    def test_malformed_line_reports_error(self):
        stdin = 'not json\n' + jsonl_requests(1)
        result = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], stdin)
        assert result.returncode == 0, result.stderr
        first, second = (json.loads(line) for line in result.stdout.splitlines())
        assert first["status"] == "error"
        assert second["status"] == "ok"

    def test_backpressure_rejection_is_reported(self):
        result = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--max-pending", "2"], jsonl_requests(5)
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        statuses = [r["status"] for r in responses]
        assert statuses.count("rejected") >= 1
        # Accepted requests are always served, never shed.
        assert set(statuses) <= {"ok", "rejected"}


class TestParser:
    def test_workload_is_required(self):
        from repro.serve.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--stdin-jsonl"])

    def test_transport_is_required(self):
        from repro.serve.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--gemm", "64", "16", "64"])
