"""``python -m repro.serve`` end to end over the stdin JSONL transport."""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys

import numpy as np
import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(args: list[str], stdin: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
    )


def jsonl_requests(count: int, *, k: int = 256, seed: int = 11) -> str:
    rng = np.random.default_rng(seed)
    lines = [
        json.dumps({"id": str(i), "activations": rng.normal(size=k).tolist()})
        for i in range(count)
    ]
    return "\n".join(lines) + "\n"


BASE_ARGS = ["--gemm", "256", "32", "256", "--gpu", "V100", "--sparsity", "0.9"]


class TestStdinJsonl:
    def test_replay_mode_serves_in_order(self):
        result = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], jsonl_requests(6))
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        assert [r["id"] for r in responses] == [str(i) for i in range(6)]
        assert all(r["status"] == "ok" for r in responses)
        assert all(len(r["output"]) == 256 for r in responses)

    def test_replay_is_worker_count_invariant(self):
        stdin = jsonl_requests(8)
        serial = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], stdin)
        parallel = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--replay", "--workers", "2"], stdin
        )
        assert serial.returncode == parallel.returncode == 0
        assert serial.stdout == parallel.stdout

    def test_live_mode_with_deadline(self):
        result = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--deadline-ms", "5"], jsonl_requests(4)
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        assert [r["id"] for r in responses] == [str(i) for i in range(4)]
        assert all(r["latency_ms"] >= 0.0 for r in responses)

    def test_malformed_line_reports_error(self):
        stdin = 'not json\n' + jsonl_requests(1)
        result = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], stdin)
        assert result.returncode == 0, result.stderr
        first, second = (json.loads(line) for line in result.stdout.splitlines())
        assert first["status"] == "error"
        assert second["status"] == "ok"

    def test_backpressure_rejection_is_reported(self):
        result = run_cli(
            [*BASE_ARGS, "--stdin-jsonl", "--max-pending", "2"], jsonl_requests(5)
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        statuses = [r["status"] for r in responses]
        assert statuses.count("rejected") >= 1
        # Accepted requests are always served, never shed.
        assert set(statuses) <= {"ok", "rejected"}


class TestParser:
    def test_workload_is_required(self):
        from repro.serve.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--stdin-jsonl"])

    def test_transport_is_required(self):
        from repro.serve.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--gemm", "64", "16", "64"])


class TestMalformedInput:
    """Satellite: malformed input never tears down the loop or connection."""

    GARBAGE = [
        "\x00\xffgarbage bytes\x07",
        '{"id": "t", "activations": [[1.0, 2.0',  # truncated JSON
        '{"id": "u", "layer": "absent", "activations": [1.0]}',
        '{"id": "v", "activations": [null]}',
        '{"id": "w", "activations": "nope"}',
        '{"id": "x"}',
        '{"id": "y", "activations": [1.0], "deadline_ms": "soon"}',
        "[1, 2, 3]",
    ]

    def test_every_garbage_line_gets_a_structured_error(self):
        stdin = "\n".join(self.GARBAGE) + "\n" + jsonl_requests(2)
        result = run_cli([*BASE_ARGS, "--stdin-jsonl"], stdin)
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in result.stdout.splitlines()]
        assert len(responses) == len(self.GARBAGE) + 2
        for reply in responses[: len(self.GARBAGE)]:
            assert reply["status"] == "error"
            assert reply["error"]
        # The stream survived: trailing well-formed requests are served.
        assert [r["status"] for r in responses[-2:]] == ["ok", "ok"]
        assert [r["id"] for r in responses[-2:]] == ["0", "1"]

    def test_unknown_layer_echoes_request_id(self):
        stdin = '{"id": "q7", "layer": "absent", "activations": [1.0]}\n'
        result = run_cli([*BASE_ARGS, "--stdin-jsonl", "--replay"], stdin)
        assert result.returncode == 0, result.stderr
        reply = json.loads(result.stdout.splitlines()[0])
        assert reply == {
            "id": "q7",
            "status": "error",
            "error": reply["error"],
        }
        assert "absent" in reply["error"]


class TestTcpTransport:
    """The --port transport: per-line errors, /health, connection survival."""

    @pytest.fixture(scope="class")
    def server(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", *BASE_ARGS, "--port", "0"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stderr.readline()  # "serving on host:port"
            assert "serving on" in line, line
            port = int(line.rsplit(":", 1)[1])
            yield port
        finally:
            process.terminate()
            process.wait(timeout=10)

    def exchange(self, port: int, lines: list[str]) -> list[dict]:
        with socket.create_connection(("127.0.0.1", port), timeout=60) as conn:
            conn.sendall(("\n".join(lines) + "\n").encode())
            conn.shutdown(socket.SHUT_WR)
            stream = conn.makefile("r", encoding="utf-8")
            return [json.loads(reply) for reply in stream]

    def test_garbage_then_valid_on_one_connection(self, server):
        rng = np.random.default_rng(3)
        lines = [
            "utter garbage",
            '{"id": "t", "activations": [[1.0,',
            json.dumps({"id": "ok1", "activations": rng.normal(size=256).tolist()}),
        ]
        replies = self.exchange(server, lines)
        assert [r["status"] for r in replies] == ["error", "error", "ok"]
        assert replies[2]["id"] == "ok1"

    def test_server_survives_poisoned_connection(self, server):
        self.exchange(server, ["\x00\x01\x02 not even close"])
        rng = np.random.default_rng(4)
        replies = self.exchange(
            server,
            [json.dumps({"id": "after", "activations": rng.normal(size=256).tolist()})],
        )
        assert replies[0]["status"] == "ok"
        assert replies[0]["id"] == "after"

    def test_health_probe(self, server):
        for probe in ["/health", '{"op": "health"}']:
            reply = self.exchange(server, [probe])[0]
            assert reply["status"] == "ok"
            assert reply["op"] == "health"
            assert reply["layers"] == ["gemm-256x32x256"]
            stats = reply["stats"]
            for key in ("served", "rejected", "retried", "quarantined",
                        "expired", "degraded"):
                assert key in stats
