"""Micro-batcher semantics under a fake clock, and window planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    DEFAULT_WIDTHS,
    BatchWindow,
    MicroBatcher,
    PredictRequest,
    QueueFullError,
    replay_batches,
    serving_windows,
)
from repro.tune import Autotuner

from conftest import LAYER, make_requests


def window(*, width=4, deadline=1.0, layer=LAYER):
    return {
        layer: BatchWindow(
            layer=layer,
            width=width,
            deadline_s=deadline,
            predicted_batch_time_s=1e-6,
            predicted_unit_time_s=1e-6,
        )
    }


class TestServingWindows:
    def test_windows_cover_linear_layers(self, plan):
        windows = serving_windows(plan)
        assert set(windows) == {LAYER}
        w = windows[LAYER]
        assert w.width in DEFAULT_WIDTHS
        assert w.deadline_s == w.predicted_batch_time_s > 0.0

    def test_width_maximises_modelled_throughput(self, plan):
        """The chosen width is the throughput argmax over the candidates."""
        windows = serving_windows(plan)
        w = windows[LAYER]
        best_throughput = w.width / w.predicted_batch_time_s
        # No candidate width beats it (re-derive each candidate's estimate).
        for other in DEFAULT_WIDTHS:
            forced = serving_windows(plan, width=other)[LAYER]
            assert other / forced.predicted_batch_time_s <= best_throughput + 1e-12

    def test_overrides(self, plan):
        forced = serving_windows(plan, width=8, deadline_s=0.25)[LAYER]
        assert forced.width == 8
        assert forced.deadline_s == 0.25

    def test_conv_layers_are_skipped(self):
        plan = Autotuner().plan("resnet50", "V100", 0.9)
        assert serving_windows(plan) == {}

    def test_multi_layer_plan(self, transformer_plan):
        windows = serving_windows(transformer_plan)
        assert set(windows) == {"attn_qkv", "attn_out", "ffn1", "ffn2"}


class TestMicroBatcher:
    def test_full_width_releases_immediately(self):
        batcher = MicroBatcher(window(width=4, deadline=100.0))
        for request in make_requests(4):
            batcher.push(request, now=0.0)
        batches = batcher.poll(now=0.0)
        assert [len(batch) for batch in batches] == [4]
        assert batcher.pending == 0

    def test_partial_batch_waits_for_deadline(self):
        batcher = MicroBatcher(window(width=4, deadline=1.0))
        requests = make_requests(2)
        batcher.push(requests[0], now=0.0)
        batcher.push(requests[1], now=0.5)
        assert batcher.poll(now=0.99) == []
        # The *oldest* request's deadline governs: released at t=1.0 even
        # though the second request has only waited 0.5s.
        batches = batcher.poll(now=1.0)
        assert [len(batch) for batch in batches] == [2]

    def test_request_never_waits_past_deadline(self):
        """Polling at any time >= arrival + deadline always releases."""
        batcher = MicroBatcher(window(width=64, deadline=0.125))
        request = make_requests(1)[0]
        batcher.push(request, now=10.0)
        assert batcher.poll(now=10.124) == []
        assert batcher.poll(now=10.125) == [[request]]

    def test_next_deadline_tracks_oldest(self):
        batcher = MicroBatcher(window(width=8, deadline=2.0))
        assert batcher.next_deadline() is None
        requests = make_requests(2)
        batcher.push(requests[0], now=3.0)
        batcher.push(requests[1], now=4.0)
        assert batcher.next_deadline() == pytest.approx(5.0)

    def test_width_counts_columns_not_requests(self):
        batcher = MicroBatcher(window(width=4, deadline=10.0))
        wide = PredictRequest.from_array(LAYER, np.ones((256, 3)))
        narrow = make_requests(1)[0]
        batcher.push(wide, now=0.0)
        assert batcher.poll(now=0.0) == []
        batcher.push(narrow, now=0.0)
        batches = batcher.poll(now=0.0)
        assert [sum(r.width for r in batch) for batch in batches] == [4]

    def test_unknown_layer_rejected(self):
        batcher = MicroBatcher(window())
        with pytest.raises(KeyError):
            batcher.push(
                PredictRequest.from_array("absent", np.ones(256)), now=0.0
            )

    def test_backpressure_rejects_beyond_bound(self):
        batcher = MicroBatcher(window(width=4, deadline=10.0), max_pending=3)
        requests = make_requests(4)
        for request in requests[:3]:
            batcher.push(request, now=0.0)
        with pytest.raises(QueueFullError):
            batcher.push(requests[3], now=0.0)
        # The reject left the accepted queue intact.
        assert batcher.pending == 3

    def test_drain_flushes_everything(self):
        batcher = MicroBatcher(window(width=4, deadline=100.0))
        for request in make_requests(6):
            batcher.push(request, now=0.0)
        batches = batcher.drain()
        assert [len(batch) for batch in batches] == [4, 2]
        assert batcher.pending == 0


class TestReplayBatches:
    def test_deterministic_chunking(self):
        requests = make_requests(10)
        batches = replay_batches(requests, window(width=4))
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert [r.request_id for batch in batches for r in batch] == [
            str(i) for i in range(10)
        ]

    def test_same_stream_same_batches(self):
        requests = make_requests(10)
        assert replay_batches(requests, window(width=4)) == replay_batches(
            requests, window(width=4)
        )

    def test_unknown_layer_raises(self):
        with pytest.raises(KeyError):
            replay_batches(
                [PredictRequest.from_array("absent", np.ones(4))], window()
            )


def deadline_request(deadline_s, *, request_id="d0", k=4):
    return PredictRequest.from_array(
        LAYER, np.ones(k), request_id=request_id, deadline_s=deadline_s
    )


class TestCancellationAndDeadlines:
    """PR 9: identity-based withdrawal and per-request shed deadlines."""

    def test_remove_withdraws_only_the_exact_request(self):
        batcher = MicroBatcher(window(width=4, deadline=100.0))
        first, second = make_requests(2)
        batcher.push(first, now=0.0)
        batcher.push(second, now=0.0)
        assert batcher.remove(first) is True
        assert batcher.remove(first) is False  # already gone
        assert batcher.pending == second.width
        released = batcher.poll(now=200.0)
        assert released == [[second]]

    def test_remove_unknown_layer_or_unqueued_is_false(self):
        batcher = MicroBatcher(window())
        assert batcher.remove(make_requests(1)[0]) is False
        foreign = PredictRequest.from_array("absent", np.ones(4))
        assert batcher.remove(foreign) is False

    def test_shed_expired_removes_only_expired_requests(self):
        batcher = MicroBatcher(window(width=8, deadline=100.0))
        doomed = deadline_request(0.5, request_id="doomed")
        patient = deadline_request(50.0, request_id="patient")
        eternal = make_requests(1)[0]
        for request in (doomed, patient, eternal):
            batcher.push(request, now=0.0)
        assert batcher.shed_expired(now=0.4) == []
        shed = batcher.shed_expired(now=1.0)
        assert [r.request_id for r in shed] == ["doomed"]
        assert batcher.pending == patient.width + eternal.width
        # Shedding is idempotent: the doomed request is gone for good.
        assert batcher.shed_expired(now=2.0) == []

    def test_next_deadline_covers_request_deadlines(self):
        batcher = MicroBatcher(window(width=8, deadline=10.0))
        batcher.push(make_requests(1)[0], now=0.0)
        assert batcher.next_deadline() == pytest.approx(10.0)
        # A tighter per-request deadline pulls the wake-up earlier.
        batcher.push(deadline_request(2.5), now=1.0)
        assert batcher.next_deadline() == pytest.approx(3.5)

    def test_request_deadline_validation(self):
        with pytest.raises(ValueError):
            deadline_request(-0.1)
