"""Worker pool: correct results, crash recovery, clean shutdown."""

from __future__ import annotations

import time
import warnings

import pytest

from repro.serve import (
    FaultPlan,
    FaultSpec,
    PoolStompedWarning,
    ServeBatch,
    WorkerPool,
    execute_serve_batches,
)
from repro.serve.pool import BatchResult

from conftest import LAYER, make_requests


def make_batches(plan, count: int) -> list[ServeBatch]:
    requests = make_requests(count * 2)
    return [
        ServeBatch(
            plan=plan,
            weight_seed=2024,
            layer=LAYER,
            requests=tuple(requests[2 * i : 2 * i + 2]),
            batch_id=i,
        )
        for i in range(count)
    ]


class TestWorkerPool:
    def test_results_match_serial_execution(self, plan):
        batches = make_batches(plan, 4)
        expected = execute_serve_batches(batches)
        pool = WorkerPool(2)
        try:
            for batch in batches:
                pool.submit(batch)
            results = {r.batch.batch_id: r for r in pool.collect_all()}
        finally:
            pool.close()
        assert set(results) == {0, 1, 2, 3}
        for record in expected:
            result = results[record.config.batch_id]
            assert isinstance(result, BatchResult)
            assert result.elapsed_s > 0.0
            for left, right in zip(record.outputs, result.outputs, strict=True):
                assert left.tobytes() == right.tobytes()

    def test_worker_crash_recovers_outstanding_batches(self, plan):
        """Killing a worker mid-stream loses nothing: the pool respawns it
        and resubmits the batches it owed."""
        batches = make_batches(plan, 6)
        pool = WorkerPool(2)
        try:
            for batch in batches:
                pool.submit(batch)
            victim = pool._workers[0].process
            victim.kill()
            victim.join(timeout=10.0)
            results = pool.collect_all()
        finally:
            pool.close()
        assert sorted(r.batch.batch_id for r in results) == list(range(6))
        # The crashed slot was respawned, not removed.
        assert len(pool) == 2

    def test_duplicate_batch_id_rejected(self, plan):
        batch = make_batches(plan, 1)[0]
        pool = WorkerPool(1)
        try:
            pool.submit(batch)
            with pytest.raises(ValueError):
                pool.submit(batch)
            pool.collect_all()
        finally:
            pool.close()

    def test_close_is_idempotent_and_blocks_submit(self, plan):
        pool = WorkerPool(1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(make_batches(plan, 1)[0])

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestPoolRobustness:
    """PR 9 hardening: structured errors, stale replies, bounded close."""

    def test_executor_error_returns_batch_error_not_crash(self, plan):
        """A batch whose cell raises answers with error="executor": the
        worker survives and keeps serving subsequent batches."""
        batches = make_batches(plan, 3)
        fault_plan = FaultPlan((FaultSpec(kind="raise", batch_id=1, times=9),))
        pool = WorkerPool(1, fault_plan=fault_plan)
        try:
            for batch in batches:
                pool.submit(batch)
            results = {r.batch.batch_id: r for r in pool.collect_all()}
        finally:
            pool.close()
        assert set(results) == {0, 1, 2}
        assert results[0].error is None and results[2].error is None
        failed = results[1]
        assert failed.outputs is None
        assert failed.error is not None and failed.error.kind == "executor"
        assert "injected executor fault" in failed.error.message
        assert pool.retried == 0  # an answered error is final, never retried

    def test_unknown_batch_id_reply_dropped_with_warning(self, plan):
        """A stale/foreign batch_id in a worker reply must not KeyError the
        dispatcher: the reply is dropped under PoolStompedWarning."""
        batch = make_batches(plan, 1)[0]
        pool = WorkerPool(1)
        try:
            pool.submit(batch)
            # Simulate ledger stomping: forget the in-flight entry so the
            # worker's reply arrives with an unknown batch_id.
            stolen = dict(pool._workers[0].outstanding)
            pool._workers[0].outstanding.clear()
            pool._workers[0].sent_at.clear()
            with pytest.warns(PoolStompedWarning, match="unknown batch_id"):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if pool.collect(timeout=0.2):
                        raise AssertionError("stale reply must be dropped")
                    if not pool._workers[0].conn.poll(0):
                        break
            # The pool still works: restore and serve the batch for real.
            pool._workers[0].outstanding.update(stolen)
            pool.submit(make_batches(plan, 2)[1])
        finally:
            pool.close()

    def test_quarantine_after_retry_budget(self, plan):
        batches = make_batches(plan, 2)
        fault_plan = FaultPlan((FaultSpec(kind="kill", batch_id=0, times=99),))
        pool = WorkerPool(
            1, fault_plan=fault_plan, max_retries=1, backoff_base_s=0.01
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PoolStompedWarning)
                pool.submit(batches[0])
                results = {r.batch.batch_id: r for r in pool.collect_all()}
                # The pool keeps serving after isolating the poison batch.
                pool.submit(batches[1])
                results.update(
                    (r.batch.batch_id, r) for r in pool.collect_all()
                )
        finally:
            pool.close()
        assert results[0].error is not None
        assert results[0].error.kind == "quarantined"
        assert "max_retries=1" in results[0].error.message
        assert results[1].error is None
        assert pool.quarantined == 1

    def test_close_reports_escalation_stages(self, plan):
        pool = WorkerPool(2)
        report = pool.close(timeout=5.0)
        assert report == {"joined": 2, "terminated": 0, "killed": 0}
        # Idempotent: a second close has nothing left to do.
        assert pool.close() == {"joined": 0, "terminated": 0, "killed": 0}

    def test_close_terminates_wedged_workers(self, plan):
        """A worker stuck in a hang fault cannot join: close() escalates to
        terminate within its bound instead of waiting forever."""
        batch = make_batches(plan, 1)[0]
        fault_plan = FaultPlan((FaultSpec(kind="hang", batch_id=0, times=1),))
        pool = WorkerPool(1, fault_plan=fault_plan)
        try:
            pool.submit(batch)
            time.sleep(0.3)  # let the worker enter the hang
        finally:
            began = time.monotonic()
            report = pool.close(timeout=0.5)
            elapsed = time.monotonic() - began
        assert elapsed < 10.0
        assert report["terminated"] + report["killed"] == 1
