"""Worker pool: correct results, crash recovery, clean shutdown."""

from __future__ import annotations

import pytest

from repro.serve import ServeBatch, WorkerPool, execute_serve_batches
from repro.serve.pool import BatchResult

from conftest import LAYER, make_requests


def make_batches(plan, count: int) -> list[ServeBatch]:
    requests = make_requests(count * 2)
    return [
        ServeBatch(
            plan=plan,
            weight_seed=2024,
            layer=LAYER,
            requests=tuple(requests[2 * i : 2 * i + 2]),
            batch_id=i,
        )
        for i in range(count)
    ]


class TestWorkerPool:
    def test_results_match_serial_execution(self, plan):
        batches = make_batches(plan, 4)
        expected = execute_serve_batches(batches)
        pool = WorkerPool(2)
        try:
            for batch in batches:
                pool.submit(batch)
            results = {r.batch.batch_id: r for r in pool.collect_all()}
        finally:
            pool.close()
        assert set(results) == {0, 1, 2, 3}
        for record in expected:
            result = results[record.config.batch_id]
            assert isinstance(result, BatchResult)
            assert result.elapsed_s > 0.0
            for left, right in zip(record.outputs, result.outputs, strict=True):
                assert left.tobytes() == right.tobytes()

    def test_worker_crash_recovers_outstanding_batches(self, plan):
        """Killing a worker mid-stream loses nothing: the pool respawns it
        and resubmits the batches it owed."""
        batches = make_batches(plan, 6)
        pool = WorkerPool(2)
        try:
            for batch in batches:
                pool.submit(batch)
            victim = pool._workers[0].process
            victim.kill()
            victim.join(timeout=10.0)
            results = pool.collect_all()
        finally:
            pool.close()
        assert sorted(r.batch.batch_id for r in results) == list(range(6))
        # The crashed slot was respawned, not removed.
        assert len(pool) == 2

    def test_duplicate_batch_id_rejected(self, plan):
        batch = make_batches(plan, 1)[0]
        pool = WorkerPool(1)
        try:
            pool.submit(batch)
            with pytest.raises(ValueError):
                pool.submit(batch)
            pool.collect_all()
        finally:
            pool.close()

    def test_close_is_idempotent_and_blocks_submit(self, plan):
        pool = WorkerPool(1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(make_batches(plan, 1)[0])

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
