"""Service-level guarantees: byte-identity, correctness, backpressure."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import (
    InferenceService,
    PredictRequest,
    ServiceOverloadedError,
    derive_weights,
)
from repro.tune.measure import RecordedRefiner
from repro.tune.planned import PlannedModel

from conftest import LAYER, make_requests


class TestReplay:
    def test_serial_and_parallel_are_byte_identical(self, plan, tmp_path):
        """The acceptance criterion: the same request stream produces
        byte-identical outputs at any worker count."""
        requests = make_requests(40)
        service = InferenceService(plan)
        serial = service.replay(requests, jobs=1)
        parallel = service.replay(requests, jobs=3)
        assert len(serial) == len(parallel) == 40
        for left, right in zip(serial, parallel, strict=True):
            assert left.output.tobytes() == right.output.tobytes()

    def test_responses_follow_request_order(self, plan):
        requests = make_requests(10)
        responses = InferenceService(plan).replay(requests)
        assert [r.request_id for r in responses] == [str(i) for i in range(10)]
        assert all(r.layer == LAYER for r in responses)

    def test_single_width_matches_direct_kernel_run(self, plan):
        """At width 1 every batch is one request, so replay outputs equal a
        direct single-column run through the planned kernel bit for bit."""
        requests = make_requests(5)
        service = InferenceService(plan, width=1)
        responses = service.replay(requests)
        model = PlannedModel(plan)
        weight = derive_weights(plan, service.weight_seed)[LAYER]
        for request, response in zip(requests, responses, strict=True):
            expected = model.matmul(LAYER, weight, request.to_array())
            assert response.output.tobytes() == expected.tobytes()

    def test_warm_cache_reruns_identically(self, plan, tmp_path):
        requests = make_requests(12)
        service = InferenceService(plan)
        cold = service.replay(requests, cache_dir=tmp_path)
        warm = service.replay(requests, cache_dir=tmp_path)
        for left, right in zip(cold, warm, strict=True):
            assert left.output.tobytes() == right.output.tobytes()

    def test_multi_layer_stream(self, transformer_plan):
        rng = np.random.default_rng(3)
        requests = [
            PredictRequest.from_array(
                ("ffn1", "attn_out")[i % 2], rng.normal(size=1024), request_id=str(i)
            )
            for i in range(12)
        ]
        responses = InferenceService(transformer_plan).replay(requests, jobs=2)
        assert [r.request_id for r in responses] == [str(i) for i in range(12)]
        assert {r.layer for r in responses} == {"ffn1", "attn_out"}


class TestBackpressure:
    def test_submit_rejects_beyond_queue_bound(self, plan):
        service = InferenceService(plan, max_pending=4)
        requests = make_requests(5)
        for request in requests[:4]:
            service.submit(request)
        with pytest.raises(ServiceOverloadedError):
            service.submit(requests[4])
        assert service.stats.rejected == 1

    def test_unknown_layer_raises(self, plan):
        service = InferenceService(plan)
        with pytest.raises(KeyError):
            service.submit(make_requests(1, layer="absent")[0])


class TestLiveService:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_all_requests_served(self, plan, workers):
        requests = make_requests(24)
        with InferenceService(plan, workers=workers, max_pending=64) as service:
            handles = [service.submit(request) for request in requests]
            responses = [handle.result(timeout=60.0) for handle in handles]
        assert [r.request_id for r in responses] == [str(i) for i in range(24)]
        assert service.stats.served == 24
        assert service.stats.rejected == 0
        assert all(r.latency_s is not None and r.latency_s >= 0.0 for r in responses)
        assert all(r.output.shape == (256, 1) for r in responses)

    def test_deadlines_are_calibrated_to_host_time(self, plan):
        service = InferenceService(plan, max_pending=64)
        modelled = {layer: w.deadline_s for layer, w in service.windows.items()}
        service.start()
        try:
            calibrated = {layer: w.deadline_s for layer, w in service.windows.items()}
            # The functional engines run on the host, orders of magnitude
            # slower than the modelled GPU times the windows start from.
            for layer in modelled:
                assert calibrated[layer] > modelled[layer]
        finally:
            service.stop()

    def test_explicit_deadline_survives_calibration(self, plan):
        with InferenceService(plan, deadline_s=0.123, max_pending=8) as service:
            assert service.windows[LAYER].deadline_s == 0.123

    def test_stop_drains_accepted_requests(self, plan):
        service = InferenceService(plan, max_pending=64)
        handles = [service.submit(request) for request in make_requests(6)]
        service.start()
        service.stop()
        responses = [handle.result(timeout=1.0) for handle in handles]
        assert len(responses) == 6

    def test_recorded_times_feed_the_refiner(self, plan):
        with InferenceService(plan, max_pending=64) as service:
            for request in make_requests(8):
                service.submit(request)
        recorded = service.recorded_times()
        assert set(recorded) == {LAYER}
        assert recorded[LAYER] > 0.0
        refiner = service.recorded_refiner()
        assert isinstance(refiner, RecordedRefiner)
        label = plan.assignment_for(LAYER).label
        assert refiner.recorded_time(LAYER, label) is not None


class TestDeadlinesAndCancellation:
    """PR 9: request deadlines, timed-out handles, and the leak fix."""

    def test_result_timeout_cancels_and_reclaims_slot(self, plan):
        """The leak regression: a timed-out result() must cancel the queued
        request — no stale ``_waiting`` entry, queue slot reclaimed, and
        ``stats.expired`` incremented exactly once."""
        service = InferenceService(plan, max_pending=4)
        handle = service.submit(make_requests(1)[0])
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        assert handle.cancelled
        assert service.stats.expired == 1
        assert not service._waiting
        assert service._batcher.pending == 0
        # Second timeout on the same handle is a no-op for the counter.
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        assert service.stats.expired == 1
        # The reclaimed slots accept the full bound again.
        for request in make_requests(4):
            service.submit(request)
        service.start()
        service.stop()
        assert service.stats.served == 4

    def test_request_deadline_shed_before_dispatch(self, plan):
        """A queued request whose own deadline passes is answered with an
        expired error instead of being served."""
        requests = make_requests(2)
        expiring = PredictRequest.from_array(
            LAYER,
            requests[0].to_array(),
            request_id="doomed",
            deadline_s=1e-4,
        )
        service = InferenceService(plan, width=1, max_pending=8)
        doomed = service.submit(expiring)
        time.sleep(0.05)  # let the deadline lapse before the loop runs
        service.start()
        live = service.submit(requests[1])
        response = doomed.result(timeout=30.0)
        assert not response.ok
        assert "expired" in response.error
        assert response.output is None
        survivor = live.result(timeout=30.0)
        service.stop()
        assert survivor.ok
        assert service.stats.expired == 1
        assert service.stats.served == 1

    def test_deadline_validation(self, plan):
        with pytest.raises(ValueError):
            PredictRequest.from_array(LAYER, np.zeros(256), deadline_s=-1.0)

    def test_deadline_not_in_wire_dict(self, plan):
        """deadline_s is scheduling metadata: it must stay out of to_dict()
        so batch cache hashes are unchanged by deadline annotations."""
        request = PredictRequest.from_array(LAYER, np.zeros(256), deadline_s=5.0)
        bare = PredictRequest.from_array(LAYER, np.zeros(256))
        assert request.to_dict() == bare.to_dict()


class TestStopReport:
    def test_clean_stop_reports_nothing_shed(self, plan):
        service = InferenceService(plan, max_pending=64)
        handles = [service.submit(request) for request in make_requests(4)]
        service.start()
        report = service.stop()
        assert report["shed"] == 0
        assert report["clean"] is True
        assert report["pool"] is None or report["pool"]["killed"] == 0
        assert all(handle.result(timeout=1.0).ok for handle in handles)

    def test_stop_is_idempotent(self, plan):
        service = InferenceService(plan)
        service.start()
        first = service.stop()
        second = service.stop()
        assert first["clean"] is True
        assert second["shed"] == 0

    def test_stats_dict_has_robustness_counters(self, plan):
        snapshot = InferenceService(plan).stats.to_dict()
        for key in ("retried", "quarantined", "errors", "expired", "degraded"):
            assert key in snapshot
