"""Service-level guarantees: byte-identity, correctness, backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    InferenceService,
    PredictRequest,
    ServiceOverloadedError,
    derive_weights,
)
from repro.tune.measure import RecordedRefiner
from repro.tune.planned import PlannedModel

from conftest import LAYER, make_requests


class TestReplay:
    def test_serial_and_parallel_are_byte_identical(self, plan, tmp_path):
        """The acceptance criterion: the same request stream produces
        byte-identical outputs at any worker count."""
        requests = make_requests(40)
        service = InferenceService(plan)
        serial = service.replay(requests, jobs=1)
        parallel = service.replay(requests, jobs=3)
        assert len(serial) == len(parallel) == 40
        for left, right in zip(serial, parallel, strict=True):
            assert left.output.tobytes() == right.output.tobytes()

    def test_responses_follow_request_order(self, plan):
        requests = make_requests(10)
        responses = InferenceService(plan).replay(requests)
        assert [r.request_id for r in responses] == [str(i) for i in range(10)]
        assert all(r.layer == LAYER for r in responses)

    def test_single_width_matches_direct_kernel_run(self, plan):
        """At width 1 every batch is one request, so replay outputs equal a
        direct single-column run through the planned kernel bit for bit."""
        requests = make_requests(5)
        service = InferenceService(plan, width=1)
        responses = service.replay(requests)
        model = PlannedModel(plan)
        weight = derive_weights(plan, service.weight_seed)[LAYER]
        for request, response in zip(requests, responses, strict=True):
            expected = model.matmul(LAYER, weight, request.to_array())
            assert response.output.tobytes() == expected.tobytes()

    def test_warm_cache_reruns_identically(self, plan, tmp_path):
        requests = make_requests(12)
        service = InferenceService(plan)
        cold = service.replay(requests, cache_dir=tmp_path)
        warm = service.replay(requests, cache_dir=tmp_path)
        for left, right in zip(cold, warm, strict=True):
            assert left.output.tobytes() == right.output.tobytes()

    def test_multi_layer_stream(self, transformer_plan):
        rng = np.random.default_rng(3)
        requests = [
            PredictRequest.from_array(
                ("ffn1", "attn_out")[i % 2], rng.normal(size=1024), request_id=str(i)
            )
            for i in range(12)
        ]
        responses = InferenceService(transformer_plan).replay(requests, jobs=2)
        assert [r.request_id for r in responses] == [str(i) for i in range(12)]
        assert {r.layer for r in responses} == {"ffn1", "attn_out"}


class TestBackpressure:
    def test_submit_rejects_beyond_queue_bound(self, plan):
        service = InferenceService(plan, max_pending=4)
        requests = make_requests(5)
        for request in requests[:4]:
            service.submit(request)
        with pytest.raises(ServiceOverloadedError):
            service.submit(requests[4])
        assert service.stats.rejected == 1

    def test_unknown_layer_raises(self, plan):
        service = InferenceService(plan)
        with pytest.raises(KeyError):
            service.submit(make_requests(1, layer="absent")[0])


class TestLiveService:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_all_requests_served(self, plan, workers):
        requests = make_requests(24)
        with InferenceService(plan, workers=workers, max_pending=64) as service:
            handles = [service.submit(request) for request in requests]
            responses = [handle.result(timeout=60.0) for handle in handles]
        assert [r.request_id for r in responses] == [str(i) for i in range(24)]
        assert service.stats.served == 24
        assert service.stats.rejected == 0
        assert all(r.latency_s is not None and r.latency_s >= 0.0 for r in responses)
        assert all(r.output.shape == (256, 1) for r in responses)

    def test_deadlines_are_calibrated_to_host_time(self, plan):
        service = InferenceService(plan, max_pending=64)
        modelled = {layer: w.deadline_s for layer, w in service.windows.items()}
        service.start()
        try:
            calibrated = {layer: w.deadline_s for layer, w in service.windows.items()}
            # The functional engines run on the host, orders of magnitude
            # slower than the modelled GPU times the windows start from.
            for layer in modelled:
                assert calibrated[layer] > modelled[layer]
        finally:
            service.stop()

    def test_explicit_deadline_survives_calibration(self, plan):
        with InferenceService(plan, deadline_s=0.123, max_pending=8) as service:
            assert service.windows[LAYER].deadline_s == 0.123

    def test_stop_drains_accepted_requests(self, plan):
        service = InferenceService(plan, max_pending=64)
        handles = [service.submit(request) for request in make_requests(6)]
        service.start()
        service.stop()
        responses = [handle.result(timeout=1.0) for handle in handles]
        assert len(responses) == 6

    def test_recorded_times_feed_the_refiner(self, plan):
        with InferenceService(plan, max_pending=64) as service:
            for request in make_requests(8):
                service.submit(request)
        recorded = service.recorded_times()
        assert set(recorded) == {LAYER}
        assert recorded[LAYER] > 0.0
        refiner = service.recorded_refiner()
        assert isinstance(refiner, RecordedRefiner)
        label = plan.assignment_for(LAYER).label
        assert refiner.recorded_time(LAYER, label) is not None
