"""Shared fixtures for the serving tests: one small tuned plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import PredictRequest
from repro.tune import Autotuner

#: The tiny GEMM problem every serving test plans against.
GEMM = (256, 32, 256)
LAYER = "gemm-256x32x256"


@pytest.fixture(scope="session")
def plan():
    """One analytically tuned plan of the tiny GEMM workload."""
    return Autotuner().plan_gemm(GEMM, "V100", 0.9)


@pytest.fixture(scope="session")
def transformer_plan():
    """A multi-layer plan (the transformer workload at small tokens)."""
    from repro.models.shapes import transformer_layers

    return Autotuner().plan(
        "transformer", "V100", 0.9, layers=transformer_layers(tokens=32)
    )


def make_requests(count: int, *, layer: str = LAYER, k: int = 256, seed: int = 7):
    """``count`` deterministic single-column requests for one layer."""
    rng = np.random.default_rng(seed)
    return [
        PredictRequest.from_array(layer, rng.normal(size=k), request_id=str(i))
        for i in range(count)
    ]
