"""Property-based equivalence tests for the vectorized SpMM engine.

Every vectorized kernel in :mod:`repro.sparse.spmm` must match both

* the loop oracle kept in :mod:`repro.sparse.spmm_reference` (the seed
  implementation, preserved verbatim), and
* the dense reference ``pruned @ rhs``

to ``1e-10`` over random shapes, densities and stitch-tile widths —
including tile widths that do not divide the kept-column counts (padded
tail panels) and tiles wider than any group.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import spmm_reference as ref
from repro.sparse.convert import (
    dense_to_balanced,
    dense_to_block,
    dense_to_csr,
    dense_to_shflbw,
    dense_to_vector_wise,
)
from repro.sparse.spmm import (
    spmm_balanced,
    spmm_block,
    spmm_csr,
    spmm_shflbw,
    spmm_vector_wise,
)

ATOL = 1e-10

# Small-but-irregular problem sizes: enough groups/panels to hit every
# padding edge case while keeping each example fast.
dims = st.tuples(
    st.integers(min_value=1, max_value=6),   # vector size V
    st.integers(min_value=1, max_value=5),   # number of row groups
    st.integers(min_value=1, max_value=40),  # K
    st.integers(min_value=1, max_value=7),   # N
)
densities = st.floats(min_value=0.0, max_value=1.0)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _problem(v, groups, k, n, density, seed):
    rng = np.random.default_rng(seed)
    m = v * groups
    dense = rng.normal(size=(m, k))
    rhs = rng.normal(size=(k, n))
    return rng, m, dense, rhs


@settings(max_examples=60, deadline=None)
@given(dims=dims, density=densities, seed=seeds)
def test_csr_matches_oracle_and_dense(dims, density, seed):
    v, groups, k, n = dims
    rng, m, dense, rhs = _problem(v, groups, k, n, density, seed)
    pruned = dense * (rng.random((m, k)) < density)
    matrix = dense_to_csr(pruned)
    out = spmm_csr(matrix, rhs)
    np.testing.assert_allclose(out, ref.spmm_csr_loop(matrix, rhs), atol=ATOL)
    np.testing.assert_allclose(out, pruned @ rhs, atol=ATOL)


@settings(max_examples=60, deadline=None)
@given(dims=dims, density=densities, seed=seeds)
def test_vector_wise_matches_oracle_and_dense(dims, density, seed):
    v, groups, k, n = dims
    rng, m, dense, rhs = _problem(v, groups, k, n, density, seed)
    # Vector-wise mask: whole (V x 1) column vectors of each group survive.
    mask = np.repeat(rng.random((groups, k)) < density, v, axis=0)
    pruned = dense * mask
    matrix = dense_to_vector_wise(pruned, v)
    out = spmm_vector_wise(matrix, rhs)
    np.testing.assert_allclose(out, ref.spmm_vector_wise_loop(matrix, rhs), atol=ATOL)
    np.testing.assert_allclose(out, pruned @ rhs, atol=ATOL)


@settings(max_examples=80, deadline=None)
@given(
    dims=dims,
    density=densities,
    seed=seeds,
    tile_cols=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
)
def test_shflbw_matches_oracle_and_dense(dims, density, seed, tile_cols):
    v, groups, k, n = dims
    rng, m, dense, rhs = _problem(v, groups, k, n, density, seed)
    # Vector-wise sparsity in the *permuted* space plus a random shuffle.
    mask = np.repeat(rng.random((groups, k)) < density, v, axis=0)
    permuted = dense * mask
    row_indices = rng.permutation(m)
    original = np.zeros_like(permuted)
    original[row_indices, :] = permuted
    matrix = dense_to_shflbw(original, v, row_indices)
    out = spmm_shflbw(matrix, rhs, tile_cols=tile_cols)
    np.testing.assert_allclose(
        out, ref.spmm_shflbw_loop(matrix, rhs, tile_cols=tile_cols), atol=ATOL
    )
    np.testing.assert_allclose(out, original @ rhs, atol=ATOL)


@settings(max_examples=60, deadline=None)
@given(dims=dims, density=densities, seed=seeds)
def test_block_matches_oracle_and_dense(dims, density, seed):
    v, groups, k_groups, n = dims
    rng = np.random.default_rng(seed)
    m, k = v * groups, v * k_groups
    dense = rng.normal(size=(m, k))
    rhs = rng.normal(size=(k, n))
    mask = np.kron(rng.random((groups, k_groups)) < density, np.ones((v, v)))
    pruned = dense * mask
    matrix = dense_to_block(pruned, v)
    out = spmm_block(matrix, rhs)
    np.testing.assert_allclose(out, ref.spmm_block_loop(matrix, rhs), atol=ATOL)
    np.testing.assert_allclose(out, pruned @ rhs, atol=ATOL)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=12),
    k_groups=st.integers(min_value=1, max_value=10),
    n=st.integers(min_value=1, max_value=7),
    seed=seeds,
)
def test_balanced_matches_oracle_and_dense(rows, k_groups, n, seed):
    rng = np.random.default_rng(seed)
    k = 4 * k_groups
    dense = rng.normal(size=(rows, k))
    rhs = rng.normal(size=(k, n))
    matrix = dense_to_balanced(dense)  # projects onto 2:4
    out = spmm_balanced(matrix, rhs)
    np.testing.assert_allclose(out, ref.spmm_balanced_loop(matrix, rhs), atol=ATOL)
    np.testing.assert_allclose(out, matrix.to_dense() @ rhs, atol=ATOL)


class TestEdgeCases:
    def test_all_zero_matrix_every_format(self):
        rhs = np.ones((8, 3))
        zero = np.zeros((4, 8))
        np.testing.assert_array_equal(spmm_csr(dense_to_csr(zero), rhs), np.zeros((4, 3)))
        np.testing.assert_array_equal(
            spmm_block(dense_to_block(zero, 4), rhs), np.zeros((4, 3))
        )
        np.testing.assert_array_equal(
            spmm_vector_wise(dense_to_vector_wise(zero, 4), rhs), np.zeros((4, 3))
        )
        np.testing.assert_array_equal(
            spmm_shflbw(dense_to_shflbw(zero, 4), rhs), np.zeros((4, 3))
        )

    def test_shflbw_panel_cache_reused_across_calls(self, rng):
        dense = rng.normal(size=(8, 16)) * (rng.random((8, 16)) < 0.5)
        mask = np.repeat(np.any(dense[:4] != 0, axis=0)[None, :], 4, axis=0)
        pruned = np.vstack([dense[:4] * mask, dense[4:]])
        matrix = dense_to_shflbw(pruned, 4)
        rhs = rng.normal(size=(16, 3))
        first = spmm_shflbw(matrix, rhs, tile_cols=3)
        cache = matrix.vector_matrix.__dict__.get("_panel_cache")
        assert cache is not None and 3 in cache
        second = spmm_shflbw(matrix, rhs, tile_cols=3)
        np.testing.assert_array_equal(first, second)

    def test_csr_scipy_handle_cached(self, rng):
        pruned = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.4)
        matrix = dense_to_csr(pruned)
        rhs = rng.normal(size=(8, 2))
        spmm_csr(matrix, rhs)
        try:
            import scipy.sparse  # noqa: F401
        except ImportError:
            return
        assert matrix.__dict__.get("_scipy_handle") is not None
