"""Tests for the structural pattern validators."""

import numpy as np
import pytest

from repro.pruning.patterns import (
    BalancedPruner,
    BlockwisePruner,
    UnstructuredPruner,
    VectorwisePruner,
)
from repro.sparse.validate import (
    density,
    is_balanced,
    is_blockwise,
    is_shflbw,
    is_vector_wise,
    sparsity,
)


class TestSparsityDensity:
    def test_complementary(self, rng):
        mat = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.3)
        assert sparsity(mat) + density(mat) == pytest.approx(1.0)

    def test_all_zero(self):
        assert sparsity(np.zeros((4, 4))) == 1.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            sparsity(np.zeros(5))


class TestBlockwiseValidator:
    def test_pruner_output_is_blockwise(self, rng):
        w = rng.normal(size=(32, 32))
        pruned = BlockwisePruner(block_size=8).prune(w, 0.75).weights
        assert is_blockwise(pruned, 8)

    def test_unstructured_is_not_blockwise(self, rng):
        w = rng.normal(size=(32, 32))
        pruned = UnstructuredPruner().prune(w, 0.75).weights
        assert not is_blockwise(pruned, 8)

    def test_indivisible_shape_is_false(self):
        assert not is_blockwise(np.ones((10, 8)), 4)


class TestVectorWiseValidator:
    def test_pruner_output_is_vector_wise(self, rng):
        w = rng.normal(size=(32, 48))
        pruned = VectorwisePruner(vector_size=8).prune(w, 0.75).weights
        assert is_vector_wise(pruned, 8)

    def test_blockwise_is_also_vector_wise(self, rng):
        w = rng.normal(size=(32, 32))
        pruned = BlockwisePruner(block_size=8).prune(w, 0.5).weights
        assert is_vector_wise(pruned, 8)

    def test_shuffled_matrix_is_not_vector_wise(self, shflbw_pruned):
        pruned, result = shflbw_pruned
        # With a non-trivial shuffle the matrix is (almost surely) not
        # vector-wise in its original row order but is after permutation.
        assert is_vector_wise(pruned[result.row_indices, :], 8)


class TestShflBWValidator:
    def test_pruner_output_is_shflbw(self, shflbw_pruned):
        pruned, result = shflbw_pruned
        assert is_shflbw(pruned, 8, result.row_indices)
        assert is_shflbw(pruned, 8)  # also verifiable without the witness

    def test_vector_wise_is_shflbw(self, rng):
        w = rng.normal(size=(32, 48))
        pruned = VectorwisePruner(vector_size=8).prune(w, 0.75).weights
        assert is_shflbw(pruned, 8)

    def test_unstructured_is_not_shflbw(self, rng):
        w = rng.normal(size=(32, 48))
        pruned = UnstructuredPruner().prune(w, 0.75).weights
        assert not is_shflbw(pruned, 8)

    def test_bad_witness_rejected(self, shflbw_pruned):
        pruned, _ = shflbw_pruned
        assert not is_shflbw(pruned, 8, np.zeros(pruned.shape[0], dtype=int))


class TestBalancedValidator:
    def test_pruner_output_is_balanced(self, rng):
        w = rng.normal(size=(16, 32))
        pruned = BalancedPruner().prune(w, 0.5).weights
        assert is_balanced(pruned)

    def test_dense_matrix_is_not_balanced(self):
        assert not is_balanced(np.ones((4, 8)))

    def test_indivisible_k_is_false(self):
        assert not is_balanced(np.zeros((4, 6)))
