"""Tests for format conversions (including the kernel's offline steps)."""

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw
from repro.sparse.convert import (
    dense_to_balanced,
    dense_to_block,
    dense_to_csr,
    dense_to_shflbw,
    dense_to_vector_wise,
    identity_row_indices,
    shflbw_to_vector_wise,
    stitched_panels,
    vector_wise_to_block,
    vector_wise_to_block_lists,
)


class TestBasicConversions:
    def test_identity_row_indices(self):
        np.testing.assert_array_equal(identity_row_indices(5), np.arange(5))

    def test_dense_to_csr_round_trip(self, rng):
        dense = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.4)
        np.testing.assert_allclose(dense_to_csr(dense).to_dense(), dense)

    def test_dense_to_block_round_trip(self, rng):
        dense = np.zeros((8, 8))
        dense[0:4, 4:8] = rng.normal(size=(4, 4))
        np.testing.assert_allclose(dense_to_block(dense, 4).to_dense(), dense)

    def test_dense_to_shflbw_defaults_to_identity(self, rng):
        dense = np.zeros((8, 6))
        dense[0:4, 1] = 1.0
        matrix = dense_to_shflbw(dense, 4)
        np.testing.assert_array_equal(matrix.row_indices, np.arange(8))

    def test_dense_to_balanced_projects(self):
        dense = np.ones((2, 4))
        projected = dense_to_balanced(dense).to_dense()
        assert (projected != 0).sum() == 4


class TestKernelOfflineSteps:
    def test_shflbw_to_vector_wise_matches_permuted_dense(self, shflbw_pruned):
        pruned, result = shflbw_pruned
        matrix = dense_to_shflbw(pruned, 8, result.row_indices)
        vec, row_indices = shflbw_to_vector_wise(matrix)
        np.testing.assert_allclose(vec.to_dense(), pruned[row_indices, :])

    def test_vector_wise_to_block_reconstructs_group_panels(self, rng):
        dense = np.zeros((8, 16))
        dense[0:4, [0, 3, 7, 9, 12]] = rng.normal(size=(4, 5))
        vec = dense_to_vector_wise(dense, 4)
        panels = vector_wise_to_block(vec, tile_cols=2)
        # Group 0 has 5 kept columns -> 3 panels of width 2 (last padded);
        # group 1 is all-zero -> no panels.
        np.testing.assert_array_equal(panels.group_indptr, [0, 3, 3])
        assert panels.num_panels == 3
        assert panels.values.shape == (3, 4, 2)
        np.testing.assert_array_equal(panels.columns[0], [0, 3])
        np.testing.assert_array_equal(panels.values[0], dense[0:4, [0, 3]])
        # The tail panel is padded with -1 columns and zero values.
        assert panels.columns[-1][-1] == -1
        assert np.all(panels.values[-1][:, -1] == 0.0)
        # Padding lanes are clamped to a valid gather index.
        assert panels.gather_columns.min() >= 0

    def test_vector_wise_to_block_default_tile_is_square(self, rng):
        dense = np.zeros((4, 8))
        dense[:, [1, 2, 3, 4]] = 1.0
        panels = vector_wise_to_block(dense_to_vector_wise(dense, 4))
        assert panels.values.shape == (1, 4, 4)

    def test_vector_wise_to_block_lists_shim_matches_stacked(self, rng):
        dense = np.zeros((8, 16))
        dense[0:4, [0, 3, 7, 9, 12]] = rng.normal(size=(4, 5))
        dense[4:8, [2, 5]] = rng.normal(size=(4, 2))
        vec = dense_to_vector_wise(dense, 4)
        stacked = vector_wise_to_block(vec, tile_cols=2)
        lists = vector_wise_to_block_lists(vec, tile_cols=2)
        assert len(lists) == stacked.num_groups
        for g, group in enumerate(lists):
            vals, cols = stacked.group_panels(g)
            assert len(group) == vals.shape[0]
            for p, panel in enumerate(group):
                np.testing.assert_array_equal(panel["columns"], cols[p])
                np.testing.assert_array_equal(panel["values"], vals[p])

    def test_stitched_panels_memoised_per_tile(self, rng):
        dense = np.zeros((8, 16))
        dense[0:4, [0, 3, 7]] = rng.normal(size=(4, 3))
        vec = dense_to_vector_wise(dense, 4)
        first = stitched_panels(vec, 2)
        assert stitched_panels(vec, 2) is first
        assert stitched_panels(vec, 4) is not first

    def test_invalid_tile_cols(self, rng):
        vec = dense_to_vector_wise(np.zeros((4, 8)), 4)
        with pytest.raises(ValueError):
            vector_wise_to_block(vec, tile_cols=0)


class TestPrunedMatrixConversions:
    def test_shflbw_pruned_matrix_round_trips(self, shflbw_pruned):
        pruned, result = shflbw_pruned
        matrix = dense_to_shflbw(pruned, 8, result.row_indices)
        np.testing.assert_allclose(matrix.to_dense(), pruned)
        assert matrix.density == pytest.approx(0.25, abs=0.05)

    def test_different_v_sizes(self, rng):
        weight = rng.normal(size=(64, 64))
        for v in (4, 8, 16, 32):
            pruned, result = prune_shflbw(weight, sparsity=0.5, vector_size=v)
            matrix = dense_to_shflbw(pruned, v, result.row_indices)
            np.testing.assert_allclose(matrix.to_dense(), pruned)
