"""Functional correctness of the reference SpMM kernels: every format must
reproduce the dense matmul exactly on matrices that satisfy its pattern."""

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw
from repro.pruning.patterns import (
    BalancedPruner,
    BlockwisePruner,
    UnstructuredPruner,
    VectorwisePruner,
)
from repro.sparse.convert import (
    dense_to_balanced,
    dense_to_block,
    dense_to_csr,
    dense_to_shflbw,
    dense_to_vector_wise,
)
from repro.sparse.spmm import (
    dense_gemm,
    spmm,
    spmm_balanced,
    spmm_block,
    spmm_csr,
    spmm_shflbw,
    spmm_vector_wise,
)


@pytest.fixture
def activations(rng):
    return rng.normal(size=(48, 10))


class TestDenseGEMM:
    def test_matches_numpy(self, rng, activations, small_weight):
        np.testing.assert_allclose(dense_gemm(small_weight, activations), small_weight @ activations)


class TestCSRSpMM:
    def test_matches_dense(self, rng, small_weight, activations):
        pruned = UnstructuredPruner().prune(small_weight, 0.7).weights
        out = spmm_csr(dense_to_csr(pruned), activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)

    def test_empty_rows_produce_zeros(self, activations):
        weight = np.zeros((4, 48))
        weight[2, 5] = 3.0
        out = spmm_csr(dense_to_csr(weight), activations)
        assert np.all(out[0] == 0) and np.all(out[1] == 0) and np.all(out[3] == 0)

    def test_dimension_mismatch_rejected(self, small_weight):
        with pytest.raises(ValueError):
            spmm_csr(dense_to_csr(small_weight), np.zeros((5, 3)))


class TestBlockSpMM:
    def test_matches_dense(self, rng, activations, small_weight):
        pruned = BlockwisePruner(block_size=8).prune(small_weight, 0.5).weights
        out = spmm_block(dense_to_block(pruned, 8), activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)


class TestVectorWiseSpMM:
    def test_matches_dense(self, rng, activations, small_weight):
        pruned = VectorwisePruner(vector_size=8).prune(small_weight, 0.75).weights
        out = spmm_vector_wise(dense_to_vector_wise(pruned, 8), activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)

    def test_all_zero_group(self, activations):
        weight = np.zeros((16, 48))
        weight[8:16, :4] = 1.0
        out = spmm_vector_wise(dense_to_vector_wise(weight, 8), activations)
        np.testing.assert_allclose(out, weight @ activations)


class TestShflBWSpMM:
    def test_matches_dense_with_shuffle(self, small_weight, activations):
        pruned, result = prune_shflbw(small_weight, sparsity=0.75, vector_size=8)
        matrix = dense_to_shflbw(pruned, 8, result.row_indices)
        out = spmm_shflbw(matrix, activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)

    def test_various_stitch_tiles(self, small_weight, activations):
        pruned, result = prune_shflbw(small_weight, sparsity=0.5, vector_size=8)
        matrix = dense_to_shflbw(pruned, 8, result.row_indices)
        reference = pruned @ activations
        for tile_cols in (1, 2, 3, 8, 64):
            out = spmm_shflbw(matrix, activations, tile_cols=tile_cols)
            np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_identity_permutation_reduces_to_vector_wise(self, rng, activations):
        weight = VectorwisePruner(vector_size=8).prune(rng.normal(size=(32, 48)), 0.5).weights
        shfl = dense_to_shflbw(weight, 8, np.arange(32))
        np.testing.assert_allclose(
            spmm_shflbw(shfl, activations),
            spmm_vector_wise(dense_to_vector_wise(weight, 8), activations),
        )


class TestBalancedSpMM:
    def test_matches_dense(self, rng, activations, small_weight):
        pruned = BalancedPruner().prune(small_weight, 0.5).weights
        out = spmm_balanced(dense_to_balanced(pruned), activations)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-12)


class TestDispatch:
    def test_dispatch_matches_each_format(self, small_weight, activations):
        pruned, result = prune_shflbw(small_weight, sparsity=0.5, vector_size=8)
        cases = [
            dense_to_csr(pruned),
            dense_to_vector_wise(pruned, 8),
            dense_to_shflbw(pruned, 8, result.row_indices),
        ]
        for matrix in cases:
            np.testing.assert_allclose(spmm(matrix, activations), pruned @ activations, atol=1e-12)

    def test_dense_array_dispatch(self, small_weight, activations):
        np.testing.assert_allclose(spmm(small_weight, activations), small_weight @ activations)

    def test_unknown_type_rejected(self, activations):
        with pytest.raises(TypeError):
            spmm("not a matrix", activations)
