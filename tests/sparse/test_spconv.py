"""Tests for the implicit-GEMM convolution references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import prune_shflbw
from repro.sparse import spmm_reference as ref
from repro.sparse.convert import dense_to_shflbw, dense_to_vector_wise
from repro.sparse.spconv import Conv2dSpec, col2im, conv2d_dense, conv2d_sparse, im2col, weight_to_gemm


def reference_conv2d(inputs, weight, spec):
    """Direct (slow) convolution used as the ground truth."""
    n, c, h, w = inputs.shape
    oh, ow = spec.output_hw(h, w)
    padded = np.pad(inputs, ((0, 0), (0, 0), (spec.padding,) * 2, (spec.padding,) * 2))
    out = np.zeros((n, spec.out_channels, oh, ow))
    for b in range(n):
        for oc in range(spec.out_channels):
            for i in range(oh):
                for j in range(ow):
                    patch = padded[
                        b,
                        :,
                        i * spec.stride : i * spec.stride + spec.kernel_size,
                        j * spec.stride : j * spec.stride + spec.kernel_size,
                    ]
                    out[b, oc, i, j] = np.sum(patch * weight[oc])
    return out


class TestConvSpec:
    def test_output_size(self):
        spec = Conv2dSpec(3, 8, 3, stride=1, padding=1)
        assert spec.output_hw(8, 8) == (8, 8)
        assert Conv2dSpec(3, 8, 3, stride=2, padding=1).output_hw(8, 8) == (4, 4)

    def test_gemm_dims(self):
        spec = Conv2dSpec(16, 32, 3)
        assert spec.gemm_m == 32
        assert spec.gemm_k == 16 * 9

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            Conv2dSpec(0, 8, 3)
        with pytest.raises(ValueError):
            Conv2dSpec(3, 8, 3, stride=0)

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            Conv2dSpec(3, 8, 5).output_hw(3, 3)


class TestIm2Col:
    def test_shape(self, rng):
        spec = Conv2dSpec(3, 8, 3, padding=1)
        cols = im2col(rng.normal(size=(2, 3, 6, 6)), spec)
        assert cols.shape == (3 * 9, 2 * 6 * 6)

    def test_dense_conv_matches_direct(self, rng):
        spec = Conv2dSpec(2, 4, 3, stride=1, padding=1)
        inputs = rng.normal(size=(2, 2, 5, 5))
        weight = rng.normal(size=(4, 2, 3, 3))
        np.testing.assert_allclose(
            conv2d_dense(inputs, weight, spec), reference_conv2d(inputs, weight, spec), atol=1e-10
        )

    def test_strided_conv_matches_direct(self, rng):
        spec = Conv2dSpec(2, 3, 3, stride=2, padding=1)
        inputs = rng.normal(size=(1, 2, 7, 7))
        weight = rng.normal(size=(3, 2, 3, 3))
        np.testing.assert_allclose(
            conv2d_dense(inputs, weight, spec), reference_conv2d(inputs, weight, spec), atol=1e-10
        )

    def test_col2im_is_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> for random x, y.
        spec = Conv2dSpec(2, 4, 3, stride=1, padding=1)
        x = rng.normal(size=(2, 2, 5, 5))
        cols = im2col(x, spec)
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im(y, x.shape, spec))
        assert lhs == pytest.approx(rhs)

    def test_channel_mismatch_rejected(self, rng):
        spec = Conv2dSpec(3, 8, 3)
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 2, 6, 6)), spec)


class TestSparseConv:
    def test_vector_wise_sparse_conv_matches_dense(self, rng):
        spec = Conv2dSpec(2, 8, 3, padding=1)
        inputs = rng.normal(size=(2, 2, 6, 6))
        weight = rng.normal(size=(8, 2, 3, 3))
        gemm_weight = weight_to_gemm(weight)
        # Prune to vector-wise (V=4) and compare sparse conv vs dense conv of
        # the pruned weight.
        from repro.pruning.patterns import VectorwisePruner

        pruned = VectorwisePruner(vector_size=4).prune(gemm_weight, 0.5).weights
        sparse = dense_to_vector_wise(pruned, 4)
        expected = conv2d_dense(inputs, pruned.reshape(weight.shape), spec)
        np.testing.assert_allclose(conv2d_sparse(inputs, sparse, spec), expected, atol=1e-10)

    def test_shflbw_sparse_conv_matches_dense(self, rng):
        spec = Conv2dSpec(2, 8, 3, padding=1)
        inputs = rng.normal(size=(1, 2, 6, 6))
        weight = rng.normal(size=(8, 2, 3, 3))
        gemm_weight = weight_to_gemm(weight)
        pruned, result = prune_shflbw(gemm_weight, sparsity=0.5, vector_size=4)
        sparse = dense_to_shflbw(pruned, 4, result.row_indices)
        expected = conv2d_dense(inputs, pruned.reshape(weight.shape), spec)
        np.testing.assert_allclose(conv2d_sparse(inputs, sparse, spec), expected, atol=1e-10)

    def test_shape_mismatch_rejected(self, rng):
        spec = Conv2dSpec(2, 8, 3, padding=1)
        sparse = dense_to_vector_wise(np.zeros((8, 10)), 4)
        with pytest.raises(ValueError):
            conv2d_sparse(rng.normal(size=(1, 2, 6, 6)), sparse, spec)


class TestVectorizedUnfoldOracles:
    """The fancy-indexed im2col and the np.add.at col2im must match the seed
    channel x kernel-position loop nest (kept in
    repro.sparse.spmm_reference) bit for bit — gathers are pure copies and
    the scatter-add accumulates duplicates in the same (ki, kj) order."""

    conv_cases = st.tuples(
        st.integers(1, 3),   # batch
        st.integers(1, 4),   # channels
        st.integers(1, 5),   # kernel size
        st.integers(1, 3),   # stride
        st.integers(0, 2),   # padding
        st.integers(0, 6),   # extra input height beyond the minimum
        st.integers(0, 6),   # extra input width beyond the minimum
    )

    @staticmethod
    def _spec_and_shape(case):
        n, c, k, stride, padding, extra_h, extra_w = case
        spec = Conv2dSpec(
            in_channels=c, out_channels=3, kernel_size=k, stride=stride, padding=padding
        )
        h = max(1, k - 2 * padding) + extra_h
        w = max(1, k - 2 * padding) + extra_w
        return spec, (n, c, h, w)

    @settings(max_examples=60, deadline=None)
    @given(case=conv_cases, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_im2col_matches_loop_oracle(self, case, seed):
        spec, shape = self._spec_and_shape(case)
        inputs = np.random.default_rng(seed).normal(size=shape)
        assert np.array_equal(im2col(inputs, spec), ref.im2col_loop(inputs, spec))

    @settings(max_examples=60, deadline=None)
    @given(case=conv_cases, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_col2im_matches_loop_oracle(self, case, seed):
        spec, shape = self._spec_and_shape(case)
        n, c, h, w = shape
        oh, ow = spec.output_hw(h, w)
        kh = spec.kernel_size
        cols = np.random.default_rng(seed).normal(size=(c * kh * kh, n * oh * ow))
        assert np.array_equal(
            col2im(cols, shape, spec), ref.col2im_loop(cols, shape, spec)
        )

    def test_col2im_remains_the_im2col_adjoint(self, rng):
        """<col2im(C), X> == <C, im2col(X)> for random operands."""
        spec = Conv2dSpec(in_channels=3, out_channels=2, kernel_size=3, stride=2, padding=1)
        shape = (2, 3, 7, 9)
        x = rng.normal(size=shape)
        oh, ow = spec.output_hw(7, 9)
        cols = rng.normal(size=(3 * 9, 2 * oh * ow))
        lhs = np.sum(col2im(cols, shape, spec) * x)
        rhs = np.sum(cols * im2col(x, spec))
        assert lhs == pytest.approx(rhs, rel=1e-12)
