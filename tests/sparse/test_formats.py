"""Tests for the sparse-matrix containers (round trips and invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import spmm_reference as ref
from repro.sparse.formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)


def random_sparse_dense(rng, shape, density):
    dense = rng.normal(size=shape)
    mask = rng.random(shape) < density
    return dense * mask


class TestCSR:
    def test_round_trip(self, rng):
        dense = random_sparse_dense(rng, (16, 24), 0.3)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_nnz_and_density(self, rng):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        dense[5, 3] = -2.0
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 2
        assert csr.density == pytest.approx(2 / 64)

    def test_row_nnz(self, rng):
        dense = np.zeros((4, 4))
        dense[1, :] = 1.0
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_nnz()) == [0, 4, 0, 0]

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((4, 6)))
        assert csr.nnz == 0
        np.testing.assert_allclose(csr.to_dense(), np.zeros((4, 6)))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(shape=(2, 2), data=np.ones(1), indices=np.zeros(1), indptr=np.array([0, 1]))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                data=np.ones(1),
                indices=np.array([5]),
                indptr=np.array([0, 1, 1]),
            )


class TestBlockSparse:
    def test_round_trip(self, rng):
        dense = np.zeros((16, 16))
        dense[0:4, 4:8] = rng.normal(size=(4, 4))
        dense[8:12, 0:4] = rng.normal(size=(4, 4))
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        np.testing.assert_allclose(bsr.to_dense(), dense)
        assert bsr.nnz_blocks == 2

    def test_partial_block_is_kept_whole(self, rng):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0  # a single value keeps its whole 4x4 block
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        assert bsr.nnz == 16
        np.testing.assert_allclose(bsr.to_dense(), dense)

    def test_indivisible_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            BlockSparseMatrix.from_dense(np.zeros((10, 8)), 4)

    def test_density(self, rng):
        dense = np.zeros((8, 8))
        dense[0:4, 0:4] = 1.0
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        assert bsr.density == pytest.approx(0.25)


class TestVectorSparse:
    def test_round_trip(self, rng):
        dense = np.zeros((8, 12))
        dense[0:4, [1, 5]] = rng.normal(size=(4, 2))
        dense[4:8, [2, 7, 9]] = rng.normal(size=(4, 3))
        vsp = VectorSparseMatrix.from_dense(dense, 4)
        np.testing.assert_allclose(vsp.to_dense(), dense)
        assert vsp.num_groups == 2
        assert vsp.nnz == 4 * 2 + 4 * 3

    def test_m_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix.from_dense(np.zeros((10, 8)), 4)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix(
                shape=(4, 8),
                vector_size=4,
                group_columns=[np.array([1, 1])],
                group_values=[np.ones((4, 2))],
            )

    def test_wrong_panel_shape_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix(
                shape=(4, 8),
                vector_size=4,
                group_columns=[np.array([1, 2])],
                group_values=[np.ones((3, 2))],
            )


class TestShflBW:
    def test_round_trip_with_permutation(self, rng):
        # Build a matrix that is vector-wise after a known permutation.
        perm = rng.permutation(12)
        permuted = np.zeros((12, 16))
        for g in range(3):
            cols = rng.choice(16, size=4, replace=False)
            permuted[g * 4 : (g + 1) * 4][:, cols] = rng.normal(size=(4, 4))
        dense = np.zeros_like(permuted)
        dense[perm, :] = permuted
        matrix = ShflBWMatrix.from_dense(dense, 4, perm)
        np.testing.assert_allclose(matrix.to_dense(), dense)
        assert matrix.num_groups == 3

    def test_row_groups_partition_rows(self, rng):
        perm = rng.permutation(8)
        matrix = ShflBWMatrix.from_dense(rng.normal(size=(8, 8)), 4, perm)
        rows = np.concatenate(matrix.row_groups)
        assert sorted(rows.tolist()) == list(range(8))

    def test_invalid_permutation_rejected(self, rng):
        with pytest.raises(ValueError):
            ShflBWMatrix.from_dense(rng.normal(size=(8, 8)), 4, np.zeros(8, dtype=int))

    def test_identity_permutation_equals_vector_wise(self, rng):
        dense = np.zeros((8, 8))
        dense[0:4, 0:2] = 1.0
        matrix = ShflBWMatrix.from_dense(dense, 4, np.arange(8))
        np.testing.assert_allclose(matrix.to_dense(), matrix.vector_matrix.to_dense())


class TestBalanced:
    def test_round_trip_for_compliant_matrix(self, rng):
        dense = np.zeros((4, 8))
        dense[:, [0, 2, 5, 7]] = rng.normal(size=(4, 4))
        mat = Balanced24Matrix.from_dense(dense)
        np.testing.assert_allclose(mat.to_dense(), dense)
        assert mat.density == 0.5

    def test_projection_keeps_largest_two(self):
        dense = np.array([[4.0, -1.0, 3.0, 2.0]])
        mat = Balanced24Matrix.from_dense(dense)
        out = mat.to_dense()
        np.testing.assert_allclose(out, [[4.0, 0.0, 3.0, 0.0]])

    def test_k_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            Balanced24Matrix.from_dense(np.zeros((2, 6)))

    def test_nnz(self, rng):
        mat = Balanced24Matrix.from_dense(rng.normal(size=(4, 16)))
        assert mat.nnz == 4 * 8


class TestVectorizedConversionOracles:
    """The vectorized from_dense/to_dense must match the seed loop
    implementations (kept in repro.sparse.spmm_reference) exactly —
    identical index arrays, identical values, identical dtypes."""

    @settings(max_examples=60, deadline=None)
    @given(
        shape=st.tuples(st.integers(1, 24), st.integers(1, 24)),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_csr_matches_loop_oracle(self, shape, density, seed):
        rng = np.random.default_rng(seed)
        dense = random_sparse_dense(rng, shape, density)
        vectorized = CSRMatrix.from_dense(dense)
        oracle = ref.csr_from_dense_loop(dense)
        assert np.array_equal(vectorized.data, oracle.data)
        assert np.array_equal(vectorized.indices, oracle.indices)
        assert np.array_equal(vectorized.indptr, oracle.indptr)
        assert np.array_equal(vectorized.to_dense(), ref.csr_to_dense_loop(oracle))

    @settings(max_examples=60, deadline=None)
    @given(
        blocks=st.tuples(st.integers(1, 6), st.integers(1, 6)),
        block_size=st.integers(min_value=1, max_value=5),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_block_matches_loop_oracle(self, blocks, block_size, density, seed):
        rng = np.random.default_rng(seed)
        shape = (blocks[0] * block_size, blocks[1] * block_size)
        dense = random_sparse_dense(rng, shape, density)
        vectorized = BlockSparseMatrix.from_dense(dense, block_size)
        oracle = ref.block_from_dense_loop(dense, block_size)
        assert np.array_equal(vectorized.data, oracle.data)
        assert np.array_equal(vectorized.block_indices, oracle.block_indices)
        assert np.array_equal(vectorized.block_indptr, oracle.block_indptr)
        assert np.array_equal(
            vectorized.to_dense(), ref.block_to_dense_loop(oracle)
        )


class TestStorageDtype:
    """The containers promise float64 value storage (the dtype every
    functional kernel computes in); float32 inputs must be upcast."""

    def test_all_containers_store_float64(self, rng):
        dense32 = random_sparse_dense(rng, (8, 16), 0.4).astype(np.float32)
        csr = CSRMatrix.from_dense(dense32)
        assert csr.data.dtype == np.float64
        assert csr.to_dense().dtype == np.float64
        bsr = BlockSparseMatrix.from_dense(dense32, 4)
        assert bsr.data.dtype == np.float64
        assert bsr.to_dense().dtype == np.float64
        vec = VectorSparseMatrix.from_dense(dense32, 4)
        assert all(panel.dtype == np.float64 for panel in vec.group_values)
        assert vec.to_dense().dtype == np.float64
        shfl = ShflBWMatrix.from_dense(dense32, 4, np.arange(8))
        assert all(
            panel.dtype == np.float64 for panel in shfl.vector_matrix.group_values
        )
        assert shfl.to_dense().dtype == np.float64
        balanced = Balanced24Matrix.from_dense(dense32)
        assert balanced.values.dtype == np.float64
        assert balanced.to_dense().dtype == np.float64

    def test_index_arrays_are_int64(self, rng):
        dense = random_sparse_dense(rng, (8, 16), 0.4)
        csr = CSRMatrix.from_dense(dense)
        assert csr.indices.dtype == np.int64
        assert csr.indptr.dtype == np.int64
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        assert bsr.block_indices.dtype == np.int64
        assert bsr.block_indptr.dtype == np.int64
