"""Tests for the sparse-matrix containers (round trips and invariants)."""

import numpy as np
import pytest

from repro.sparse.formats import (
    Balanced24Matrix,
    BlockSparseMatrix,
    CSRMatrix,
    ShflBWMatrix,
    VectorSparseMatrix,
)


def random_sparse_dense(rng, shape, density):
    dense = rng.normal(size=shape)
    mask = rng.random(shape) < density
    return dense * mask


class TestCSR:
    def test_round_trip(self, rng):
        dense = random_sparse_dense(rng, (16, 24), 0.3)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_nnz_and_density(self, rng):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        dense[5, 3] = -2.0
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 2
        assert csr.density == pytest.approx(2 / 64)

    def test_row_nnz(self, rng):
        dense = np.zeros((4, 4))
        dense[1, :] = 1.0
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_nnz()) == [0, 4, 0, 0]

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((4, 6)))
        assert csr.nnz == 0
        np.testing.assert_allclose(csr.to_dense(), np.zeros((4, 6)))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(shape=(2, 2), data=np.ones(1), indices=np.zeros(1), indptr=np.array([0, 1]))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                shape=(2, 2),
                data=np.ones(1),
                indices=np.array([5]),
                indptr=np.array([0, 1, 1]),
            )


class TestBlockSparse:
    def test_round_trip(self, rng):
        dense = np.zeros((16, 16))
        dense[0:4, 4:8] = rng.normal(size=(4, 4))
        dense[8:12, 0:4] = rng.normal(size=(4, 4))
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        np.testing.assert_allclose(bsr.to_dense(), dense)
        assert bsr.nnz_blocks == 2

    def test_partial_block_is_kept_whole(self, rng):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0  # a single value keeps its whole 4x4 block
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        assert bsr.nnz == 16
        np.testing.assert_allclose(bsr.to_dense(), dense)

    def test_indivisible_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            BlockSparseMatrix.from_dense(np.zeros((10, 8)), 4)

    def test_density(self, rng):
        dense = np.zeros((8, 8))
        dense[0:4, 0:4] = 1.0
        bsr = BlockSparseMatrix.from_dense(dense, 4)
        assert bsr.density == pytest.approx(0.25)


class TestVectorSparse:
    def test_round_trip(self, rng):
        dense = np.zeros((8, 12))
        dense[0:4, [1, 5]] = rng.normal(size=(4, 2))
        dense[4:8, [2, 7, 9]] = rng.normal(size=(4, 3))
        vsp = VectorSparseMatrix.from_dense(dense, 4)
        np.testing.assert_allclose(vsp.to_dense(), dense)
        assert vsp.num_groups == 2
        assert vsp.nnz == 4 * 2 + 4 * 3

    def test_m_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix.from_dense(np.zeros((10, 8)), 4)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix(
                shape=(4, 8),
                vector_size=4,
                group_columns=[np.array([1, 1])],
                group_values=[np.ones((4, 2))],
            )

    def test_wrong_panel_shape_rejected(self):
        with pytest.raises(ValueError):
            VectorSparseMatrix(
                shape=(4, 8),
                vector_size=4,
                group_columns=[np.array([1, 2])],
                group_values=[np.ones((3, 2))],
            )


class TestShflBW:
    def test_round_trip_with_permutation(self, rng):
        # Build a matrix that is vector-wise after a known permutation.
        perm = rng.permutation(12)
        permuted = np.zeros((12, 16))
        for g in range(3):
            cols = rng.choice(16, size=4, replace=False)
            permuted[g * 4 : (g + 1) * 4][:, cols] = rng.normal(size=(4, 4))
        dense = np.zeros_like(permuted)
        dense[perm, :] = permuted
        matrix = ShflBWMatrix.from_dense(dense, 4, perm)
        np.testing.assert_allclose(matrix.to_dense(), dense)
        assert matrix.num_groups == 3

    def test_row_groups_partition_rows(self, rng):
        perm = rng.permutation(8)
        matrix = ShflBWMatrix.from_dense(rng.normal(size=(8, 8)), 4, perm)
        rows = np.concatenate(matrix.row_groups)
        assert sorted(rows.tolist()) == list(range(8))

    def test_invalid_permutation_rejected(self, rng):
        with pytest.raises(ValueError):
            ShflBWMatrix.from_dense(rng.normal(size=(8, 8)), 4, np.zeros(8, dtype=int))

    def test_identity_permutation_equals_vector_wise(self, rng):
        dense = np.zeros((8, 8))
        dense[0:4, 0:2] = 1.0
        matrix = ShflBWMatrix.from_dense(dense, 4, np.arange(8))
        np.testing.assert_allclose(matrix.to_dense(), matrix.vector_matrix.to_dense())


class TestBalanced:
    def test_round_trip_for_compliant_matrix(self, rng):
        dense = np.zeros((4, 8))
        dense[:, [0, 2, 5, 7]] = rng.normal(size=(4, 4))
        mat = Balanced24Matrix.from_dense(dense)
        np.testing.assert_allclose(mat.to_dense(), dense)
        assert mat.density == 0.5

    def test_projection_keeps_largest_two(self):
        dense = np.array([[4.0, -1.0, 3.0, 2.0]])
        mat = Balanced24Matrix.from_dense(dense)
        out = mat.to_dense()
        np.testing.assert_allclose(out, [[4.0, 0.0, 3.0, 0.0]])

    def test_k_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            Balanced24Matrix.from_dense(np.zeros((2, 6)))

    def test_nnz(self, rng):
        mat = Balanced24Matrix.from_dense(rng.normal(size=(4, 16)))
        assert mat.nnz == 4 * 8
