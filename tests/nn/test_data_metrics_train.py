"""Tests for synthetic datasets, metrics and the (masked) training loop."""

import numpy as np
import pytest

from repro.models.gnmt import GNMTConfig, GNMTProxy
from repro.models.transformer import TransformerConfig, TransformerProxy
from repro.nn.data import SyntheticClassificationTask, SyntheticTranslationTask
from repro.nn.metrics import bleu_score, perplexity, token_accuracy, top1_accuracy
from repro.nn.train import (
    TrainConfig,
    build_masks,
    mask_gradients,
    prune_model,
    train_model,
)
from repro.pruning.patterns import ShflBWPruner, UnstructuredPruner


class TestTranslationTask:
    def test_splits_are_deterministic(self):
        task = SyntheticTranslationTask(seed=3)
        a, b = task.train_split(), task.train_split()
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_target_is_permuted_position_mapping(self):
        task = SyntheticTranslationTask(vocab_size=8, seq_len=5, seed=0)
        split = task.train_split()
        positions = np.arange(5)[None, :]
        expected = task._perm[(split.inputs + positions) % 8]
        np.testing.assert_array_equal(split.targets, expected)

    def test_batches_cover_split(self):
        task = SyntheticTranslationTask(num_train=50, seed=0)
        split = task.train_split()
        total = sum(len(b.inputs) for b in task.batches(split, 16))
        assert total == 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticTranslationTask(vocab_size=2)
        task = SyntheticTranslationTask()
        with pytest.raises(ValueError):
            list(task.batches(task.train_split(), 0))


class TestClassificationTask:
    def test_labels_in_range(self):
        task = SyntheticClassificationTask(num_classes=5, num_train=64)
        split = task.train_split()
        assert split.targets.min() >= 0 and split.targets.max() < 5
        assert split.inputs.shape == (64, 3, 8, 8)

    def test_low_noise_images_match_templates(self):
        task = SyntheticClassificationTask(noise=0.01, num_train=32)
        split = task.train_split()
        recovered = np.array(
            [
                np.argmin(((task._templates - img) ** 2).sum(axis=(1, 2, 3)))
                for img in split.inputs
            ]
        )
        assert (recovered == split.targets).mean() > 0.95


class TestMetrics:
    def test_bleu_perfect_match(self):
        refs = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
        assert bleu_score(refs, refs) == pytest.approx(100.0)

    def test_bleu_zero_for_disjoint(self):
        refs = np.array([[1, 2, 3, 4]])
        hyps = np.array([[5, 6, 7, 8]])
        assert bleu_score(refs, hyps) < 1.0

    def test_bleu_partial_match_in_between(self):
        refs = [[1, 2, 3, 4, 5, 6]]
        hyps = [[1, 2, 3, 9, 9, 9]]
        score = bleu_score(refs, hyps)
        assert 0.0 < score < 100.0

    def test_bleu_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bleu_score([[1]], [[1], [2]])

    def test_token_accuracy(self):
        refs = np.array([[1, 2], [3, 4]])
        hyps = np.array([[1, 0], [3, 4]])
        assert token_accuracy(refs, hyps) == pytest.approx(0.75)

    def test_top1_accuracy_from_logits(self):
        labels = np.array([0, 1, 2])
        logits = np.eye(3) * 5.0
        assert top1_accuracy(labels, logits) == pytest.approx(100.0)

    def test_perplexity(self):
        assert perplexity(0.0) == pytest.approx(1.0)
        assert perplexity(1.0) == pytest.approx(np.e)


class TestMaskedTraining:
    def _tiny_model_and_task(self):
        task = SyntheticTranslationTask(vocab_size=8, seq_len=6, num_train=64, num_valid=32)
        model = TransformerProxy(
            TransformerConfig(vocab_size=8, d_model=32, d_ff=64, num_layers=1, num_heads=2)
        )
        return model, task

    def test_training_reduces_loss(self):
        model, task = self._tiny_model_and_task()
        result = train_model(model, task, TrainConfig(epochs=2, batch_size=32))
        assert result.losses[-1] < result.losses[0]
        assert result.final_metric >= 0.0

    def test_build_masks_covers_prunable_layers(self):
        model, _ = self._tiny_model_and_task()
        masks, infos = build_masks(model, ShflBWPruner(vector_size=8), 0.75)
        assert masks
        for name, mask in masks.items():
            assert mask.dtype == bool
            assert name in infos

    def test_build_masks_rejects_non_finite_weights(self):
        # Corrupted (diverged) weights must raise loudly instead of reading
        # as "pattern does not fit, leave the layer dense".
        model, _ = self._tiny_model_and_task()
        name, param = next(iter(model.prunable_parameters()))
        param.data[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            build_masks(model, UnstructuredPruner(), 0.5)

    def test_apply_masks_zeroes_weights(self):
        model, _ = self._tiny_model_and_task()
        masks = prune_model(model, UnstructuredPruner(), 0.9)
        for name, param in model.prunable_parameters():
            if name in masks:
                assert np.all(param.data[~masks[name]] == 0.0)

    def test_masked_training_preserves_sparsity(self):
        model, task = self._tiny_model_and_task()
        masks = prune_model(model, UnstructuredPruner(), 0.8)
        train_model(model, task, TrainConfig(epochs=1, batch_size=32), masks=masks)
        for name, param in model.prunable_parameters():
            if name in masks:
                assert np.all(param.data[~masks[name]] == 0.0)

    def test_mask_gradients_zeroes_pruned_grads(self):
        model, task = self._tiny_model_and_task()
        masks = prune_model(model, UnstructuredPruner(), 0.5)
        batch = next(task.batches(task.train_split(), 8))
        model.loss(batch).backward()
        mask_gradients(model, masks)
        for name, param in model.prunable_parameters():
            if name in masks and param.grad is not None:
                assert np.all(param.grad[~masks[name]] == 0.0)

    def test_gnmt_proxy_trains(self):
        task = SyntheticTranslationTask(vocab_size=8, seq_len=6, num_train=64, num_valid=32)
        model = GNMTProxy(GNMTConfig(vocab_size=8, embed_dim=16, hidden_size=32, num_layers=1))
        result = train_model(model, task, TrainConfig(epochs=2, batch_size=32))
        assert result.losses[-1] < result.losses[0]

    def test_invalid_train_config(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="lbfgs")
