"""Gradient-correctness tests for the autograd engine (numeric grad checks)."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad

from tests.conftest import numeric_gradient


def check_gradient(build_fn, x0, atol=1e-5):
    """Compare autograd gradient against a central-difference estimate."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = build_fn(x)
    out.backward()
    numeric = numeric_gradient(lambda arr: float(build_fn(Tensor(arr)).data), x0.copy())
    np.testing.assert_allclose(x.grad, numeric, atol=atol)


class TestBasicOps:
    def test_add_mul_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), x0)

    def test_sub_div_grad(self, rng):
        x0 = rng.normal(size=(3, 3)) + 3.0
        check_gradient(lambda x: ((x - 1.0) / (x + 2.0)).sum(), x0)

    def test_pow_grad(self, rng):
        x0 = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda x: (x**3).sum(), x0)

    def test_matmul_grad(self, rng):
        a0 = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)))
        check_gradient(lambda a: (a @ b).sum(), a0)

    def test_batched_matmul_grad(self, rng):
        a0 = rng.normal(size=(2, 3, 4))
        b = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda a: (a @ b).sum(), a0)

    def test_broadcast_add_grad(self, rng):
        x0 = rng.normal(size=(4,))
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: (other + x).sum(), x0)


class TestNonlinearities:
    def test_relu_grad(self, rng):
        x0 = rng.normal(size=(5, 5)) + 0.1  # avoid the kink at exactly 0
        check_gradient(lambda x: x.relu().sum(), x0)

    def test_tanh_sigmoid_grad(self, rng):
        x0 = rng.normal(size=(4, 4))
        check_gradient(lambda x: x.tanh().sum(), x0)
        check_gradient(lambda x: x.sigmoid().sum(), x0)

    def test_exp_log_sqrt_grad(self, rng):
        x0 = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda x: x.exp().sum(), x0)
        check_gradient(lambda x: x.log().sum(), x0)
        check_gradient(lambda x: x.sqrt().sum(), x0)


class TestReductionsAndShapes:
    def test_sum_axis_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), x0)

    def test_mean_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), x0)

    def test_max_grad(self, rng):
        x0 = rng.normal(size=(4, 5))
        check_gradient(lambda x: x.max(axis=1).sum(), x0)

    def test_reshape_transpose_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x.reshape(2, 6).T ** 2).sum(), x0)

    def test_getitem_grad(self, rng):
        x0 = rng.normal(size=(5, 4))
        check_gradient(lambda x: (x[1:4, :2] ** 2).sum(), x0)

    def test_gather_rows_grad(self, rng):
        x0 = rng.normal(size=(6, 3))
        idx = np.array([0, 2, 2, 5])
        check_gradient(lambda x: (x.gather_rows(idx) ** 2).sum(), x0)

    def test_concatenate_stack_grad(self, rng):
        x0 = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda x: Tensor.concatenate([x, other], axis=0).sum() * 2.0, x0)
        check_gradient(lambda x: (Tensor.stack([x, other], axis=0) ** 2).sum(), x0)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * 2.0).sum() + (x * 3.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_disables_tracking(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_breaks_graph(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x.detach() * 2.0).sum()
        assert not y.requires_grad

    def test_zero_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_factory_methods(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0
        assert Tensor.randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)
