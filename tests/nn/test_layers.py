"""Tests for layers, losses and optimisers of the training substrate."""

import numpy as np
import pytest

from repro.nn.functional import cross_entropy, log_softmax, mse_loss, one_hot, softmax
from repro.nn.layers import (
    LSTM,
    BatchNorm2d,
    Conv2d,
    Embedding,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    MultiHeadSelfAttention,
    ReLU,
    Sequential,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Tensor

from tests.conftest import numeric_gradient


class TestFunctional:
    def test_softmax_sums_to_one(self, rng):
        probs = softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4))

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-10)

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])
        with pytest.raises(ValueError):
            one_hot(np.array([5]), 3)

    def test_cross_entropy_matches_manual(self, rng):
        logits_np = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = cross_entropy(Tensor(logits_np), labels)
        log_probs = logits_np - np.log(np.exp(logits_np).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_ignore_index(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, -1, 2])
        loss = cross_entropy(logits, labels, ignore_index=-1)
        assert np.isfinite(float(loss.data))

    def test_cross_entropy_gradient(self, rng):
        logits_np = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        x = Tensor(logits_np.copy(), requires_grad=True)
        cross_entropy(x, labels).backward()
        numeric = numeric_gradient(
            lambda arr: float(cross_entropy(Tensor(arr), labels).data), logits_np.copy()
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_mse_loss(self, rng):
        pred = Tensor(rng.normal(size=(5,)))
        target = rng.normal(size=(5,))
        assert float(mse_loss(pred, target).data) == pytest.approx(((pred.data - target) ** 2).mean())


class TestModuleMechanics:
    def test_parameter_registration_and_traversal(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_prunable_parameters_are_2d_weights(self):
        model = Sequential(Linear(4, 8), Linear(8, 2))
        prunable = dict(model.prunable_parameters())
        assert all(p.data.ndim == 2 for p in prunable.values())
        assert len(prunable) == 2

    def test_state_dict_round_trip(self, rng):
        model = Linear(4, 4, rng=rng)
        state = model.state_dict()
        model.weight.data = np.zeros_like(model.weight.data)
        model.load_state_dict(state)
        np.testing.assert_allclose(model.weight.data, state["weight"])

    def test_load_state_dict_validates(self):
        model = Linear(4, 4)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_train_eval_mode_propagates(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_register_prunable_requires_parameter(self):
        module = Module()
        with pytest.raises(KeyError):
            module.register_prunable("missing")


class TestLayers:
    def test_linear_forward(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(5, 4)))
        out = layer(x)
        np.testing.assert_allclose(out.data, x.data @ layer.weight.data.T + layer.bias.data)

    def test_linear_weight_gradient(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.data.shape

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 6, rng=rng)
        out = emb(np.array([[1, 3], [0, 9]]))
        assert out.shape == (2, 2, 6)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_layer_norm_normalises(self, rng):
        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(size=(4, 16)) * 5 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_batch_norm_train_and_eval(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 3, 5, 5)) * 2 + 1)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-6)
        bn.eval()
        out_eval = bn(x)
        assert out_eval.shape == x.shape

    def test_conv2d_matches_reference(self, rng):
        from repro.sparse.spconv import conv2d_dense

        conv = Conv2d(2, 4, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        out = conv(Tensor(x))
        expected = conv2d_dense(x, conv.weight.data.reshape(4, 2, 3, 3), conv.spec)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_conv2d_gradients_flow(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert conv.weight.grad is not None

    def test_conv2d_weight_gradient_numeric(self, rng):
        conv = Conv2d(1, 2, 3, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        w0 = conv.weight.data.copy()

        def loss_for(wdata):
            conv.weight.data = wdata
            return float(conv(Tensor(x)).sum().data)

        conv.weight.data = w0
        out = conv(Tensor(x))
        conv.weight.zero_grad()
        out.sum().backward()
        numeric = numeric_gradient(loss_for, w0.copy())
        np.testing.assert_allclose(conv.weight.grad, numeric, atol=1e-5)
        conv.weight.data = w0

    def test_max_pool(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool2d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))

    def test_lstm_shapes_and_gradients(self, rng):
        lstm = LSTM(6, 8, rng=rng)
        x = Tensor(rng.normal(size=(3, 5, 6)), requires_grad=True)
        out, (h, c) = lstm(x)
        assert out.shape == (3, 5, 8)
        assert h.shape == (3, 8) and c.shape == (3, 8)
        out.sum().backward()
        assert lstm.cell.weight_ih.grad is not None
        assert lstm.cell.weight_hh.grad is not None

    def test_attention_shapes_and_gradients(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 16)), requires_grad=True)
        out = attn(x)
        assert out.shape == (2, 5, 16)
        out.sum().backward()
        assert attn.q_proj.weight.grad is not None

    def test_attention_dim_must_divide(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)


class TestOptim:
    def test_sgd_reduces_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        assert np.abs(x.data).max() < 0.1

    def test_sgd_momentum_faster_than_plain(self):
        def optimise(momentum):
            x = Tensor(np.array([5.0]), requires_grad=True)
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                (x * x).sum().backward()
                opt.step()
            return abs(float(x.data[0]))

        assert optimise(0.9) < optimise(0.0)

    def test_adam_reduces_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([x], lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.abs(x.data).max() < 0.2

    def test_weight_decay_shrinks_weights(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (x * 0.0).sum().backward()
        opt.step()
        assert float(x.data[0]) < 1.0

    def test_clip_grad_norm(self, rng):
        x = Tensor(rng.normal(size=(10,)), requires_grad=True)
        (x * 100.0).sum().backward()
        norm = clip_grad_norm([x], max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_invalid_hyperparameters(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            clip_grad_norm([x], 0.0)
