"""Tests for the pattern-search experiment on real layer shapes: cells,
execution, collation, caching and the report."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval.experiments import run_experiment
from repro.eval.pattern_search import (
    PATTERN_SEARCH_CACHE_FILENAME,
    PATTERN_SEARCH_TASK,
    PatternSearchCell,
    PatternSearchRecord,
    collate_pattern_search,
    execute_pattern_search_cell,
    layer_scores,
    pattern_search_cells,
    pattern_search_sweep,
)
from repro.eval.runner import SweepRunner
from repro.eval.store import blob_root_for

# The smallest real layer: transformer attn_out is 1024 x 1024, which at
# V=256 clusters into just 4 groups — fast enough for unit tests.
FAST_CELL = dict(
    model="transformer", layer="attn_out", vector_size=256, sparsity=0.8, kmeans_iters=1
)


class TestCells:
    def test_hash_is_stable_and_label_cosmetic(self):
        a = PatternSearchCell(**FAST_CELL, label="A")
        b = PatternSearchCell(**FAST_CELL, label="B")
        assert a == b
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != PatternSearchCell(
            **{**FAST_CELL, "kmeans_iters": 2}
        ).config_hash()

    def test_grid_covers_every_layer(self):
        cells = pattern_search_cells(("transformer",), (64,), (0.8,), kmeans_iters=1)
        assert {c.layer for c in cells} == {"attn_qkv", "attn_out", "ffn1", "ffn2"}
        assert all(c.model == "transformer" for c in cells)

    def test_invalid_cells_rejected(self):
        with pytest.raises(ValueError):
            PatternSearchCell("gnmt", "proj", vector_size=0, sparsity=0.8)
        with pytest.raises(ValueError):
            PatternSearchCell("gnmt", "proj", vector_size=32, sparsity=1.0)


class TestExecution:
    def test_ok_cell(self):
        record = execute_pattern_search_cell(PatternSearchCell(**FAST_CELL))
        assert record.ok
        assert 0.0 < record.retained_fraction < 1.0
        # Achieved density tracks the requested one up to one column per
        # group worth of rounding.
        assert record.density == pytest.approx(0.2, abs=1.0 / 1024)
        assert record.layer_count == 12

    def test_indivisible_layer_is_not_applicable(self):
        # ResNet conv2_3x3 has 64 output channels; V=128 cannot divide them.
        record = execute_pattern_search_cell(
            PatternSearchCell("resnet50", "conv2_3x3", 128, 0.8, kmeans_iters=1)
        )
        assert record.status == "not-applicable"
        assert "not divisible" in record.detail

    def test_unknown_model_and_layer_raise(self):
        with pytest.raises(ValueError):
            execute_pattern_search_cell(
                PatternSearchCell("nope", "proj", 32, 0.8, kmeans_iters=1)
            )
        with pytest.raises(ValueError):
            execute_pattern_search_cell(
                PatternSearchCell("gnmt", "nope", 32, 0.8, kmeans_iters=1)
            )

    def test_scores_are_deterministic_and_nonnegative(self):
        a = layer_scores("gnmt", "proj", 8, 4, seed=0)
        b = layer_scores("gnmt", "proj", 8, 4, seed=0)
        np.testing.assert_array_equal(a, b)
        assert np.all(a >= 0)
        assert not np.array_equal(a, layer_scores("gnmt", "proj", 8, 4, seed=1))
        assert not np.array_equal(a, layer_scores("gnmt", "attention", 8, 4, seed=0))


class TestSweepAndCache:
    @pytest.fixture(scope="class")
    def cells(self):
        return [
            PatternSearchCell(**FAST_CELL),
            PatternSearchCell(**{**FAST_CELL, "sparsity": 0.9}),
        ]

    def test_cache_round_trip(self, cells, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        cold = runner.run_cells(cells, PATTERN_SEARCH_TASK)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        root = blob_root_for(tmp_path / PATTERN_SEARCH_CACHE_FILENAME)
        assert root.is_dir()
        warm = SweepRunner(cache_dir=tmp_path).run_cells(cells, PATTERN_SEARCH_TASK)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.records == cold.records
        entries = [json.loads(b.read_text())["entry"] for b in root.glob("*/*.json")]
        assert len(entries) == 2
        assert all(entry["status"] == "ok" for entry in entries)

    def test_sweep_returns_records_in_grid_order(self, cells):
        records = pattern_search_sweep(
            ("transformer",), (256,), (0.8,), kmeans_iters=1
        )
        assert [r.config.layer for r in records] == [
            "attn_qkv",
            "attn_out",
            "ffn1",
            "ffn2",
        ]
        assert all(r.ok for r in records)


class TestCollation:
    def _record(self, model, layer, v, sparsity, retained, total, count, ok=True):
        cell = PatternSearchCell(model, layer, v, sparsity, kmeans_iters=1)
        if not ok:
            return PatternSearchRecord(cell, "not-applicable", layer_count=count)
        return PatternSearchRecord(
            cell,
            "ok",
            retained_score=retained,
            total_score=total,
            density=1 - sparsity,
            layer_count=count,
        )

    def test_layers_weighted_by_count(self):
        records = [
            self._record("m", "a", 32, 0.8, retained=1.0, total=2.0, count=1),
            self._record("m", "b", 32, 0.8, retained=0.0, total=2.0, count=3),
        ]
        curves = collate_pattern_search(records)
        # (1*1 + 0*3) / (2*1 + 2*3) = 1/8
        assert curves[("m", 32)][0.8] == pytest.approx(1.0 / 8.0)

    def test_all_not_applicable_reads_as_none(self):
        records = [
            self._record("m", "a", 128, 0.8, 0, 0, count=1, ok=False),
        ]
        curves = collate_pattern_search(records)
        assert curves[("m", 128)][0.8] is None


class TestExperiment:
    def test_report_smoke(self):
        report = run_experiment(
            "pattern-search",
            models=("transformer",),
            vector_sizes=(256,),
            sparsities=(0.8,),
            kmeans_iters=1,
        )
        text = report.to_text()
        assert "retained importance" in text
        assert "transformer" in text
        assert report.records
        assert report.metadata["grid"]["kmeans_iters"] == 1
        fractions = [
            r["retained_fraction"] for r in report.records if r["status"] == "ok"
        ]
        assert fractions and all(0.0 < f < 1.0 for f in fractions)
