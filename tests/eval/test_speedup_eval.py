"""Tests for the speedup-experiment harness (Figures 1 and 6, headline)."""

import pytest

from repro.eval.report import Report, Table
from repro.eval.speedup import (
    PAPER_GPUS,
    PAPER_SPARSITIES,
    figure6_sweep,
    headline_speedups,
    model_speedup,
    model_time,
    spmm_throughput_sweep,
)
from repro.gpu.arch import get_gpu
from repro.kernels.registry import make_kernel
from repro.models.shapes import transformer_layers


class TestReportContainers:
    def test_table_row_length_checked(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_text_and_markdown_render(self):
        table = Table("Speed", ["kernel", "x"]).add_row("shfl-bw", 1.81).add_row("none", None)
        report = Report("Demo").add_table(table).add_note("a note")
        text = report.to_text()
        md = report.to_markdown()
        assert "shfl-bw" in text and "a note" in text
        assert "| kernel | x |" in md
        assert "-" in text  # None rendered as dash


class TestModelTime:
    def test_dense_time_positive_and_additive(self):
        arch = get_gpu("V100")
        layers = transformer_layers()
        dense = make_kernel("dense")
        total = model_time(dense, arch, layers, 1.0)
        assert total > 0
        assert total > model_time(dense, arch, layers[:1], 1.0)

    def test_model_speedup_none_for_inapplicable(self):
        arch = get_gpu("V100")
        layers = transformer_layers()
        balanced = make_kernel("cusparselt")
        dense = make_kernel("dense")
        assert model_speedup(balanced, dense, arch, layers, 0.75) is None

    def test_model_speedup_value(self):
        arch = get_gpu("T4")
        layers = transformer_layers()
        point = model_speedup(
            make_kernel("shfl-bw", vector_size=64), make_kernel("dense"), arch, layers, 0.75
        )
        assert point is not None
        assert point.speedup > 1.5
        assert point.arch == "T4"


class TestFigure1:
    def test_curve_structure(self):
        curves = spmm_throughput_sweep(densities=(0.05, 0.25, 0.5))
        assert set(curves) == {
            "Cuda-Core",
            "Tensor-Core",
            "Cuda-Core Sparse",
            "Tensor-Core Sparse (Ours)",
        }
        assert all(len(v) == 3 for v in curves.values())

    def test_paper_relationships(self):
        curves = spmm_throughput_sweep(densities=(0.02, 0.05, 0.25, 0.5))
        tc_dense = curves["Tensor-Core"][0.25]
        # Tensor-core dense is well above CUDA-core dense.
        assert tc_dense > 1.5
        # Our tensor-core sparse beats everything at moderate density.
        assert curves["Tensor-Core Sparse (Ours)"][0.25] > tc_dense
        # CUDA-core sparse only competes at extreme sparsity.
        assert curves["Cuda-Core Sparse"][0.5] < 1.0
        assert curves["Cuda-Core Sparse"][0.02] > 1.0


class TestHeadlineAndFigure6:
    def test_headline_covers_all_gpus(self):
        speedups = headline_speedups()
        assert set(speedups) == set(PAPER_GPUS)
        for gpu, value in speedups.items():
            assert value > 1.3, f"{gpu} speedup {value}"

    def test_figure6_small_slice(self):
        results = figure6_sweep(
            models=("transformer",), gpus=("V100",), sparsities=(0.75,), vector_sizes=(32,)
        )
        per_kernel = results[("transformer", "V100")]
        assert per_kernel["Shfl-BW,V=32"][0.75] is not None
        assert per_kernel["Shfl-BW,V=32"][0.75] > 1.0
        # Unstructured stays below dense; balanced unavailable off 50%/A100.
        assert per_kernel["Unstructured (Sputnik)"][0.75] < 1.0
        assert per_kernel["Balanced 2in4"][0.75] is None

    def test_paper_sparsity_grid(self):
        assert PAPER_SPARSITIES == (0.50, 0.75, 0.85, 0.95)
