"""Tests for the speedup-experiment harness (Figures 1 and 6, headline)."""

import pytest

from repro.eval.experiments import run_experiment
from repro.eval.report import Report, Table
from repro.eval.runner import SweepRunner, serial_executor
from repro.eval.speedup import (
    PAPER_GPUS,
    PAPER_SPARSITIES,
    figure6_sweep,
    headline_speedups,
    layer_time,
    model_speedup,
    model_time,
    spmm_throughput_sweep,
)
from repro.gpu.arch import get_gpu
from repro.kernels.base import KernelNotApplicableError, SpMMKernel
from repro.kernels.registry import make_kernel
from repro.models.shapes import resnet50_layers, transformer_layers


class TestReportContainers:
    def test_table_row_length_checked(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_text_and_markdown_render(self):
        table = Table("Speed", ["kernel", "x"]).add_row("shfl-bw", 1.81).add_row("none", None)
        report = Report("Demo").add_table(table).add_note("a note")
        text = report.to_text()
        md = report.to_markdown()
        assert "shfl-bw" in text and "a note" in text
        assert "| kernel | x |" in md
        assert "-" in text  # None rendered as dash


class TestModelTime:
    def test_dense_time_positive_and_additive(self):
        arch = get_gpu("V100")
        layers = transformer_layers()
        dense = make_kernel("dense")
        total = model_time(dense, arch, layers, 1.0)
        assert total > 0
        assert total > model_time(dense, arch, layers[:1], 1.0)

    def test_model_speedup_none_for_inapplicable(self):
        arch = get_gpu("V100")
        layers = transformer_layers()
        balanced = make_kernel("cusparselt")
        dense = make_kernel("dense")
        assert model_speedup(balanced, dense, arch, layers, 0.75) is None

    def test_model_speedup_value(self):
        arch = get_gpu("T4")
        layers = transformer_layers()
        point = model_speedup(
            make_kernel("shfl-bw", vector_size=64), make_kernel("dense"), arch, layers, 0.75
        )
        assert point is not None
        assert point.speedup > 1.5
        assert point.arch == "T4"

    def test_precomputed_dense_time_matches_recomputation(self):
        arch = get_gpu("V100")
        layers = transformer_layers()
        kernel = make_kernel("shfl-bw", vector_size=64)
        dense = make_kernel("dense")
        dense_time = model_time(dense, arch, layers, 1.0)
        fresh = model_speedup(kernel, dense, arch, layers, 0.75)
        cached = model_speedup(kernel, dense, arch, layers, 0.75, dense_time=dense_time)
        assert fresh is not None and cached is not None
        assert cached.speedup == pytest.approx(fresh.speedup)
        assert cached.dense_time_s == pytest.approx(fresh.dense_time_s)


class TestConvRouting:
    def test_conv_layers_go_through_estimate_conv(self, monkeypatch):
        layers = [layer for layer in resnet50_layers() if layer.kind == "conv"]
        assert layers, "resnet50 must expose conv layers"
        arch = get_gpu("V100")
        kernel = make_kernel("shfl-bw", vector_size=32)
        calls = []
        original = SpMMKernel.estimate_conv

        def spy(self, conv_arch, spec, density, **kwargs):
            calls.append(spec)
            return original(self, conv_arch, spec, density, **kwargs)

        monkeypatch.setattr(SpMMKernel, "estimate_conv", spy)
        time = layer_time(kernel, arch, layers[0], 0.25)
        assert time > 0
        assert calls == [layers[0].conv]

    def test_model_time_rejects_convless_kernels_on_resnet(self):
        layers = resnet50_layers()
        arch = get_gpu("V100")
        with pytest.raises(KernelNotApplicableError):
            model_time(make_kernel("sputnik"), arch, layers, 0.25)

    def test_conv_layer_costs_more_than_plain_gemm(self):
        # The unfolding overhead must actually show up in the layer time.
        layers = [
            layer
            for layer in resnet50_layers()
            if layer.kind == "conv" and layer.conv.kernel_size > 1
        ]
        arch = get_gpu("V100")
        kernel = make_kernel("dense")
        layer = layers[0]
        conv_time = layer_time(kernel, arch, layer, 1.0)
        gemm_time = kernel.estimate(arch, layer.gemm, 1.0).total_time_s
        assert conv_time > gemm_time

    def test_figure6_resnet_sweep_exercises_estimate_conv(self, monkeypatch):
        calls = []
        original = SpMMKernel.estimate_conv

        def spy(self, arch, spec, density, **kwargs):
            calls.append((type(self).__name__, spec.kernel_size))
            return original(self, arch, spec, density, **kwargs)

        monkeypatch.setattr(SpMMKernel, "estimate_conv", spy)
        # The batched default executor folds the unfolding overhead into its
        # grid expressions (and is property-tested to match bit for bit);
        # the routing contract under test lives on the scalar oracle path.
        report = run_experiment(
            "figure6",
            models=("resnet50",),
            gpus=("V100",),
            sparsities=(0.75,),
            vector_sizes=(32,),
            runner=SweepRunner(executor=serial_executor),
        )
        assert "resnet50 on V100" in report.to_text()
        assert calls, "the ResNet-50 sweep must route layers through estimate_conv"
        # Both our kernel and the dense baseline take the conv path,
        # including the 3x3 layers that pay the unfolding overhead.
        names = {name for name, _ in calls}
        assert "ShflBWKernel" in names
        assert "DenseTensorCoreGEMM" in names
        assert any(ks == 3 for _, ks in calls)


class TestFigure1:
    def test_curve_structure(self):
        curves = spmm_throughput_sweep(densities=(0.05, 0.25, 0.5))
        assert set(curves) == {
            "Cuda-Core",
            "Tensor-Core",
            "Cuda-Core Sparse",
            "Tensor-Core Sparse (Ours)",
        }
        assert all(len(v) == 3 for v in curves.values())

    def test_paper_relationships(self):
        curves = spmm_throughput_sweep(densities=(0.02, 0.05, 0.25, 0.5))
        tc_dense = curves["Tensor-Core"][0.25]
        # Tensor-core dense is well above CUDA-core dense.
        assert tc_dense > 1.5
        # Our tensor-core sparse beats everything at moderate density.
        assert curves["Tensor-Core Sparse (Ours)"][0.25] > tc_dense
        # CUDA-core sparse only competes at extreme sparsity.
        assert curves["Cuda-Core Sparse"][0.5] < 1.0
        assert curves["Cuda-Core Sparse"][0.02] > 1.0


class TestHeadlineAndFigure6:
    def test_headline_covers_all_gpus(self):
        speedups = headline_speedups()
        assert set(speedups) == set(PAPER_GPUS)
        for gpu, value in speedups.items():
            assert value > 1.3, f"{gpu} speedup {value}"

    def test_figure6_small_slice(self):
        results = figure6_sweep(
            models=("transformer",), gpus=("V100",), sparsities=(0.75,), vector_sizes=(32,)
        )
        per_kernel = results[("transformer", "V100")]
        assert per_kernel["Shfl-BW,V=32"][0.75] is not None
        assert per_kernel["Shfl-BW,V=32"][0.75] > 1.0
        # Unstructured stays below dense; balanced unavailable off 50%/A100.
        assert per_kernel["Unstructured (Sputnik)"][0.75] < 1.0
        assert per_kernel["Balanced 2in4"][0.75] is None

    def test_paper_sparsity_grid(self):
        assert PAPER_SPARSITIES == (0.50, 0.75, 0.85, 0.95)
