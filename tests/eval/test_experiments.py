"""Tests for the experiment registry and CLI (fast experiments only;
the accuracy experiments have their own smoke test)."""

import pytest

from repro.eval.__main__ import main
from repro.eval.experiments import available_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = available_experiments()
        for expected in ("figure1", "figure2", "figure6", "table1", "headline", "analysis"):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_figure1_report(self):
        report = run_experiment("figure1", densities=(0.05, 0.25))
        text = report.to_text()
        assert "Figure 1" in text
        assert "Tensor-Core Sparse" in text

    def test_analysis_report(self):
        report = run_experiment("analysis", m=256, k=256)
        assert "700" in report.to_text() or "Flexibility" in report.to_text()

    def test_headline_report(self):
        report = run_experiment("headline")
        text = report.to_text()
        for gpu in ("V100", "T4", "A100"):
            assert gpu in text


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out

    def test_no_argument_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_run_analysis_markdown(self, capsys):
        assert main(["analysis", "--markdown"]) == 0
        assert "##" in capsys.readouterr().out
