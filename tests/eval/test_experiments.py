"""Tests for the experiment registry and CLI (fast experiments only;
the accuracy experiments have their own smoke test)."""

import pytest

from repro.eval.__main__ import main
from repro.eval.experiments import available_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = available_experiments()
        for expected in ("figure1", "figure2", "figure6", "table1", "headline", "analysis"):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_figure1_report(self):
        report = run_experiment("figure1", densities=(0.05, 0.25))
        text = report.to_text()
        assert "Figure 1" in text
        assert "Tensor-Core Sparse" in text

    def test_analysis_report(self):
        report = run_experiment("analysis", m=256, k=256)
        assert "700" in report.to_text() or "Flexibility" in report.to_text()

    def test_headline_report(self):
        report = run_experiment("headline")
        text = report.to_text()
        for gpu in ("V100", "T4", "A100"):
            assert gpu in text

    def test_autotune_registered(self):
        assert "autotune" in available_experiments()


class TestAutotuneExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment(
            "autotune", models=("transformer",), gpus=("V100",), sparsity=0.75
        )

    def test_summary_and_assignment_tables(self, report):
        text = report.to_text()
        assert "best single kernel" in text
        assert "per-layer assignments" in text
        assert "ffn1" in text

    def test_plan_metadata_and_records(self, report):
        plans = report.metadata["plans"]
        assert "transformer|V100" in plans
        assert plans["transformer|V100"]["assignments"]
        labels = {record["label"] for record in report.records}
        assert "Autotuned plan" in labels

    def test_advantage_is_at_least_one(self, report):
        (summary, *_rest) = report.tables
        for row in summary.rows:
            advantage = row[-1]
            assert advantage >= 1.0 - 1e-12

    def test_headline_with_tuner_adds_column(self):
        from repro.tune import Autotuner

        report = run_experiment("headline", tuner=Autotuner())
        (table,) = report.tables
        assert table.columns[-1] == "autotuned"
        for row in table.rows:
            assert row[-1] > 1.0

    def test_figure6_with_tuner_dominates_single_kernels(self):
        from repro.tune import Autotuner

        report = run_experiment(
            "figure6", tuner=Autotuner(), models=("transformer",), gpus=("V100",)
        )
        (table,) = report.tables
        rows = {row[0]: row[1:] for row in table.rows}
        planned = rows.pop("Autotuned plan")
        for label, speedups in rows.items():
            for planned_cell, single_cell in zip(planned, speedups, strict=True):
                if single_cell is not None:
                    assert planned_cell >= single_cell * (1 - 1e-12), label


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out

    def test_no_argument_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_run_analysis_markdown(self, capsys):
        assert main(["analysis", "--markdown"]) == 0
        assert "##" in capsys.readouterr().out
