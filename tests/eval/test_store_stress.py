"""Multi-writer stress tests for the cache substrate.

The bug this PR class exists for: N sweep processes sharing one
``--cache-dir`` under the legacy single-file store silently lost entries —
each process loaded the file once and the last flush won wholesale.  The
blob store makes concurrent writers safe *by construction* (one atomic file
per key), and this module proves it the hard way: several processes hammer
one store while the parent concurrently reads, and afterwards every write
must be present and internally consistent.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.eval.store import BlobStore, JsonFileStore, blob_root_for

N_WORKERS = 4
KEYS_PER_WORKER = 25
N_SHARED_KEYS = 10


def _key_for(label: str) -> str:
    return hashlib.sha256(label.encode()).hexdigest()[:16]


def _payload_for(key: str) -> dict:
    """A deterministic entry whose internal checksum detects torn reads."""
    body = (key * 8)[:96]
    return {
        "key": key,
        "body": body,
        "checksum": hashlib.sha256(body.encode()).hexdigest(),
    }


def _disjoint_keys(worker_id: int) -> list[str]:
    return [
        _key_for(f"worker-{worker_id}-cell-{index}")
        for index in range(KEYS_PER_WORKER)
    ]


def _shared_keys() -> list[str]:
    return [_key_for(f"shared-cell-{index}") for index in range(N_SHARED_KEYS)]


def _hammer(root_str: str, worker_id: int) -> int:
    """One writer process: flush after every put to maximise interleaving."""
    store = BlobStore(Path(root_str), salt="stress-v1")
    written = 0
    # Interleave disjoint and shared keys so same-key collisions happen
    # while other writers are mid-flush on neighbouring shards.
    for index, key in enumerate(_disjoint_keys(worker_id)):
        store.put(key, _payload_for(key))
        store.flush()
        written += 1
        shared = _shared_keys()
        if index < len(shared):
            store.put(shared[index], _payload_for(shared[index]))
            store.flush()
            written += 1
    return written


def _verify_visible_blobs(root: Path) -> int:
    """Parse every committed blob and validate its checksum.

    Runs concurrently with the writers: atomic per-entry replace means any
    file we can open must parse wholesale and self-validate — a torn or
    partial entry would fail here.
    """
    seen = 0
    for blob in root.glob("*/*.json"):
        try:
            envelope = json.loads(blob.read_text())
        except OSError:
            continue  # replaced between glob and open; fine
        entry = envelope["entry"]
        body = entry["body"]
        assert entry["checksum"] == hashlib.sha256(body.encode()).hexdigest(), (
            f"torn read in {blob}"
        )
        assert envelope["key"] == blob.name.removesuffix(".json")
        seen += 1
    return seen


class TestBlobStoreUnderConcurrentWriters:
    def test_no_lost_updates_and_no_partial_reads(self, tmp_path):
        root = tmp_path / "sweep-cache.blobs"
        with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
            futures = [
                pool.submit(_hammer, str(root), worker_id)
                for worker_id in range(N_WORKERS)
            ]
            # Concurrent reader: scan and checksum while writers are live.
            while not all(future.done() for future in futures):
                _verify_visible_blobs(root)
            written = [future.result() for future in futures]
        assert all(count == KEYS_PER_WORKER + N_SHARED_KEYS for count in written)

        # Zero lost updates: every disjoint key from every worker survived,
        # and the shared keys (written by all four workers) hold exactly the
        # deterministic payload — per-key last-write-wins is harmless when
        # writers of the same key write identical content.
        store = BlobStore(root)
        expected = set(_shared_keys())
        for worker_id in range(N_WORKERS):
            expected.update(_disjoint_keys(worker_id))
        for key in sorted(expected):
            assert store.get(key) == _payload_for(key), f"lost update for {key}"
        assert _verify_visible_blobs(root) == len(expected)
        # No writer died mid-replace: no stray temp files remain.
        assert not list(root.glob("*/*.tmp"))


class TestLegacyStoreIsLastWriterWins:
    def test_concurrent_legacy_writers_lose_entries(self, tmp_path):
        """Documents the hazard the blob store fixes: two JsonFileStore
        writers over one path each snapshot the file at construction, so
        the second flush discards the first writer's entries wholesale."""
        path = tmp_path / "sweep-cache.json"
        first = JsonFileStore(path)
        second = JsonFileStore(path)  # loads before first flushes
        key_a, key_b = _key_for("writer-a"), _key_for("writer-b")
        first.put(key_a, {"value": "a"})
        first.flush()
        second.put(key_b, {"value": "b"})
        second.flush()
        survivors = JsonFileStore(path)
        assert survivors.get(key_b) == {"value": "b"}
        assert survivors.get(key_a) is None  # first writer's entry is gone

    def test_blob_store_survives_the_same_interleaving(self, tmp_path):
        legacy = tmp_path / "sweep-cache.json"
        first = BlobStore(blob_root_for(legacy), legacy_path=legacy)
        second = BlobStore(blob_root_for(legacy), legacy_path=legacy)
        key_a, key_b = _key_for("writer-a"), _key_for("writer-b")
        first.put(key_a, {"value": "a"})
        first.flush()
        second.put(key_b, {"value": "b"})
        second.flush()
        survivors = BlobStore(blob_root_for(legacy), legacy_path=legacy)
        assert survivors.get(key_a) == {"value": "a"}
        assert survivors.get(key_b) == {"value": "b"}
