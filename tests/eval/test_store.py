"""Unit tests for the cache persistence substrate (``repro.eval.store``):
atomic writes, corrupt-file quarantine, the legacy single-file store, the
content-addressed blob store and the stats/gc/migrate helpers."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.eval.store import (
    BlobStore,
    CorruptCacheWarning,
    JsonFileStore,
    atomic_write_bytes,
    blob_root_for,
    collect_stats,
    discover_families,
    gc_blobs,
    load_json_entries,
    make_store,
    migrate_legacy_file,
    preserve_corrupt_file,
)

KEY_A = "ab" + "0" * 14
KEY_B = "cd" + "1" * 14
KEY_C = "ab" + "2" * 14  # shares KEY_A's shard


class TestAtomicWriteBytes:
    def test_writes_and_overwrites(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.json"
        atomic_write_bytes(target, b"one")
        assert target.read_bytes() == b"one"
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "file.json"
        for index in range(5):
            atomic_write_bytes(target, str(index).encode())
        assert [child.name for child in tmp_path.iterdir()] == ["file.json"]


class TestPreserveCorruptFile:
    def test_sidecar_holds_the_bytes(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_bytes(b"{broken")
        with pytest.warns(CorruptCacheWarning, match="preserved"):
            sidecar = preserve_corrupt_file(path, b"{broken", reason="test")
        assert sidecar.parent == tmp_path
        assert sidecar.name.startswith("cache.json.corrupt-")
        assert sidecar.read_bytes() == b"{broken"

    def test_warns_once_per_file_and_content(self, tmp_path):
        path = tmp_path / "cache.json"
        with pytest.warns(CorruptCacheWarning):
            preserve_corrupt_file(path, b"{broken", reason="test")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            preserve_corrupt_file(path, b"{broken", reason="test")
        # Different corruption of the same file is news again.
        with pytest.warns(CorruptCacheWarning):
            preserve_corrupt_file(path, b"{other", reason="test")


class TestLoadJsonEntries:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_json_entries(tmp_path / "absent.json") == {}

    def test_non_object_payload_is_quarantined(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(CorruptCacheWarning):
            assert load_json_entries(path) == {}
        assert list(tmp_path.glob("cache.json.corrupt-*"))

    def test_quarantine_can_be_disabled(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{nope")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_json_entries(path, quarantine=False) == {}
        assert not list(tmp_path.glob("cache.json.corrupt-*"))


class TestJsonFileStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        store = JsonFileStore(path)
        assert len(store) == 0
        store.put(KEY_A, {"value": 1})
        store.flush()
        again = JsonFileStore(path)
        assert again.get(KEY_A) == {"value": 1}
        assert again.keys() == [KEY_A]

    def test_flush_is_atomic_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "cache.json"
        store = JsonFileStore(path)
        for index in range(3):
            store.put(f"{KEY_A}{index:02d}", {"value": index})
            store.flush()
        assert [child.name for child in tmp_path.iterdir()] == ["cache.json"]
        assert json.loads(path.read_text())  # well-formed after every flush

    def test_flush_without_puts_writes_nothing(self, tmp_path):
        path = tmp_path / "cache.json"
        JsonFileStore(path).flush()
        assert not path.exists()

    def test_corrupt_file_is_preserved_not_clobbered(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json")
        with pytest.warns(CorruptCacheWarning):
            store = JsonFileStore(path)
        assert len(store) == 0
        store.put(KEY_A, {"value": 1})
        store.flush()
        (sidecar,) = tmp_path.glob("cache.json.corrupt-*")
        assert sidecar.read_text() == "{definitely not json"
        assert json.loads(path.read_text()) == {KEY_A: {"value": 1}}

    def test_malformed_entry_is_a_miss_but_not_dropped(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({KEY_A: "oops", KEY_B: {"ok": True}}))
        store = JsonFileStore(path)
        assert store.get(KEY_A) is None
        assert store.get(KEY_B) == {"ok": True}
        assert store.keys() == [KEY_B]


class TestBlobStore:
    def test_round_trip_and_sharding(self, tmp_path):
        root = tmp_path / "cache.blobs"
        store = BlobStore(root, salt="timing-v2")
        store.put(KEY_A, {"value": 1})
        store.put(KEY_B, {"value": 2})
        store.put(KEY_C, {"value": 3})
        # Staged entries are visible before flush.
        assert store.get(KEY_A) == {"value": 1}
        store.flush()
        assert sorted(p.name for p in root.iterdir()) == ["ab", "cd"]
        blob = root / KEY_A[:2] / f"{KEY_A}.json"
        envelope = json.loads(blob.read_text())
        assert envelope == {"key": KEY_A, "salt": "timing-v2", "entry": {"value": 1}}
        # A fresh store over the same root sees everything.
        again = BlobStore(root)
        assert again.get(KEY_B) == {"value": 2}
        assert again.keys() == sorted([KEY_A, KEY_B, KEY_C])
        assert len(again) == 3

    def test_sees_writes_from_other_stores(self, tmp_path):
        """Unlike the eagerly-loaded legacy store, blob reads go to disk —
        a second process's flushes become visible immediately."""
        root = tmp_path / "cache.blobs"
        reader = BlobStore(root)
        assert reader.get(KEY_A) is None
        writer = BlobStore(root)
        writer.put(KEY_A, {"value": 1})
        writer.flush()
        assert reader.get(KEY_A) == {"value": 1}

    def test_put_rejects_non_hex_keys(self, tmp_path):
        store = BlobStore(tmp_path / "cache.blobs")
        for bad in ("", "xyz", "AB12CD", "../escape", "a/b", "ab"):
            with pytest.raises(ValueError, match="invalid cache key"):
                store.put(bad, {})

    def test_get_tolerates_non_hex_keys(self, tmp_path):
        store = BlobStore(tmp_path / "cache.blobs")
        assert store.get("not a key") is None
        assert store.get("../escape") is None

    def test_corrupt_blob_is_quarantined_and_reads_as_miss(self, tmp_path):
        root = tmp_path / "cache.blobs"
        store = BlobStore(root)
        store.put(KEY_A, {"value": 1})
        store.flush()
        blob = root / KEY_A[:2] / f"{KEY_A}.json"
        blob.write_text("{smashed")
        with pytest.warns(CorruptCacheWarning):
            assert store.get(KEY_A) is None
        assert not blob.exists()
        (sidecar,) = blob.parent.glob(f"{KEY_A}.json.corrupt-*")
        assert sidecar.read_text() == "{smashed"

    def test_malformed_envelope_is_a_silent_miss(self, tmp_path):
        root = tmp_path / "cache.blobs"
        store = BlobStore(root)
        store.put(KEY_A, {"value": 1})
        store.flush()
        blob = root / KEY_A[:2] / f"{KEY_A}.json"
        blob.write_text(json.dumps({"key": KEY_A, "entry": "not a dict"}))
        assert store.get(KEY_A) is None

    def test_reads_through_legacy_and_writes_back(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({KEY_A: {"value": 1}, "bad key": {"value": 2}}))
        store = BlobStore(
            blob_root_for(legacy), salt="timing-v2", legacy_path=legacy
        )
        assert store.get(KEY_A) == {"value": 1}
        # The hit was immediately written back as a blob (so even an
        # all-hits warm run migrates), stamped with the reader's salt.
        blob = blob_root_for(legacy) / KEY_A[:2] / f"{KEY_A}.json"
        assert json.loads(blob.read_text())["salt"] == "timing-v2"
        # Non-hex legacy keys are still served, just never become blobs.
        assert store.get("bad key") == {"value": 2}
        assert store.keys() == sorted([KEY_A, "bad key"])

    def test_blob_wins_over_legacy(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({KEY_A: {"value": "stale"}}))
        store = BlobStore(blob_root_for(legacy), legacy_path=legacy)
        store.put(KEY_A, {"value": "fresh"})
        store.flush()
        assert BlobStore(blob_root_for(legacy), legacy_path=legacy).get(KEY_A) == {
            "value": "fresh"
        }


class TestMakeStore:
    def test_json_backend(self, tmp_path):
        store = make_store(tmp_path / "cache.json", backend="json")
        assert isinstance(store, JsonFileStore)
        assert store.path == tmp_path / "cache.json"

    def test_blob_backend_derives_root_and_legacy(self, tmp_path):
        store = make_store(tmp_path / "cache.json", salt="s")
        assert isinstance(store, BlobStore)
        assert store.path == tmp_path / "cache.blobs"
        assert store.legacy_path == tmp_path / "cache.json"
        assert store.salt == "s"

    def test_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            make_store(tmp_path / "cache.json", backend="sqlite")


class TestMigrate:
    def test_bulk_migration(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(
            json.dumps({KEY_A: {"value": 1}, KEY_B: {"value": 2}, "bad key": {}})
        )
        result = migrate_legacy_file(legacy)
        assert (result.migrated, result.skipped_invalid) == (2, 1)
        assert not result.removed_legacy
        store = BlobStore(blob_root_for(legacy))
        assert store.get(KEY_A) == {"value": 1}
        # Envelopes carry salt: null — legacy never recorded a generation.
        blob = blob_root_for(legacy) / KEY_A[:2] / f"{KEY_A}.json"
        assert json.loads(blob.read_text())["salt"] is None

    def test_existing_blobs_win(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({KEY_A: {"value": "stale"}}))
        fresh = BlobStore(blob_root_for(legacy))
        fresh.put(KEY_A, {"value": "fresh"})
        fresh.flush()
        result = migrate_legacy_file(legacy)
        assert (result.migrated, result.skipped_existing) == (0, 1)
        assert fresh.get(KEY_A) == {"value": "fresh"}

    def test_remove_legacy_only_when_fully_migrated(self, tmp_path):
        partial = tmp_path / "partial.json"
        partial.write_text(json.dumps({KEY_A: {}, "bad key": {}}))
        assert not migrate_legacy_file(partial, remove_legacy=True).removed_legacy
        assert partial.exists()
        clean = tmp_path / "clean.json"
        clean.write_text(json.dumps({KEY_B: {"value": 2}}))
        assert migrate_legacy_file(clean, remove_legacy=True).removed_legacy
        assert not clean.exists()
        assert BlobStore(blob_root_for(clean)).get(KEY_B) == {"value": 2}


class TestStatsAndGc:
    def seed(self, cache_dir):
        store = BlobStore(cache_dir / "sweep-cache.blobs", salt="timing-v2")
        store.put(KEY_A, {"value": 1})
        store.put(KEY_B, {"value": 2})
        store.flush()
        old = BlobStore(cache_dir / "sweep-cache.blobs", salt="timing-v1")
        old.put(KEY_C, {"value": 3})
        old.flush()
        return cache_dir / "sweep-cache.blobs"

    def test_discover_families(self, tmp_path):
        self.seed(tmp_path)
        (tmp_path / "accuracy-cache.json").write_text("{}")
        assert discover_families(tmp_path) == ["accuracy-cache", "sweep-cache"]

    def test_collect_stats(self, tmp_path):
        self.seed(tmp_path)
        (tmp_path / "sweep-cache.json").write_text(json.dumps({KEY_A: {"v": 1}}))
        (family,) = collect_stats(tmp_path)
        assert family.name == "sweep-cache"
        assert family.blobs == 3
        assert family.shards == 2
        assert family.salts == {"timing-v1": 1, "timing-v2": 2}
        assert family.legacy_entries == 1
        assert family.blob_bytes > 0

    def test_gc_retires_orphaned_salts(self, tmp_path):
        root = self.seed(tmp_path)
        dry = gc_blobs(root, frozenset({"timing-v2"}), dry_run=True)
        assert (dry.examined, dry.kept, dry.removed) == (3, 2, 1)
        assert BlobStore(root).get(KEY_C) is not None  # dry run deleted nothing
        wet = gc_blobs(root, frozenset({"timing-v2"}))
        assert wet.removed == 1 and wet.removed_bytes > 0
        store = BlobStore(root)
        assert store.get(KEY_C) is None
        assert store.get(KEY_A) is not None

    def test_gc_unsalted_policy(self, tmp_path):
        legacy = tmp_path / "sweep-cache.json"
        legacy.write_text(json.dumps({KEY_A: {"value": 1}}))
        migrate_legacy_file(legacy)
        root = blob_root_for(legacy)
        assert gc_blobs(root, frozenset({"timing-v2"})).kept == 1
        assert gc_blobs(root, frozenset({"timing-v2"}), drop_unsalted=True).removed == 1

    def test_gc_sweeps_stray_tmp_and_corrupt_blobs(self, tmp_path):
        root = self.seed(tmp_path)
        (root / KEY_A[:2] / "dead-writer.tmp").write_text("partial")
        blob = root / KEY_C[:2] / f"{KEY_C}.json"
        blob.write_text("{smashed")
        with pytest.warns(CorruptCacheWarning):
            result = gc_blobs(root, frozenset({"timing-v1", "timing-v2"}))
        assert result.tmp_removed == 1
        assert result.quarantined == 1
        assert not (root / KEY_A[:2] / "dead-writer.tmp").exists()
        assert not blob.exists()
        assert list(blob.parent.glob(f"{KEY_C}.json.corrupt-*"))
