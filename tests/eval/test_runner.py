"""Tests for the sweep runner: cache-key stability (including across process
restarts and dict orderings), cache hit/miss accounting, and serial-vs-
parallel executor equivalence."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.runner import (
    CACHE_FILENAME,
    KernelSpec,
    ResultCache,
    RunConfig,
    SweepRunner,
    SweepSpec,
    batched_executor,
    canonical_config_hash,
    execute_config,
    process_executor,
    serial_executor,
)
from repro.eval.speedup import figure1_spec, figure6_spec, headline_spec
from repro.eval.store import CorruptCacheWarning, blob_root_for

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def small_spec() -> SweepSpec:
    """A fast grid: 2 kernels x 1 GPU x 3 sparsities on one GEMM shape."""
    return SweepSpec(
        kernels=(
            KernelSpec("sputnik", label="sputnik"),
            KernelSpec("shfl-bw", kwargs={"vector_size": 32}, label="Shfl-BW,V=32"),
        ),
        gpus=("V100",),
        sparsities=(0.5, 0.75, 0.9),
        gemm=(256, 64, 256),
    )


# --------------------------------------------------------------------------- #
# RunConfig hashing
# --------------------------------------------------------------------------- #
kwarg_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.text(alphabet="abcxyz", max_size=6),
)
kwarg_dicts = st.dictionaries(
    st.sampled_from(["vector_size", "block_size", "alpha", "mode"]),
    kwarg_values,
    max_size=4,
)


class TestConfigHash:
    @given(kwargs=kwarg_dicts, seed=st.randoms())
    def test_hash_independent_of_kwargs_ordering(self, kwargs, seed):
        items = list(kwargs.items())
        shuffled = items[:]
        seed.shuffle(shuffled)
        a = RunConfig("k", "V100", 0.5, model="transformer", kernel_kwargs=tuple(items))
        b = RunConfig("k", "V100", 0.5, model="transformer", kernel_kwargs=tuple(shuffled))
        assert a == b
        assert a.config_hash() == b.config_hash()

    @given(
        kernel=st.sampled_from(["shfl-bw", "sputnik", "dense"]),
        gpu=st.sampled_from(["V100", "T4", "A100"]),
        sparsity=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
        kwargs=kwarg_dicts,
    )
    @settings(max_examples=50)
    def test_dict_round_trip_preserves_identity(self, kernel, gpu, sparsity, kwargs):
        config = RunConfig(
            kernel, gpu, sparsity, model="gnmt", kernel_kwargs=tuple(kwargs.items())
        )
        # Through JSON (the cache's serialisation) and back.
        restored = RunConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.config_hash() == config.config_hash()

    def test_hash_stable_across_process_restarts(self):
        """The digest must not depend on interpreter state: a fresh process
        with a different PYTHONHASHSEED computes the same hash."""
        config = RunConfig(
            "shfl-bw",
            "A100",
            0.75,
            model="transformer",
            kernel_kwargs=(("vector_size", 64),),
        )
        code = (
            "from repro.eval.runner import RunConfig\n"
            "c = RunConfig('shfl-bw', 'A100', 0.75, model='transformer',"
            " kernel_kwargs=(('vector_size', 64),))\n"
            "print(c.config_hash())"
        )
        for hashseed in ("0", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": hashseed},
                capture_output=True,
                text=True,
                check=True,
            )
            assert out.stdout.strip() == config.config_hash()

    def test_salt_changes_the_key(self):
        config = RunConfig("dense", "V100", 0.0, model="transformer")
        assert config.config_hash(salt="timing-v1") != config.config_hash(
            salt="timing-v2"
        )

    def test_payload_salt_key_is_rejected(self):
        """A payload carrying its own top-level 'salt' key would silently
        override the MODEL_VERSION salt and survive version bumps."""
        with pytest.raises(ValueError, match="salt"):
            canonical_config_hash({"salt": "sneaky", "kernel": "dense"})
        # Nested dicts are free to use the name; only the top level collides
        # with the versioning salt.
        nested = canonical_config_hash({"params": {"salt": "fine"}})
        assert nested == canonical_config_hash({"params": {"salt": "fine"}})

    def test_label_is_cosmetic(self):
        a = RunConfig("dense", "V100", 0.0, model="transformer", label="x")
        b = RunConfig("dense", "V100", 0.0, model="transformer", label="y")
        assert a == b
        assert a.config_hash() == b.config_hash()

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig("dense", "V100", 0.0)  # neither model nor gemm
        with pytest.raises(ValueError):
            RunConfig("dense", "V100", 0.0, model="transformer", gemm=(1, 1, 1))
        with pytest.raises(ValueError):
            RunConfig("dense", "V100", 1.0, model="transformer")  # sparsity = 1


class TestSweepSpec:
    def test_expand_is_deterministic(self):
        spec = small_spec()
        assert spec.expand() == spec.expand()

    def test_expand_includes_dense_baseline_per_cell(self):
        spec = headline_spec()
        configs = spec.expand()
        dense = [c for c in configs if c.kernel == "dense"]
        assert len(dense) == len(spec.gpus)
        assert all(c.sparsity == 0.0 for c in dense)

    def test_per_kernel_sparsity_override(self):
        spec = figure1_spec(densities=(0.1, 0.5))
        configs = spec.expand()
        cc_dense = [c for c in configs if c.kernel == "dense-cudacore"]
        assert [c.sparsity for c in cc_dense] == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(kernels=(), gpus=("V100",), sparsities=(0.5,), gemm=(8, 8, 8))
        with pytest.raises(ValueError):
            SweepSpec(
                kernels=(KernelSpec("dense"),),
                gpus=("V100",),
                sparsities=(0.5,),
                models=("transformer",),
                gemm=(8, 8, 8),
            )


class TestExecuteConfig:
    def test_grid_setup_errors_raise(self):
        """Spec mistakes (unknown model / kernel) must raise, not silently
        read as 'not-applicable' cells."""
        with pytest.raises(ValueError):
            execute_config(RunConfig("dense", "V100", 0.0, model="resnet-50x"))
        with pytest.raises(KeyError):
            execute_config(RunConfig("no-such-kernel", "V100", 0.0, model="gnmt"))

    def test_not_applicable_is_data_not_exception(self):
        record = execute_config(
            RunConfig("cusparselt", "V100", 0.75, model="transformer")
        )
        assert record.status == "not-applicable"
        assert record.time_s is None
        assert record.detail

    def test_unsupported_arch_is_not_applicable(self):
        record = execute_config(RunConfig("tilewise", "T4", 0.75, model="transformer"))
        assert record.status == "not-applicable"
        assert "V100" in record.detail

    def test_gemm_cell_reports_bound(self):
        record = execute_config(
            RunConfig("shfl-bw", "V100", 0.75, gemm=(256, 64, 256),
                      kernel_kwargs=(("vector_size", 32),))
        )
        assert record.ok
        assert record.time_s > 0
        assert record.bound in ("compute", "memory", "meta")


class TestExecutors:
    def test_serial_and_parallel_records_identical(self):
        configs = small_spec().expand()
        serial = serial_executor(configs)
        parallel = process_executor(configs, jobs=2)
        assert parallel == serial  # same floats, same order, same configs

    def test_runner_with_injected_serial_matches_process_pool(self):
        spec = small_spec()
        injected = SweepRunner(executor=serial_executor).run(spec)
        pooled = SweepRunner(jobs=2).run(spec)
        assert injected.records == pooled.records

    def test_jobs_one_falls_back_to_serial(self):
        configs = small_spec().expand()
        assert process_executor(configs, jobs=1) == serial_executor(configs)


class TestBatchedExecutor:
    """The batched fast path must be indistinguishable from the scalar loop:
    same records, same floats, same not-applicable details — on every grid
    the evaluation actually runs plus randomly composed ones."""

    @pytest.mark.parametrize(
        "spec_factory", [figure1_spec, figure6_spec, headline_spec]
    )
    def test_paper_grids_bit_identical(self, spec_factory):
        configs = spec_factory().expand()
        assert batched_executor(configs) == serial_executor(configs)

    @settings(max_examples=25, deadline=None)
    @given(
        kernels=st.lists(
            st.sampled_from(
                [
                    ("dense", ()),
                    ("dense-cudacore", ()),
                    ("sputnik", ()),
                    ("cusparse-csr", ()),
                    ("cusparselt", ()),
                    ("tilewise", ()),
                    ("shfl-bw", (("vector_size", 32),)),
                    ("vector-wise", (("vector_size", 64),)),
                    ("cusparse-bsr", (("block_size", 32),)),
                ]
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        gpus=st.lists(
            st.sampled_from(("V100", "T4", "A100")), min_size=1, max_size=3, unique=True
        ),
        sparsities=st.lists(
            st.sampled_from((0.0, 0.25, 0.5, 0.75, 0.9)),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        workload=st.one_of(
            st.sampled_from(("transformer", "gnmt", "resnet50")).map(
                lambda model: {"models": (model,)}
            ),
            st.tuples(
                st.integers(1, 64).map(lambda i: i * 32),
                st.integers(1, 2048),
                st.integers(1, 64).map(lambda i: i * 32),
            ).map(lambda gemm: {"gemm": gemm}),
        ),
    )
    def test_random_specs_bit_identical(self, kernels, gpus, sparsities, workload):
        spec = SweepSpec(
            kernels=tuple(KernelSpec(name, kwargs=kwargs) for name, kwargs in kernels),
            gpus=tuple(gpus),
            sparsities=tuple(sparsities),
            **workload,
        )
        configs = spec.expand()
        assert batched_executor(configs) == serial_executor(configs)

    def test_batched_is_the_default_executor(self):
        assert SweepRunner()._executor is batched_executor

    def test_grid_setup_errors_still_raise(self):
        config = RunConfig(kernel="no-such-kernel", gpu="V100", sparsity=0.5,
                           model="transformer")
        with pytest.raises(KeyError):
            batched_executor([config])
        config = RunConfig(kernel="dense", gpu="no-such-gpu", sparsity=0.5,
                           model="transformer")
        with pytest.raises(KeyError):
            batched_executor([config])

    def test_ragged_shape_falls_back_to_scalar_records(self):
        """A grid whose shapes a vector kernel rejects per cell (M % V != 0)
        must produce the scalar path's not-applicable records."""
        spec = SweepSpec(
            kernels=(KernelSpec("vector-wise", kwargs=(("vector_size", 64),)),),
            gpus=("V100",),
            sparsities=(0.5,),
            gemm=(100, 64, 256),
        )
        configs = spec.expand()
        assert batched_executor(configs) == serial_executor(configs)


class TestResultCache:
    def test_hit_miss_accounting(self, tmp_path):
        spec = small_spec()
        runner = SweepRunner(cache_dir=tmp_path)
        cold = runner.run(spec)
        n_unique = len({c.config_hash() for c in spec.expand()})
        assert cold.cache_hits == 0
        assert cold.cache_misses == n_unique
        warm = runner.run(spec)
        assert warm.cache_hits == n_unique
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert warm.records == cold.records
        assert runner.stats.hits == n_unique
        assert runner.stats.misses == n_unique

    def test_cache_survives_restart(self, tmp_path):
        spec = small_spec()
        cold = SweepRunner(cache_dir=tmp_path).run(spec)
        # The default substrate is the sharded blob store: one atomic
        # canonical-JSON file per cell under two-hex-char fan-out dirs.
        root = blob_root_for(tmp_path / CACHE_FILENAME)
        assert root.is_dir()
        blobs = sorted(root.glob("*/*.json"))
        assert len(blobs) == len({c.config_hash() for c in spec.expand()})
        assert all(b.parent.name == b.name[:2] for b in blobs)
        # A brand-new runner (fresh process in real life) reads the same store.
        warm = SweepRunner(cache_dir=tmp_path).run(spec)
        assert warm.hit_rate == 1.0
        assert warm.records == cold.records

    def test_salt_invalidates(self, tmp_path):
        spec = small_spec()
        SweepRunner(cache_dir=tmp_path, salt="timing-v1").run(spec)
        bumped = SweepRunner(cache_dir=tmp_path, salt="timing-v2").run(spec)
        assert bumped.cache_hits == 0

    def test_corrupt_legacy_file_reads_as_cold_and_is_preserved(self, tmp_path):
        """A malformed legacy cache file must read as cold — and its bytes
        must survive as a .corrupt-<digest> sidecar instead of being
        clobbered by the next flush."""
        legacy = tmp_path / CACHE_FILENAME
        legacy.write_text("{not json")
        spec = small_spec()
        with pytest.warns(CorruptCacheWarning, match="preserved"):
            result = SweepRunner(cache_dir=tmp_path).run(spec)
        assert result.cache_hits == 0
        assert all(r.ok or r.detail for r in result.records)
        (sidecar,) = tmp_path.glob(CACHE_FILENAME + ".corrupt-*")
        assert sidecar.read_text() == "{not json"

    def test_malformed_cache_entry_reads_as_miss(self, tmp_path):
        """A hand-edited blob (unparseable file or broken entry payload)
        must not crash the sweep — it recomputes that cell."""
        spec = small_spec()
        cold = SweepRunner(cache_dir=tmp_path).run(spec)
        root = blob_root_for(tmp_path / CACHE_FILENAME)
        blobs = sorted(root.glob("*/*.json"))
        blobs[0].write_text("oops not json")
        envelope = json.loads(blobs[1].read_text())
        envelope["entry"] = {"config": {}}
        blobs[1].write_text(json.dumps(envelope))
        with pytest.warns(CorruptCacheWarning):
            warm = SweepRunner(cache_dir=tmp_path).run(spec)
        assert warm.cache_misses == 2
        assert warm.records == cold.records
        # The unparseable blob was quarantined next to its shard.
        assert list(root.glob("*/*.corrupt-*"))

    def test_json_backend_keeps_the_legacy_single_file_layout(self, tmp_path):
        spec = small_spec()
        cold = SweepRunner(cache_dir=tmp_path, store="json").run(spec)
        assert (tmp_path / CACHE_FILENAME).exists()
        assert not blob_root_for(tmp_path / CACHE_FILENAME).exists()
        warm = SweepRunner(cache_dir=tmp_path, store="json").run(spec)
        assert warm.hit_rate == 1.0
        assert warm.records == cold.records

    def test_blob_store_reads_through_and_migrates_a_legacy_cache(self, tmp_path):
        """A cache dir written by the legacy single-file store stays warm
        under the blob store — hits are served from the legacy file and
        written back as blobs, so even an all-hits run migrates."""
        spec = small_spec()
        cold = SweepRunner(cache_dir=tmp_path, store="json").run(spec)
        warm = SweepRunner(cache_dir=tmp_path).run(spec)
        assert warm.hit_rate == 1.0
        assert warm.records == cold.records
        root = blob_root_for(tmp_path / CACHE_FILENAME)
        assert len(list(root.glob("*/*.json"))) == warm.cache_hits

    def test_cached_record_rebinds_requesting_label(self, tmp_path):
        config = RunConfig("dense", "V100", 0.0, model="transformer", label="first")
        cache = ResultCache(tmp_path)
        cache.put(config, execute_config(config))
        cache.flush()
        relabelled = RunConfig(
            "dense", "V100", 0.0, model="transformer", label="second"
        )
        restored = ResultCache(tmp_path).get(relabelled)
        assert restored is not None
        assert restored.config.label == "second"

    def test_not_applicable_results_are_cached_too(self, tmp_path):
        spec = SweepSpec(
            kernels=(KernelSpec("cusparselt"),),
            gpus=("V100",),
            sparsities=(0.75,),
            models=("transformer",),
            dense_baseline=None,
        )
        cold = SweepRunner(cache_dir=tmp_path).run(spec)
        assert cold.records[0].status == "not-applicable"
        warm = SweepRunner(cache_dir=tmp_path).run(spec)
        assert warm.cache_hits == 1
        assert warm.records == cold.records


class TestDeduplication:
    def test_duplicate_cells_computed_once(self, tmp_path):
        spec = SweepSpec(
            kernels=(
                KernelSpec("sputnik", label="one"),
                KernelSpec("sputnik", label="two"),
            ),
            gpus=("V100",),
            sparsities=(0.5,),
            gemm=(128, 32, 128),
            dense_baseline=None,
        )
        result = SweepRunner(cache_dir=tmp_path).run(spec)
        assert len(result.records) == 2
        assert result.cache_misses == 1  # one unique cell
        assert result.records[0].config.label == "one"
        assert result.records[1].config.label == "two"
        assert result.records[0].time_s == result.records[1].time_s


class TestRecordExport:
    def test_record_dict_round_trip(self):
        record = execute_config(
            RunConfig("shfl-bw", "V100", 0.75, model="transformer",
                      kernel_kwargs=(("vector_size", 64),), label="Shfl-BW,V=64")
        )
        data = record.to_dict()
        assert data["label"] == "Shfl-BW,V=64"
        assert data["status"] == "ok"
        assert data["kernel_kwargs"] == {"vector_size": 64}
        assert RunConfig.from_dict(data) == record.config
