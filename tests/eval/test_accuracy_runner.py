"""Tests for the accuracy sweep running through the cell-task machinery:
hashable cells, serial == parallel records, persistent caching and
collation."""

from __future__ import annotations

import json

import pytest

from repro.eval.accuracy import (
    ACCURACY_CACHE_FILENAME,
    ACCURACY_TASK,
    AccuracyCell,
    AccuracyConfig,
    AccuracyRecord,
    PatternSpec,
    accuracy_cells,
    collate_accuracy,
    evaluate_model_accuracy,
    table1_sweep,
)
from repro.eval.runner import CACHE_FILENAME, SweepRunner
from repro.eval.store import blob_root_for

TINY = AccuracyConfig(quick=True, tiny=True)
SPECS = [
    PatternSpec("VW, V=32", "vectorwise", 32),
    PatternSpec("Shfl-BW, V=32", "shflbw", 32),
]


class TestAccuracyCell:
    def test_label_is_cosmetic(self):
        a = AccuracyCell("transformer", "shflbw", 0.8, vector_size=8, label="A")
        b = AccuracyCell("transformer", "shflbw", 0.8, vector_size=8, label="B")
        assert a == b
        assert a.config_hash() == b.config_hash()

    def test_hash_covers_training_scale(self):
        base = AccuracyCell("transformer", "shflbw", 0.8, vector_size=8)
        assert base.config_hash() != AccuracyCell(
            "transformer", "shflbw", 0.8, vector_size=8, tiny=True
        ).config_hash()
        assert base.config_hash() != AccuracyCell(
            "transformer", "shflbw", 0.8, vector_size=8, seed=1
        ).config_hash()
        assert base.config_hash() != AccuracyCell(
            "transformer", "shflbw", 0.8, vector_size=16
        ).config_hash()

    def test_round_trips_through_dict(self):
        cell = AccuracyCell("gnmt", "vectorwise", 0.9, vector_size=8, tiny=True, seed=3)
        assert AccuracyCell.from_dict(cell.to_dict()) == cell

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            AccuracyCell("gnmt", "vectorwise", 1.0)

    def test_grid_expansion_is_model_major(self):
        cells = accuracy_cells(("a", "b"), (0.8, 0.9), SPECS, TINY)
        assert [c.model for c in cells[:4]] == ["a"] * 4
        assert len(cells) == 8
        assert cells[0].sparsity == 0.8 and cells[1].sparsity == 0.9
        # Scale flags propagate from the config.
        assert all(c.tiny for c in cells)


class TestExecution:
    @pytest.fixture(scope="class")
    def serial_records(self):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS, TINY)
        return SweepRunner().run_cells(cells, ACCURACY_TASK).records

    def test_records_are_ok(self, serial_records):
        assert [r.status for r in serial_records] == ["ok", "ok"]
        assert all(r.metric_name == "BLEU" for r in serial_records)
        # Both cells fine-tune from the same dense proxy.
        assert len({r.dense_metric for r in serial_records}) == 1

    def test_parallel_records_identical(self, serial_records):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS, TINY)
        parallel = SweepRunner(jobs=2).run_cells(cells, ACCURACY_TASK).records
        assert parallel == serial_records

    def test_accuracy_task_uses_contiguous_chunking(self):
        # Contiguous chunks keep each worker on as few models as possible so
        # the per-process dense-proxy memo is not retrained jobs x models
        # times; the chunking itself must still cover every cell in order.
        from repro.eval.runner import contiguous_process_map

        assert ACCURACY_TASK.chunking == "contiguous"
        # `list` is a picklable identity executor: records == configs, so
        # chunking + reassembly must reproduce the input order exactly.
        out = contiguous_process_map(list, list(range(7)), jobs=3)
        assert out == list(range(7))

    def test_buffer_snapshot_covers_module_rngs(self):
        # Modules holding a random generator (dropout) must have its state
        # restored alongside the batch-norm buffers, or cells would consume
        # each other's rng draws once a proxy enables dropout.
        import numpy as np

        from repro.eval.accuracy import _buffer_state, _restore_buffers
        from repro.models.transformer import TransformerConfig, TransformerProxy

        model = TransformerProxy(TransformerConfig(vocab_size=50, seed=0))
        rng_modules = [
            m for m in model.modules() if isinstance(getattr(m, "_rng", None), np.random.Generator)
        ]
        assert rng_modules, "transformer proxy should hold attention rngs"
        snapshot = _buffer_state(model)
        before = rng_modules[0]._rng.bit_generator.state
        rng_modules[0]._rng.random(100)  # advance the generator
        assert rng_modules[0]._rng.bit_generator.state != before
        _restore_buffers(snapshot)
        assert rng_modules[0]._rng.bit_generator.state == before

    def test_cache_round_trip(self, serial_records, tmp_path):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS, TINY)
        runner = SweepRunner(cache_dir=tmp_path)
        cold = runner.run_cells(cells, ACCURACY_TASK)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert cold.records == serial_records
        # A fresh runner over the same directory serves everything warm.
        warm = SweepRunner(cache_dir=tmp_path).run_cells(cells, ACCURACY_TASK)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.records == serial_records

    def test_accuracy_cache_store_is_separate(self, tmp_path):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS[:1], TINY)
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run_cells(cells, ACCURACY_TASK)
        root = blob_root_for(tmp_path / ACCURACY_CACHE_FILENAME)
        assert root.is_dir()
        assert not blob_root_for(tmp_path / CACHE_FILENAME).exists()
        (blob,) = root.glob("*/*.json")
        entry = json.loads(blob.read_text())["entry"]
        assert entry["status"] == "ok"
        assert entry["config"]["model"] == "transformer"

    def test_cells_are_order_independent(self):
        # Fine-tuning mutates batch-norm running stats; without restoring
        # them alongside the dense weights, a cell's metric depended on
        # which cells ran before it in the same process (and the ResNet
        # rows of a serial sweep disagreed with a parallel one).
        cells = accuracy_cells(("resnet50",), (0.8,), SPECS, TINY)
        forward = ACCURACY_TASK.execute(cells)
        backward = ACCURACY_TASK.execute(list(reversed(cells)))
        assert forward == list(reversed(backward))

    def test_duplicate_cells_computed_once(self, serial_records):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS[:1], TINY)
        runner = SweepRunner()
        result = runner.run_cells(cells + cells, ACCURACY_TASK)
        assert runner.stats.misses == 1
        assert result.records[0] == result.records[1]


class TestCollation:
    def test_collate_groups_by_model_and_label(self):
        cells = accuracy_cells(("transformer",), (0.8,), SPECS, TINY)
        records = [
            AccuracyRecord(c, "ok", metric=0.5 + i, metric_name="BLEU", dense_metric=1.0)
            for i, c in enumerate(cells)
        ]
        out = collate_accuracy(records)
        result = out["transformer"]
        assert result.metric_name == "BLEU"
        assert result.metric("VW, V=32", 0.8) == 0.5
        assert result.metric("Shfl-BW, V=32", 0.8) == 1.5

    def test_not_applicable_reads_as_missing_metric(self):
        cell = AccuracyCell("transformer", "shflbw", 0.8, vector_size=8, label="X")
        records = [
            AccuracyRecord(
                cell, "not-applicable", metric_name="BLEU", dense_metric=1.0, detail="nope"
            )
        ]
        result = collate_accuracy(records)["transformer"]
        assert result.metric("X", 0.8) is None
        assert result.dense_metric == 1.0


class TestAccuracyExperiments:
    def test_run_table1_report_and_records(self, tmp_path):
        from repro.eval.experiments import run_experiment
        from repro.eval.runner import SweepRunner

        runner = SweepRunner(cache_dir=tmp_path)
        report = run_experiment(
            "table1",
            tiny=True,
            models=("transformer",),
            sparsities=(0.8,),
            specs=SPECS,
            runner=runner,
        )
        text = report.to_text()
        assert "Table 1" in text and "transformer" in text
        assert len(report.records) == len(SPECS)
        assert {r["status"] for r in report.records} == {"ok"}
        assert runner.stats.misses == len(SPECS)

    def test_run_table1_rejects_unknown_kwargs(self):
        from repro.eval.experiments import run_table1

        with pytest.raises(TypeError, match="unexpected"):
            run_table1(tiny=True, nonsense=1)

    def test_run_figure2_tiny(self):
        from repro.eval.experiments import run_experiment

        report = run_experiment(
            "figure2",
            tiny=True,
            sparsities=(0.8,),
            specs=[PatternSpec("Shfl-BW, V=32", "shflbw", 32)],
        )
        text = report.to_text()
        assert "Figure 2" in text and "Shfl-BW" in text
        (table,) = report.tables
        assert len(table.rows) == 1


class TestProtocolAPI:
    def test_table1_sweep_through_runner_matches_direct(self, tmp_path):
        direct = table1_sweep(("transformer",), (0.8,), TINY, SPECS)
        runner = SweepRunner(cache_dir=tmp_path)
        cached = table1_sweep(("transformer",), (0.8,), TINY, SPECS, runner=runner)
        assert cached["transformer"].results == direct["transformer"].results
        assert runner.stats.misses == 2
        # Warm re-run: identical numbers, all hits.
        warm = table1_sweep(("transformer",), (0.8,), TINY, SPECS, runner=runner)
        assert warm["transformer"].results == direct["transformer"].results
        assert runner.stats.hits == 2

    def test_evaluate_model_accuracy_keeps_seed_contract(self):
        result = evaluate_model_accuracy("transformer", (0.8,), SPECS, TINY)
        assert result.metric_name == "BLEU"
        assert len(result.results) == len(SPECS)
        assert all(0.0 <= v <= 100.0 for v in result.results.values())
