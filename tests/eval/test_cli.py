"""Smoke tests for the ``python -m repro.eval`` command line: listing,
markdown, the sweep-runner flags (--jobs / --cache-dir / --json / --csv) and
the unknown-experiment error path."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.eval.__main__ import main


class TestListing:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure1", "figure6", "headline", "table1"):
            assert name in out

    def test_no_argument_lists(self, capsys):
        assert main([]) == 0
        assert "analysis" in capsys.readouterr().out

    def test_markdown(self, capsys):
        assert main(["analysis", "--markdown"]) == 0
        assert "##" in capsys.readouterr().out


class TestUnknownExperiment:
    def test_exit_code_and_message(self, capsys):
        assert main(["figure99"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment 'figure99'" in captured.err
        assert "figure6" in captured.err  # the available list is shown
        assert captured.out == ""  # nothing half-rendered on stdout


class TestSweepFlags:
    def test_headline_json_and_csv_export(self, tmp_path, capsys):
        json_out = tmp_path / "out.json"
        csv_out = tmp_path / "out.csv"
        assert (
            main(
                [
                    "headline",
                    "--jobs",
                    "1",
                    "--json",
                    str(json_out),
                    "--csv",
                    str(csv_out),
                ]
            )
            == 0
        )
        payload = json.loads(json_out.read_text())
        assert payload["title"].startswith("Section 6.2")
        assert payload["records"], "sweep records must be exported"
        statuses = {r["status"] for r in payload["records"]}
        assert statuses == {"ok"}
        rows = list(csv.DictReader(io.StringIO(csv_out.read_text())))
        assert len(rows) == len(payload["records"])
        assert {"kernel", "gpu", "sparsity", "status", "time_s"} <= set(rows[0])
        out = capsys.readouterr().out
        assert "wrote JSON report" in out
        assert "wrote CSV records" in out

    def test_parallel_json_is_byte_identical_to_serial(self, tmp_path):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        args = ["figure1", "--json"]
        assert main(args + [str(serial_out)]) == 0
        assert main(args + [str(parallel_out), "--jobs", "2"]) == 0
        assert serial_out.read_bytes() == parallel_out.read_bytes()

    def test_cache_dir_reports_hits_on_second_run(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["headline", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0% hit rate" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "100% hit rate" in second
        assert "0 misses" in second

    def test_runner_flags_warn_for_non_sweep_experiments(self, capsys):
        assert main(["analysis", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "--jobs/--cache-dir only apply" in captured.err

    def test_scale_flags_warn_for_non_accuracy_experiments(self, capsys):
        assert main(["analysis", "--tiny"]) == 0
        captured = capsys.readouterr()
        assert "--full/--tiny only apply" in captured.err
        assert "table1" in captured.err

    def test_full_and_tiny_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--full", "--tiny"])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err

    def test_pattern_search_warns_on_tiny(self, capsys):
        # pattern-search accepts --full but has no tiny scale; the flag must
        # warn rather than be silently dropped.  A bogus extra kwarg-free
        # run would take minutes, so only the argument handling is checked
        # by pointing the grid at nothing via a monkeypatched experiment.
        import repro.eval.__main__ as cli

        seen = {}

        def fake_run(name, **kwargs):
            seen.update(kwargs, experiment=name)
            from repro.eval.report import Report

            return Report("stub")

        original = cli.run_experiment
        cli.run_experiment = fake_run
        try:
            assert main(["pattern-search", "--tiny"]) == 0
        finally:
            cli.run_experiment = original
        assert seen["experiment"] == "pattern-search"
        assert seen["quick"] is True and "tiny" not in seen
        assert "--tiny ignored" in capsys.readouterr().err


class TestCacheCli:
    """The maintenance surface: python -m repro.eval cache {stats,gc,migrate}."""

    @staticmethod
    def seed(cache_dir):
        from repro.eval.runner import MODEL_VERSION
        from repro.eval.store import BlobStore

        cache_dir.mkdir(parents=True, exist_ok=True)
        current = BlobStore(cache_dir / "sweep-cache.blobs", salt=MODEL_VERSION)
        current.put("ab" + "0" * 14, {"value": 1})
        current.flush()
        stale = BlobStore(cache_dir / "sweep-cache.blobs", salt="timing-v0")
        stale.put("cd" + "1" * 14, {"value": 2})
        stale.flush()
        (cache_dir / "accuracy-cache.json").write_text(
            json.dumps({"ef" + "2" * 14: {"value": 3}})
        )

    def test_missing_cache_dir_is_an_error(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_stats_reports_every_family(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep-cache: 2 blobs" in out
        assert "accuracy-cache: 0 blobs" in out
        assert "legacy entries: 1" in out
        assert out.strip().endswith("1 legacy entries")

    def test_stats_json_is_structured(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        families = {f["name"]: f for f in json.loads(capsys.readouterr().out)}
        assert families["sweep-cache"]["blobs"] == 2
        assert set(families["sweep-cache"]["salts"]) == {"timing-v0", "timing-v2"}
        assert families["accuracy-cache"]["legacy_entries"] == 1

    def test_migrate_then_stats_shows_no_legacy_left(self, tmp_path, capsys):
        self.seed(tmp_path)
        args = ["cache", "migrate", "--cache-dir", str(tmp_path), "--remove-legacy"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "accuracy-cache: migrated 1 entries" in out
        assert "legacy file removed" in out
        assert not (tmp_path / "accuracy-cache.json").exists()
        assert main(args) == 0
        assert "no legacy stores to migrate" in capsys.readouterr().out

    def test_gc_defaults_to_current_model_version(self, tmp_path, capsys):
        from repro.eval.runner import MODEL_VERSION
        from repro.eval.store import BlobStore

        self.seed(tmp_path)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "sweep-cache: would remove 1 of 2 blobs" in out
        assert f"keep salts: {MODEL_VERSION}" in out
        store = BlobStore(tmp_path / "sweep-cache.blobs")
        assert len(store) == 2  # dry run removed nothing
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "sweep-cache: removed 1 of 2 blobs" in capsys.readouterr().out
        assert store.keys() == ["ab" + "0" * 14]

    def test_gc_keep_salt_is_repeatable(self, tmp_path, capsys):
        from repro.eval.runner import MODEL_VERSION
        from repro.eval.store import BlobStore

        self.seed(tmp_path)
        args = [
            "cache", "gc", "--cache-dir", str(tmp_path),
            "--keep-salt", MODEL_VERSION, "--keep-salt", "timing-v0",
        ]
        assert main(args) == 0
        assert "removed 0 of 2" in capsys.readouterr().out
        assert len(BlobStore(tmp_path / "sweep-cache.blobs")) == 2


class TestTuneFlags:
    def test_autotune_experiment_smoke(self, capsys):
        assert main(["autotune"]) == 0
        out = capsys.readouterr().out
        assert "Autotuned kernel selection" in out
        assert "per-layer assignments" in out

    def test_plan_dir_reports_hits_on_second_run(self, tmp_path, capsys):
        plan_dir = tmp_path / "plans"
        args = ["autotune", "--plan-dir", str(plan_dir)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "plan cache: 0 hits" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second
        assert (plan_dir / "tuning-plans.blobs").is_dir()

    def test_tune_flag_augments_headline(self, capsys):
        assert main(["headline", "--tune"]) == 0
        assert "autotuned" in capsys.readouterr().out

    def test_plan_dir_implies_tune(self, tmp_path, capsys):
        assert main(["headline", "--plan-dir", str(tmp_path / "p")]) == 0
        out = capsys.readouterr().out
        assert "autotuned" in out
        assert "plan cache:" in out

    def test_tune_flags_warn_for_untunable_experiments(self, capsys):
        assert main(["analysis", "--tune"]) == 0
        captured = capsys.readouterr()
        assert "--tune/--plan-dir/--measured only apply" in captured.err


class TestReportExports:
    def test_json_is_deterministic(self, capsys):
        from repro.eval.experiments import run_experiment

        a = run_experiment("headline").to_json()
        b = run_experiment("headline").to_json()
        assert a == b

    def test_csv_falls_back_to_tables(self):
        from repro.eval.report import Report, Table

        report = Report("t").add_table(
            Table("numbers", ["a", "b"]).add_row(1, 2).add_row(3, 4)
        )
        rows = report.to_csv().splitlines()
        assert rows[0] == "table,a,b"
        assert rows[1] == "numbers,1,2"


class TestFigure1Regions:
    """Satellite: the region notes are exposed as structured data and the
    three boundaries behave as the paper describes."""

    @pytest.fixture(scope="class")
    def regions(self):
        from repro.eval.experiments import run_experiment

        return run_experiment("figure1").metadata["regions"]

    def test_three_regions_with_paper_thresholds(self, regions):
        assert set(regions) == {"A", "B", "C"}
        assert regions["A"]["paper_threshold_sparsity"] == 0.65
        assert regions["B"]["paper_threshold_sparsity"] == 0.95
        assert regions["C"]["paper_threshold_sparsity"] == 0.90

    def test_region_ordering(self, regions):
        """Region B needs strictly more sparsity than region A (a tensor-core
        dense baseline is harder to beat), and region C — ours — starts well
        below both: the paper's central claim."""
        a = regions["A"]["threshold_sparsity"]
        b = regions["B"]["threshold_sparsity"]
        c = regions["C"]["threshold_sparsity"]
        assert a is not None and b is not None and c is not None
        assert c < a < b

    def test_region_c_well_below_paper_bound(self, regions):
        assert regions["C"]["threshold_sparsity"] < 0.90

    def test_boundaries_lie_on_the_swept_grid(self, regions):
        from repro.eval.speedup import FIGURE1_DENSITIES

        grid = {1 - d for d in FIGURE1_DENSITIES}
        for region in regions.values():
            assert region["threshold_sparsity"] in grid
