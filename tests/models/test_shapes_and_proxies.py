"""Tests for the workload shape definitions and the proxy models."""

import numpy as np
import pytest

from repro.models.gnmt import GNMTConfig, GNMTProxy
from repro.models.resnet import ResNetConfig, ResNetProxy
from repro.models.shapes import (
    MODEL_NAMES,
    gnmt_layers,
    model_layers,
    resnet50_layers,
    transformer_layers,
)
from repro.models.transformer import TransformerConfig, TransformerProxy
from repro.nn.data import SyntheticClassificationTask, SyntheticTranslationTask


class TestLayerShapes:
    def test_transformer_layer_shapes(self):
        layers = transformer_layers(tokens=256)
        by_name = {layer.name: layer for layer in layers}
        assert by_name["ffn1"].gemm.m == 4096
        assert by_name["ffn1"].gemm.k == 1024
        assert by_name["attn_qkv"].gemm.m == 3072
        assert all(layer.gemm.n == 256 for layer in layers)

    def test_gnmt_layer_shapes(self):
        layers = gnmt_layers(batch=128)
        by_name = {layer.name: layer for layer in layers}
        assert by_name["lstm_ih"].gemm.m == 4096
        assert by_name["proj"].gemm.m == 32000

    def test_resnet_layers_are_convs(self):
        layers = resnet50_layers(batch=8)
        assert all(layer.kind == "conv" for layer in layers)
        # conv3_3x3: 128 output channels, 128*9 reduction.
        by_name = {layer.name: layer for layer in layers}
        assert by_name["conv3_3x3"].gemm.m == 128
        assert by_name["conv3_3x3"].gemm.k == 128 * 9

    def test_rows_divisible_by_paper_vector_sizes(self):
        # The paper prunes these layers at V in {32, 64}; the shapes must
        # admit the pattern.
        for model in MODEL_NAMES:
            for layer in model_layers(model):
                assert layer.gemm.m % 32 == 0
                assert layer.gemm.m % 64 == 0

    def test_model_layers_dispatch(self):
        assert model_layers("transformer")
        assert model_layers("RESNET50")
        with pytest.raises(ValueError):
            model_layers("bert")

    def test_weighted_flops(self):
        layer = transformer_layers()[0]
        assert layer.weighted_flops == layer.gemm.flops * layer.count

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            transformer_layers(tokens=0)
        with pytest.raises(ValueError):
            gnmt_layers(batch=0)


class TestTransformerProxy:
    def test_forward_shape(self):
        model = TransformerProxy(TransformerConfig(vocab_size=8, d_model=32, d_ff=64, num_layers=1, num_heads=2))
        logits = model.forward(np.zeros((3, 6), dtype=int))
        assert logits.shape == (3, 6, 8)

    def test_prunable_layers_cover_attention_and_ffn(self):
        model = TransformerProxy(TransformerConfig(vocab_size=8, d_model=32, d_ff=64, num_layers=1, num_heads=2))
        names = [name for name, _ in model.prunable_parameters()]
        assert any("ffn1" in n for n in names)
        assert any("q_proj" in n for n in names)
        assert not any("embedding" in n for n in names)

    def test_sequence_too_long_rejected(self):
        model = TransformerProxy(TransformerConfig(vocab_size=8, max_len=4))
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 10), dtype=int))

    def test_evaluate_returns_bleu(self):
        task = SyntheticTranslationTask(vocab_size=8, seq_len=6, num_valid=16)
        model = TransformerProxy(TransformerConfig(vocab_size=8, d_model=32, d_ff=64, num_layers=1, num_heads=2))
        score = model.evaluate(task.valid_split())
        assert 0.0 <= score <= 100.0


class TestGNMTProxy:
    def test_forward_shape(self):
        model = GNMTProxy(GNMTConfig(vocab_size=8, embed_dim=16, hidden_size=32, num_layers=2))
        logits = model.forward(np.zeros((2, 5), dtype=int))
        assert logits.shape == (2, 5, 8)

    def test_prunable_layers_are_lstm_gates_and_projection(self):
        model = GNMTProxy(GNMTConfig(vocab_size=8, embed_dim=16, hidden_size=32, num_layers=1))
        names = [name for name, _ in model.prunable_parameters()]
        assert any("weight_ih" in n for n in names)
        assert any("weight_hh" in n for n in names)
        assert any("output" in n for n in names)


class TestResNetProxy:
    def test_forward_shape(self):
        model = ResNetProxy(ResNetConfig(width=16, num_blocks=1))
        logits = model.forward(np.zeros((2, 3, 8, 8)))
        assert logits.shape == (2, 10)

    def test_prunable_layers_are_conv_gemm_weights(self):
        model = ResNetProxy(ResNetConfig(width=16, num_blocks=1))
        shapes = [p.data.shape for _, p in model.prunable_parameters()]
        assert (16, 16 * 9) in shapes

    def test_evaluate_returns_percentage(self):
        task = SyntheticClassificationTask(num_train=16, num_valid=16)
        model = ResNetProxy(ResNetConfig(width=16, num_blocks=1))
        acc = model.evaluate(task.valid_split())
        assert 0.0 <= acc <= 100.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ResNetConfig(width=0)
