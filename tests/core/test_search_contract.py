"""Property tests for the Shfl-BW pattern-search contract.

Whatever the scores, the mask returned by :func:`search_shflbw_pattern` must
(1) satisfy the Shfl-BW structural constraint with the returned
``row_indices`` as its witness, (2) keep exactly
``kept_columns_per_group`` columns in every row group, and (3) be a pure
function of its inputs (deterministic for a fixed seed).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pattern import ShflBWPattern
from repro.core.pruning import search_shflbw_pattern

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def search_case(draw):
    v = draw(st.sampled_from([2, 3, 4, 8]))
    num_groups = draw(st.integers(min_value=1, max_value=4))
    k_dim = draw(st.integers(min_value=2, max_value=24))
    density = draw(st.floats(min_value=0.05, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    scores = np.abs(rng.normal(size=(v * num_groups, k_dim)))
    return scores, v, density, seed


@given(search_case())
@settings(**SETTINGS)
def test_mask_matches_pattern_with_witness(case):
    scores, v, density, seed = case
    result = search_shflbw_pattern(scores, density, v, seed=seed)
    pattern = ShflBWPattern(vector_size=v, density=density)
    assert pattern.matches(result.mask, result.row_indices)
    assert pattern.matches_permuted(result.mask[result.row_indices, :])


@given(search_case())
@settings(**SETTINGS)
def test_every_group_keeps_exact_column_count(case):
    scores, v, density, seed = case
    result = search_shflbw_pattern(scores, density, v, seed=seed)
    pattern = ShflBWPattern(vector_size=v, density=density)
    keep_cols = pattern.kept_columns_per_group(scores.shape[1])
    permuted = result.mask[result.row_indices, :]
    for g in range(scores.shape[0] // v):
        group = permuted[g * v : (g + 1) * v, :]
        # Every row of the group shares one support of exactly keep_cols
        # columns.
        support = group[0]
        assert int(support.sum()) == keep_cols
        assert np.all(group == support[None, :])
    # Achieved density is keep_cols worth of columns in every group.
    assert result.mask.sum() == keep_cols * scores.shape[0]


@given(search_case())
@settings(**SETTINGS)
def test_deterministic_for_fixed_seed(case):
    scores, v, density, seed = case
    a = search_shflbw_pattern(scores, density, v, seed=seed)
    b = search_shflbw_pattern(scores.copy(), density, v, seed=seed)
    np.testing.assert_array_equal(a.mask, b.mask)
    np.testing.assert_array_equal(a.row_indices, b.row_indices)
    assert a.groups == b.groups
    assert a.retained_score == b.retained_score


@given(search_case())
@settings(**SETTINGS)
def test_groups_partition_rows_and_witness_is_consistent(case):
    scores, v, density, seed = case
    result = search_shflbw_pattern(scores, density, v, seed=seed)
    rows = sorted(i for group in result.groups for i in group)
    assert rows == list(range(scores.shape[0]))
    assert all(len(group) == v for group in result.groups)
    # The witness permutation is the concatenation of the groups.
    flattened = [i for group in result.groups for i in group]
    np.testing.assert_array_equal(result.row_indices, flattened)
