"""Tests for the pattern definitions."""

import pytest

from repro.core.pattern import PatternKind, ShflBWPattern
from repro.core.pruning import prune_shflbw
from repro.pruning.patterns import UnstructuredPruner


class TestPatternKind:
    def test_parse_aliases(self):
        assert PatternKind.parse("Shfl-BW") is PatternKind.SHFLBW
        assert PatternKind.parse("bw") is PatternKind.BLOCKWISE
        assert PatternKind.parse("VW") is PatternKind.VECTORWISE
        assert PatternKind.parse("2in4") is PatternKind.BALANCED
        assert PatternKind.parse("random") is PatternKind.UNSTRUCTURED

    @pytest.mark.parametrize(
        ("spelling", "expected"),
        [
            # Every documented spelling of every pattern, with the
            # punctuation variants users actually type.  "2:4" used to raise
            # because the alias normalisation did not strip colons.
            ("dense", PatternKind.DENSE),
            ("unstructured", PatternKind.UNSTRUCTURED),
            ("Random", PatternKind.UNSTRUCTURED),
            ("block-wise", PatternKind.BLOCKWISE),
            ("block_wise", PatternKind.BLOCKWISE),
            ("BW", PatternKind.BLOCKWISE),
            ("vector wise", PatternKind.VECTORWISE),
            ("vw", PatternKind.VECTORWISE),
            ("shfl-bw", PatternKind.SHFLBW),
            ("Shuffled Block-Wise", PatternKind.SHFLBW),
            ("balanced", PatternKind.BALANCED),
            ("2:4", PatternKind.BALANCED),
            ("2in4", PatternKind.BALANCED),
            ("2-in-4", PatternKind.BALANCED),
            ("2 in 4", PatternKind.BALANCED),
            ("24", PatternKind.BALANCED),
        ],
    )
    def test_parse_all_alias_spellings(self, spelling, expected):
        assert PatternKind.parse(spelling) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            PatternKind.parse("diagonal")

    def test_tensor_core_usability(self):
        assert PatternKind.SHFLBW.uses_tensor_core
        assert PatternKind.BLOCKWISE.uses_tensor_core
        assert not PatternKind.UNSTRUCTURED.uses_tensor_core

    def test_needs_block_size(self):
        assert PatternKind.SHFLBW.needs_block_size
        assert not PatternKind.BALANCED.needs_block_size
        assert not PatternKind.DENSE.needs_block_size


class TestShflBWPattern:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShflBWPattern(vector_size=0, density=0.5)
        with pytest.raises(ValueError):
            ShflBWPattern(vector_size=32, density=0.0)

    def test_sparsity_density_complementary(self):
        pattern = ShflBWPattern(vector_size=32, density=0.25)
        assert pattern.sparsity == pytest.approx(0.75)

    def test_kept_columns_per_group(self):
        pattern = ShflBWPattern(vector_size=32, density=0.25)
        assert pattern.kept_columns_per_group(1024) == 256
        assert pattern.kept_columns_per_group(2) == 1  # never zero columns

    def test_validate_shape(self):
        pattern = ShflBWPattern(vector_size=32, density=0.25)
        pattern.validate_shape(64, 128)
        with pytest.raises(ValueError):
            pattern.validate_shape(65, 128)

    def test_matches_pruned_matrix(self, rng):
        weight = rng.normal(size=(64, 64))
        pruned, result = prune_shflbw(weight, sparsity=0.75, vector_size=16)
        pattern = ShflBWPattern(vector_size=16, density=0.25)
        assert pattern.matches(pruned, result.row_indices)
        assert pattern.matches(pruned)
        assert pattern.matches_permuted(pruned[result.row_indices, :])

    def test_rejects_unstructured_matrix(self, rng):
        weight = rng.normal(size=(64, 64))
        pruned = UnstructuredPruner().prune(weight, 0.75).weights
        assert not ShflBWPattern(vector_size=16, density=0.25).matches(pruned)

    def test_describe(self):
        label = ShflBWPattern(vector_size=32, density=0.25).describe()
        assert "32" in label and "75%" in label
