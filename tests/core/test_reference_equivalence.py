"""Bit-for-bit equivalence of the vectorized pattern-search engine against
the seed loop oracles in :mod:`repro.core.reference`.

Every test asserts *exact* equality — identical assignments, masks, groups
and permutations down to the last bit — across random shapes, densities,
vector sizes (including non-powers-of-two, which exercise the chunked
fallback distance path) and seeds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.kmeans import (
    _balanced_assignment,
    _pairwise_sq_dists,
    balanced_kmeans,
)
from repro.core.pruning import search_shflbw_pattern, vector_wise_mask
from repro.core.reference import (
    balanced_assignment_loop,
    balanced_kmeans_loop,
    group_rows_by_support_loop,
    search_shflbw_pattern_loop,
    vector_wise_mask_loop,
)
from repro.core.transforms import group_rows_by_support

SETTINGS = dict(max_examples=30, deadline=None)

# Vector sizes cover both distance paths: powers of two take the exact
# Gram-matrix fast path on binary points, the rest the chunked broadcast.
VECTOR_SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


@st.composite
def clustering_case(draw):
    """Random points (binary or float), centroids and a capacity."""
    v = draw(st.sampled_from(VECTOR_SIZES))
    num_groups = draw(st.integers(min_value=1, max_value=5))
    k_dim = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    binary = draw(st.booleans())
    rng = np.random.default_rng(seed)
    m = v * num_groups
    if binary:
        points = (rng.random((m, k_dim)) < rng.random()).astype(np.float64)
    else:
        points = rng.normal(size=(m, k_dim)) * (10.0 ** float(rng.integers(-3, 4)))
    # Centroids as either raw rows (the k-means++ case) or means of v rows
    # (the Lloyd-update case, dyadic on binary points).
    if draw(st.booleans()):
        centroids = points[rng.permutation(m)[:num_groups]].copy()
    else:
        centroids = np.stack(
            [points[rng.integers(0, m, size=v)].mean(axis=0) for _ in range(num_groups)]
        )
    return points, centroids, v


@st.composite
def scores_and_v(draw):
    """Random non-negative scores with a vector size dividing the rows."""
    v = draw(st.sampled_from(VECTOR_SIZES))
    num_groups = draw(st.integers(min_value=1, max_value=5))
    k_dim = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(size=(v * num_groups, k_dim))), v


class TestBalancedAssignment:
    @given(clustering_case())
    @settings(**SETTINGS)
    def test_bitwise_equal_to_loop(self, case):
        points, centroids, v = case
        expected = balanced_assignment_loop(points, centroids, v)
        actual = _balanced_assignment(points, centroids, v)
        np.testing.assert_array_equal(actual, expected)

    @given(clustering_case())
    @settings(**SETTINGS)
    def test_distances_bitwise_equal_to_broadcast(self, case):
        points, centroids, v = case
        seed_dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(
            _pairwise_sq_dists(points, centroids, v), seed_dists
        )


class TestBalancedKMeans:
    @given(
        st.sampled_from(VECTOR_SIZES),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**16),
        st.booleans(),
    )
    @settings(**SETTINGS)
    def test_groups_identical_to_loop(self, v, num_groups, k_dim, iters, seed, binary):
        rng = np.random.default_rng(seed)
        m = v * num_groups
        if binary:
            points = (rng.random((m, k_dim)) < rng.random()).astype(np.float64)
        else:
            points = rng.normal(size=(m, k_dim))
        expected = balanced_kmeans_loop(points, v, num_iters=iters, seed=seed)
        actual = balanced_kmeans(points, v, num_iters=iters, seed=seed)
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected, strict=True):
            np.testing.assert_array_equal(got, want)


class TestVectorWiseMask:
    @given(scores_and_v(), st.floats(min_value=0.02, max_value=1.0))
    @settings(**SETTINGS)
    def test_mask_identical_to_loop(self, case, density):
        scores, v = case
        expected = vector_wise_mask_loop(scores, density, v)
        actual = vector_wise_mask(scores, density, v)
        np.testing.assert_array_equal(actual, expected)


class TestGroupRowsBySupport:
    @given(
        st.sampled_from(VECTOR_SIZES),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**16),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(**SETTINGS)
    def test_groups_identical_to_loop(self, v, num_groups, k_dim, seed, fill):
        rng = np.random.default_rng(seed)
        mask = rng.random((v * num_groups, k_dim)) < fill
        expected = group_rows_by_support_loop(mask, v)
        actual = group_rows_by_support(mask, v)
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected, strict=True):
            np.testing.assert_array_equal(got, want)

    def test_repeated_supports_with_remainders(self):
        # Multiplicities that are not multiples of V exercise the leftover
        # pooling in both implementations.
        mask = np.zeros((12, 5), dtype=bool)
        mask[[0, 2, 4, 6, 8], 0] = True
        mask[[1, 3, 5], 1] = True
        mask[[7, 9], 2] = True
        # rows 10, 11 keep the empty support
        expected = group_rows_by_support_loop(mask, 4)
        actual = group_rows_by_support(mask, 4)
        assert len(actual) == len(expected) == 3
        for got, want in zip(actual, expected, strict=True):
            np.testing.assert_array_equal(got, want)


class TestSearchEquivalence:
    @given(
        scores_and_v(),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_search_identical_to_loop(self, case, density, iters, seed):
        scores, v = case
        expected = search_shflbw_pattern_loop(
            scores, density, v, kmeans_iters=iters, seed=seed
        )
        actual = search_shflbw_pattern(
            scores, density, v, kmeans_iters=iters, seed=seed
        )
        np.testing.assert_array_equal(actual.mask, expected.mask)
        np.testing.assert_array_equal(actual.row_indices, expected.row_indices)
        assert actual.groups == expected.groups
        assert actual.retained_score == expected.retained_score
        assert actual.total_score == expected.total_score
