"""Tests for the Shfl-BW pattern-search algorithm (Figure 5)."""

import numpy as np
import pytest

from repro.core.pruning import (
    prune_shflbw,
    search_shflbw_pattern,
    unstructured_mask,
    vector_wise_mask,
)
from repro.pruning.patterns import BlockwisePruner, VectorwisePruner
from repro.sparse.validate import is_shflbw, is_vector_wise


class TestUnstructuredMask:
    def test_keeps_requested_fraction(self, rng):
        scores = rng.random((16, 16))
        mask = unstructured_mask(scores, 0.25)
        assert mask.sum() == 64

    def test_keeps_largest_scores(self):
        scores = np.arange(16, dtype=float).reshape(4, 4)
        mask = unstructured_mask(scores, 0.25)
        assert mask[3, 3] and mask[3, 2] and mask[3, 1] and mask[3, 0]
        assert not mask[0, 0]

    def test_full_density_keeps_everything(self, rng):
        assert unstructured_mask(rng.random((4, 4)), 1.0).all()

    def test_negative_scores_rejected(self):
        with pytest.raises(ValueError):
            unstructured_mask(np.array([[-1.0, 2.0]]), 0.5)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_scores_rejected(self, bad):
        # NaN compares False against 0, so it used to slip past the
        # negativity check and silently corrupt the argsort-based masks.
        scores = np.ones((4, 4))
        scores[1, 2] = bad
        with pytest.raises(ValueError, match="finite"):
            unstructured_mask(scores, 0.5)
        with pytest.raises(ValueError, match="finite"):
            vector_wise_mask(scores, 0.5, 2)
        with pytest.raises(ValueError, match="finite"):
            search_shflbw_pattern(scores, 0.5, 2)

    def test_invalid_density(self, rng):
        with pytest.raises(ValueError):
            unstructured_mask(rng.random((4, 4)), 0.0)


class TestVectorWiseMask:
    def test_mask_is_vector_wise(self, rng):
        scores = rng.random((32, 24))
        mask = vector_wise_mask(scores, 0.25, 8)
        assert is_vector_wise(mask, 8)

    def test_each_group_keeps_same_column_count(self, rng):
        scores = rng.random((16, 20))
        mask = vector_wise_mask(scores, 0.25, 4)
        kept_per_group = mask.reshape(4, 4, 20).any(axis=1).sum(axis=1)
        assert np.all(kept_per_group == 5)

    def test_keeps_highest_scoring_columns(self):
        scores = np.zeros((4, 8))
        scores[:, 2] = 10.0
        scores[:, 6] = 5.0
        mask = vector_wise_mask(scores, 0.25, 4)
        assert mask[:, 2].all() and mask[:, 6].all()
        assert mask.sum() == 8

    def test_indivisible_rows_rejected(self, rng):
        with pytest.raises(ValueError):
            vector_wise_mask(rng.random((10, 8)), 0.5, 4)


class TestSearchShflBW:
    def test_mask_satisfies_pattern(self, rng):
        scores = rng.random((32, 48))
        result = search_shflbw_pattern(scores, density=0.25, vector_size=8)
        assert is_shflbw(result.mask, 8, result.row_indices)
        assert result.density == pytest.approx(0.25, abs=0.03)

    def test_groups_partition_rows(self, rng):
        scores = rng.random((24, 16))
        result = search_shflbw_pattern(scores, density=0.5, vector_size=8)
        rows = sorted(r for g in result.groups for r in g)
        assert rows == list(range(24))

    def test_retained_fraction_bounded(self, rng):
        scores = rng.random((32, 32))
        result = search_shflbw_pattern(scores, density=0.25, vector_size=8)
        assert 0.0 < result.retained_fraction <= 1.0
        assert result.retained_score <= result.total_score

    def test_shuffling_beats_plain_vector_wise_on_clusterable_scores(self, rng):
        # Construct scores where rows with similar supports are interleaved:
        # plain vector-wise (consecutive groups) is forced to mix supports,
        # while the shuffled search can group them.
        m, k, v = 32, 64, 8
        supports = [rng.choice(k, size=16, replace=False) for _ in range(4)]
        scores = np.full((m, k), 1.0e-3)
        for i in range(m):
            scores[i, supports[i % 4]] = 1.0 + rng.random(16)
        shfl = search_shflbw_pattern(scores, density=0.25, vector_size=v, seed=0)
        vw_mask = vector_wise_mask(scores, 0.25, v)
        assert scores[shfl.mask].sum() > scores[vw_mask].sum()

    def test_deterministic_given_seed(self, rng):
        scores = rng.random((16, 16))
        a = search_shflbw_pattern(scores, 0.5, 4, seed=7)
        b = search_shflbw_pattern(scores, 0.5, 4, seed=7)
        np.testing.assert_array_equal(a.mask, b.mask)
        np.testing.assert_array_equal(a.row_indices, b.row_indices)

    def test_beta_factor_validated(self, rng):
        with pytest.raises(ValueError):
            search_shflbw_pattern(rng.random((8, 8)), 0.5, 4, beta_factor=0.0)

    def test_indivisible_rows_rejected(self, rng):
        with pytest.raises(ValueError):
            search_shflbw_pattern(rng.random((10, 8)), 0.5, 4)


class TestPruneShflBW:
    def test_pruned_weights_match_mask(self, rng):
        weights = rng.normal(size=(32, 32))
        pruned, result = prune_shflbw(weights, sparsity=0.75, vector_size=8)
        np.testing.assert_allclose(pruned, weights * result.mask)

    def test_zero_sparsity_keeps_everything(self, rng):
        weights = rng.normal(size=(16, 16))
        pruned, result = prune_shflbw(weights, sparsity=0.0, vector_size=4)
        np.testing.assert_allclose(pruned, weights)

    def test_custom_scores_respected(self, rng):
        weights = rng.normal(size=(16, 16))
        scores = np.zeros((16, 16))
        scores[:, :4] = 1.0  # force the first four columns to be kept
        pruned, result = prune_shflbw(weights, 0.75, 4, scores=scores)
        assert result.mask[:, :4].all()

    def test_invalid_sparsity(self, rng):
        with pytest.raises(ValueError):
            prune_shflbw(rng.normal(size=(8, 8)), sparsity=1.0, vector_size=4)

    def test_retains_more_score_than_blockwise(self, rng):
        # The paper's motivation: Shfl-BW is more flexible than block-wise, so
        # it retains at least as much importance at the same sparsity.
        weights = rng.normal(size=(64, 64))
        _, shfl = prune_shflbw(weights, sparsity=0.75, vector_size=16)
        bw = BlockwisePruner(block_size=16).prune(weights, 0.75)
        assert shfl.retained_score >= np.abs(bw.weights).sum() * 0.999

    def test_retains_at_least_vector_wise_score_on_structured_scores(self, rng):
        m, k, v = 32, 32, 8
        supports = [rng.choice(k, size=8, replace=False) for _ in range(4)]
        weights = np.full((m, k), 1.0e-3)
        for i in range(m):
            weights[i, supports[i % 4]] = 1.0 + rng.random(8)
        _, shfl = prune_shflbw(weights, sparsity=0.75, vector_size=v)
        vw = VectorwisePruner(vector_size=v).prune(weights, 0.75)
        assert shfl.retained_score >= np.abs(vw.weights).sum() * 0.999
