"""Tests for the flexibility / computation-efficiency analysis (Section 3.2)."""

import math

import pytest

from repro.core.analysis import (
    analyze_pattern,
    compare_patterns,
    log_binomial,
    log_candidates,
    log_candidates_blockwise,
    log_candidates_shflbw,
    log_candidates_unstructured,
    log_candidates_vectorwise,
    log_factorial,
    log_row_shuffle_multiplier,
)
from repro.gpu.arch import V100


class TestCombinatorics:
    def test_log_factorial_small_values(self):
        assert log_factorial(0) == pytest.approx(0.0)
        assert log_factorial(5) == pytest.approx(math.log(120))

    def test_log_binomial(self):
        assert log_binomial(10, 3) == pytest.approx(math.log(120))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(5, 9) == float("-inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_factorial(-1)


class TestRowShuffleMultiplier:
    def test_paper_example_exceeds_700(self):
        # Section 3.2.1: for M=512, V=128 the multiplier exceeds e^700.
        assert log_row_shuffle_multiplier(512, 128) > 700.0

    def test_trivial_when_single_group(self):
        # V == M: only one group, but rows can still be ordered within it,
        # which the paper's formula counts as V! orderings of one group = 0
        # extra freedom beyond the group itself.
        assert log_row_shuffle_multiplier(16, 16) == pytest.approx(0.0)

    def test_grows_with_group_count(self):
        assert log_row_shuffle_multiplier(256, 32) > log_row_shuffle_multiplier(128, 32)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            log_row_shuffle_multiplier(100, 32)


class TestCandidateCounts:
    M, K, V, DENSITY = 512, 512, 32, 0.25

    def test_paper_ordering_unstructured_most_flexible(self):
        unstructured = log_candidates_unstructured(self.M, self.K, self.DENSITY)
        shfl = log_candidates_shflbw(self.M, self.K, self.V, self.DENSITY)
        vw = log_candidates_vectorwise(self.M, self.K, self.V, self.DENSITY)
        bw = log_candidates_blockwise(self.M, self.K, self.V, self.DENSITY)
        # Figure 3 ordering: unstructured > Shfl-BW > vector-wise > block-wise.
        assert unstructured > shfl > vw > bw

    def test_shflbw_gain_is_exactly_the_shuffle_multiplier(self):
        gain = log_candidates_shflbw(self.M, self.K, self.V, self.DENSITY) - log_candidates_vectorwise(
            self.M, self.K, self.V, self.DENSITY
        )
        assert gain == pytest.approx(log_row_shuffle_multiplier(self.M, self.V))

    def test_larger_v_less_flexible(self):
        small = log_candidates_shflbw(self.M, self.K, 32, self.DENSITY)
        large = log_candidates_shflbw(self.M, self.K, 128, self.DENSITY)
        assert small > large

    def test_dispatch_by_name(self):
        assert log_candidates("unstructured", 64, 64, 0.5) == pytest.approx(
            log_candidates_unstructured(64, 64, 0.5)
        )
        assert log_candidates("dense", 64, 64, 1.0) == 0.0

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            log_candidates_vectorwise(30, 64, 32, 0.5)
        with pytest.raises(ValueError):
            log_candidates_blockwise(64, 30, 32, 0.5)


class TestPatternAnalysis:
    def test_compare_patterns_returns_all(self):
        analyses = compare_patterns(V100, 512, 512, 0.1, 64)
        assert {a.pattern for a in analyses} == {
            "unstructured",
            "balanced",
            "vectorwise",
            "blockwise",
            "shflbw",
        }

    def test_shflbw_reuse_equals_blockwise_reuse(self):
        shfl = analyze_pattern("shflbw", V100, 512, 512, 0.1, 64)
        bw = analyze_pattern("blockwise", V100, 512, 512, 0.1, 64)
        assert shfl.max_reuse_flop_per_byte == pytest.approx(bw.max_reuse_flop_per_byte)

    def test_unstructured_reuse_degrades_with_sparsity(self):
        high = analyze_pattern("unstructured", V100, 512, 512, 0.5)
        low = analyze_pattern("unstructured", V100, 512, 512, 0.05)
        assert low.max_reuse_flop_per_byte < high.max_reuse_flop_per_byte

    def test_blockwise_reuse_density_independent(self):
        a = analyze_pattern("blockwise", V100, 512, 512, 0.5, 64)
        b = analyze_pattern("blockwise", V100, 512, 512, 0.05, 64)
        assert a.max_reuse_flop_per_byte == pytest.approx(b.max_reuse_flop_per_byte)

    def test_dense_reuse_ratio_is_one(self):
        dense = analyze_pattern("dense", V100, 512, 512, 1.0)
        assert dense.reuse_vs_dense == pytest.approx(1.0)
