"""Tests for the balanced (capacity-constrained) k-means clustering."""

import numpy as np
import pytest

from repro.core.kmeans import balanced_kmeans, kmeans_plusplus_init


class TestInit:
    def test_picks_distinct_points_when_spread(self, rng):
        points = np.array([[0.0, 0.0], [0.0, 0.1], [10.0, 10.0], [10.0, 10.1]])
        centroids = kmeans_plusplus_init(points, 2, np.random.default_rng(0))
        # One centroid from each far-apart cluster.
        assert abs(centroids[0, 0] - centroids[1, 0]) > 5.0

    def test_invalid_cluster_count(self, rng):
        with pytest.raises(ValueError):
            kmeans_plusplus_init(np.zeros((4, 2)), 5, np.random.default_rng(0))


class TestBalancedKMeans:
    def test_groups_have_exact_size(self, rng):
        points = rng.random((24, 10))
        groups = balanced_kmeans(points, 6)
        assert len(groups) == 4
        assert all(len(g) == 6 for g in groups)

    def test_partition_covers_all_rows(self, rng):
        points = rng.random((32, 5))
        groups = balanced_kmeans(points, 8)
        rows = sorted(np.concatenate(groups).tolist())
        assert rows == list(range(32))

    def test_recovers_obvious_clusters(self):
        # Two well-separated binary supports must end up in separate groups.
        points = np.zeros((8, 16))
        points[:4, :8] = 1.0
        points[4:, 8:] = 1.0
        groups = balanced_kmeans(points, 4, seed=1)
        as_sets = {frozenset(g.tolist()) for g in groups}
        assert frozenset({0, 1, 2, 3}) in as_sets
        assert frozenset({4, 5, 6, 7}) in as_sets

    def test_deterministic_given_seed(self, rng):
        points = rng.random((16, 6))
        a = balanced_kmeans(points, 4, seed=3)
        b = balanced_kmeans(points, 4, seed=3)
        for ga, gb in zip(a, b, strict=True):
            np.testing.assert_array_equal(ga, gb)

    def test_single_group_shortcut(self, rng):
        groups = balanced_kmeans(rng.random((8, 4)), 8)
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0], np.arange(8))

    def test_identical_points_handled(self):
        groups = balanced_kmeans(np.ones((12, 4)), 3)
        assert len(groups) == 4
        assert all(len(g) == 3 for g in groups)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            balanced_kmeans(rng.random((10, 3)), 4)
        with pytest.raises(ValueError):
            balanced_kmeans(rng.random(10), 2)
