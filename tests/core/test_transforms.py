"""Tests for row/column permutation transforms."""

import numpy as np
import pytest

from repro.core.transforms import (
    apply_row_permutation,
    group_rows_by_support,
    groups_to_permutation,
    invert_permutation,
    reordered_write_back,
    stitch_activation_rows,
)


class TestPermutations:
    def test_apply_then_write_back_is_identity(self, rng):
        matrix = rng.normal(size=(16, 8))
        perm = rng.permutation(16)
        permuted = apply_row_permutation(matrix, perm)
        np.testing.assert_allclose(reordered_write_back(permuted, perm), matrix)

    def test_invert_permutation(self, rng):
        perm = rng.permutation(32)
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(32))
        np.testing.assert_array_equal(inv[perm], np.arange(32))

    def test_invalid_permutation_rejected(self, rng):
        matrix = rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            apply_row_permutation(matrix, np.array([0, 1, 1, 2]))
        with pytest.raises(ValueError):
            reordered_write_back(matrix, np.array([0, 1, 2]))


class TestRowGrouping:
    def test_identical_supports_grouped_together(self):
        mask = np.zeros((8, 6), dtype=bool)
        mask[[0, 3, 5, 7], 0] = True   # support A
        mask[[1, 2, 4, 6], 1] = True   # support B
        groups = group_rows_by_support(mask, 4)
        as_sets = {frozenset(g.tolist()) for g in groups}
        assert frozenset({0, 3, 5, 7}) in as_sets
        assert frozenset({1, 2, 4, 6}) in as_sets

    def test_always_returns_full_groups(self, rng):
        mask = rng.random((16, 8)) < 0.3
        groups = group_rows_by_support(mask, 4)
        assert len(groups) == 4
        assert all(len(g) == 4 for g in groups)
        all_rows = np.concatenate(groups)
        assert sorted(all_rows.tolist()) == list(range(16))

    def test_invalid_group_size(self, rng):
        with pytest.raises(ValueError):
            group_rows_by_support(np.zeros((10, 4)), 4)

    def test_groups_to_permutation_validates(self):
        groups = [np.array([0, 1]), np.array([2, 3])]
        np.testing.assert_array_equal(groups_to_permutation(groups, 4), [0, 1, 2, 3])
        with pytest.raises(ValueError):
            groups_to_permutation([np.array([0, 1]), np.array([1, 2])], 4)


class TestStitching:
    def test_gathers_named_rows(self, rng):
        activations = rng.normal(size=(10, 5))
        columns = np.array([3, 7, 1])
        stitched = stitch_activation_rows(activations, columns)
        np.testing.assert_allclose(stitched, activations[[3, 7, 1], :])

    def test_padding_lanes_are_zero(self, rng):
        activations = rng.normal(size=(10, 5))
        stitched = stitch_activation_rows(activations, np.array([2, -1, -1]))
        assert np.all(stitched[1:] == 0.0)

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            stitch_activation_rows(rng.normal(size=(4, 2)), np.array([5]))

    def test_negative_indices_other_than_padding_rejected(self, rng):
        # Only -1 is the documented padding lane; -2 is an upstream bug and
        # used to silently produce a zero row.
        activations = rng.normal(size=(4, 2))
        with pytest.raises(ValueError, match=">= -1"):
            stitch_activation_rows(activations, np.array([0, -2]))
        # -1 itself stays valid.
        stitched = stitch_activation_rows(activations, np.array([0, -1]))
        assert np.all(stitched[1] == 0.0)
