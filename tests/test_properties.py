"""Property-based tests (hypothesis) for the core data structures and
invariants: format round-trips, SpMM correctness, pattern validity of the
pruners, and the flexibility analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    log_candidates_shflbw,
    log_candidates_vectorwise,
    log_row_shuffle_multiplier,
)
from repro.core.kmeans import balanced_kmeans
from repro.core.pruning import prune_shflbw, search_shflbw_pattern, unstructured_mask
from repro.core.transforms import apply_row_permutation, invert_permutation, reordered_write_back
from repro.pruning.patterns import BlockwisePruner, VectorwisePruner
from repro.sparse.convert import dense_to_csr, dense_to_shflbw, dense_to_vector_wise
from repro.sparse.spmm import spmm_csr, spmm_shflbw, spmm_vector_wise
from repro.sparse.validate import is_blockwise, is_shflbw, is_vector_wise

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def matrix_and_v(draw):
    """A random dense matrix together with a vector size dividing its rows."""
    v = draw(st.sampled_from([2, 4, 8]))
    groups = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=4, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(v * groups, k)), v


@given(matrix_and_v(), st.floats(min_value=0.05, max_value=0.9))
@settings(**SETTINGS)
def test_csr_round_trip_and_spmm(data, density):
    matrix, _ = data
    mask = unstructured_mask(np.abs(matrix), density)
    pruned = matrix * mask
    csr = dense_to_csr(pruned)
    np.testing.assert_allclose(csr.to_dense(), pruned)
    rhs = np.random.default_rng(0).normal(size=(matrix.shape[1], 3))
    np.testing.assert_allclose(spmm_csr(csr, rhs), pruned @ rhs, atol=1e-10)


@given(matrix_and_v(), st.floats(min_value=0.1, max_value=0.9))
@settings(**SETTINGS)
def test_shflbw_pruner_always_produces_valid_pattern(data, sparsity):
    matrix, v = data
    pruned, result = prune_shflbw(matrix, sparsity=sparsity, vector_size=v)
    assert is_shflbw(pruned != 0, v, result.row_indices) or pruned.size == 0
    # The mask in permuted order must be vector-wise.
    assert is_vector_wise(pruned[result.row_indices, :], v)
    # Density never exceeds the requested density by more than one column
    # per group worth of slack.
    assert result.density <= (1.0 - sparsity) + 1.0 / matrix.shape[1] + 1e-9


@given(matrix_and_v(), st.floats(min_value=0.1, max_value=0.9))
@settings(**SETTINGS)
def test_shflbw_spmm_matches_dense(data, sparsity):
    matrix, v = data
    pruned, result = prune_shflbw(matrix, sparsity=sparsity, vector_size=v)
    sparse = dense_to_shflbw(pruned, v, result.row_indices)
    rhs = np.random.default_rng(1).normal(size=(matrix.shape[1], 4))
    np.testing.assert_allclose(spmm_shflbw(sparse, rhs), pruned @ rhs, atol=1e-10)


@given(matrix_and_v(), st.floats(min_value=0.1, max_value=0.9))
@settings(**SETTINGS)
def test_vector_wise_pruner_pattern_and_spmm(data, sparsity):
    matrix, v = data
    pruned = VectorwisePruner(vector_size=v).prune(matrix, sparsity).weights
    assert is_vector_wise(pruned, v)
    sparse = dense_to_vector_wise(pruned, v)
    rhs = np.random.default_rng(2).normal(size=(matrix.shape[1], 2))
    np.testing.assert_allclose(spmm_vector_wise(sparse, rhs), pruned @ rhs, atol=1e-10)


@given(st.integers(min_value=0, max_value=2**16), st.sampled_from([4, 8, 16]))
@settings(**SETTINGS)
def test_blockwise_pruner_pattern(seed, v):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(v * 4, v * 3))
    pruned = BlockwisePruner(block_size=v).prune(matrix, 0.5).weights
    assert is_blockwise(pruned, v)


@given(st.integers(min_value=0, max_value=2**16))
@settings(**SETTINGS)
def test_permutation_round_trip(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rng.integers(2, 20), rng.integers(1, 10)))
    perm = rng.permutation(matrix.shape[0])
    np.testing.assert_allclose(
        reordered_write_back(apply_row_permutation(matrix, perm), perm), matrix
    )
    inv = invert_permutation(perm)
    np.testing.assert_array_equal(perm[inv], np.arange(len(perm)))


@given(st.integers(min_value=0, max_value=2**16), st.sampled_from([2, 4, 8]))
@settings(**SETTINGS)
def test_balanced_kmeans_is_a_balanced_partition(seed, group_size):
    rng = np.random.default_rng(seed)
    num_groups = int(rng.integers(1, 5))
    points = rng.random((group_size * num_groups, int(rng.integers(2, 12))))
    groups = balanced_kmeans(points, group_size, seed=seed)
    assert len(groups) == num_groups
    assert all(len(g) == group_size for g in groups)
    assert sorted(np.concatenate(groups).tolist()) == list(range(points.shape[0]))


@given(
    st.sampled_from([64, 128, 256]),
    st.sampled_from([64, 128]),
    st.sampled_from([16, 32, 64]),
    st.floats(min_value=0.05, max_value=0.9),
)
@settings(**SETTINGS)
def test_shflbw_flexibility_always_exceeds_vectorwise(m, k, v, density):
    if m % v:
        return
    gain = log_candidates_shflbw(m, k, v, density) - log_candidates_vectorwise(m, k, v, density)
    assert gain == pytest.approx(log_row_shuffle_multiplier(m, v), rel=1e-9)
    assert gain >= 0.0


@given(matrix_and_v(), st.floats(min_value=0.1, max_value=0.9))
@settings(**SETTINGS)
def test_search_retained_importance_properties(data, sparsity):
    """Invariants of the pattern search: the retained score is exactly the
    score covered by the mask, and because each group keeps its highest-sum
    columns, the retained fraction is never below the kept density."""
    matrix, v = data
    scores = np.abs(matrix)
    shfl = search_shflbw_pattern(scores, density=1.0 - sparsity, vector_size=v)
    assert shfl.retained_score == pytest.approx(scores[shfl.mask].sum())
    assert 0.0 < shfl.retained_fraction <= 1.0
    assert shfl.retained_fraction >= shfl.density * 0.999
