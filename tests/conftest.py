"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "regenerate the golden timing fixtures (tests/gpu/goldens/) from "
            "the current timing model instead of asserting against them"
        ),
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """Whether this run should rewrite golden fixtures instead of comparing."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_weight(rng: np.random.Generator) -> np.ndarray:
    """A small dense weight matrix with no exact zeros."""
    w = rng.normal(size=(32, 48))
    w[w == 0.0] = 0.1
    return w


@pytest.fixture
def shflbw_pruned(small_weight):
    """A Shfl-BW pruned matrix plus its search result (V=8, 75% sparsity)."""
    return prune_shflbw(small_weight, sparsity=0.75, vector_size=8, seed=0)


def numeric_gradient(fn, x: np.ndarray, eps: float = 1.0e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar-valued ``fn``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
