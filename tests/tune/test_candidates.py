"""Capability metadata and static candidate pruning."""

from __future__ import annotations

import pytest

from repro.gpu.arch import get_gpu
from repro.kernels.registry import DENSE_BASELINE_LABEL, make_kernel
from repro.models.shapes import model_layers, resnet50_layers, transformer_layers
from repro.tune import build_kernel, candidate_density, default_candidates, prune_candidates


class TestCapabilities:
    def test_every_kernel_reports_capabilities(self):
        for spec in default_candidates():
            caps = build_kernel(spec).capabilities()
            assert caps.name
            assert isinstance(caps.supports_conv, bool)

    def test_dense_kernels_are_dense(self):
        assert make_kernel("dense").capabilities().is_dense
        assert make_kernel("dense-cudacore").capabilities().is_dense
        assert not make_kernel("shfl-bw").capabilities().is_dense

    def test_cusparselt_constraints_are_declarative(self):
        caps = make_kernel("cusparselt").capabilities()
        assert caps.fixed_density == 0.5
        assert caps.requires_sparse_tensor_core
        assert caps.infeasible_reason(get_gpu("V100"), density=0.5) is not None
        assert caps.infeasible_reason(get_gpu("A100"), density=0.5) is None
        reason = caps.infeasible_reason(get_gpu("A100"), density=0.25)
        assert reason is not None and "density" in reason

    def test_arch_restricted_kernels(self):
        caps = make_kernel("tilewise").capabilities()
        assert caps.supported_archs == ("V100",)
        assert caps.infeasible_reason(get_gpu("V100"), density=0.25) is None
        assert caps.infeasible_reason(get_gpu("A100"), density=0.25) is not None

    def test_conv_constraint(self):
        caps = make_kernel("sputnik").capabilities()
        assert caps.infeasible_reason(get_gpu("V100"), kind="conv", density=0.25)
        dense = make_kernel("dense").capabilities()
        assert dense.infeasible_reason(get_gpu("V100"), kind="conv", density=1.0) is None


class TestCandidateDensity:
    def test_dense_candidates_score_at_full_density(self):
        assert candidate_density(make_kernel("dense"), 0.25) == 1.0

    def test_sparse_candidates_keep_operating_density(self):
        assert candidate_density(make_kernel("shfl-bw"), 0.25) == 0.25


class TestDefaultCandidates:
    def test_pool_covers_the_paper_lineup(self):
        labels = {spec.display_label for spec in default_candidates()}
        assert DENSE_BASELINE_LABEL in labels
        assert "Shfl-BW,V=64" in labels
        assert "Balanced 2in4" in labels

    def test_pool_order_is_deterministic(self):
        assert default_candidates() == default_candidates()

    def test_vector_sizes_parameterise_the_pool(self):
        labels = {spec.display_label for spec in default_candidates((8,))}
        assert "Shfl-BW,V=8" in labels
        assert "Shfl-BW,V=64" not in labels


class TestPruning:
    def test_conv_layers_prune_gemm_only_kernels(self):
        layer = resnet50_layers()[1]  # a 3x3 convolution
        assert layer.kind == "conv"
        feasible, rejected = prune_candidates(
            default_candidates(), get_gpu("V100"), layer, 0.25
        )
        feasible_labels = {spec.display_label for spec, _ in feasible}
        for spec, kernel in feasible:
            assert kernel.supports_conv
        assert "Unstructured (Sputnik)" in rejected
        assert "Balanced 2in4" in rejected
        assert DENSE_BASELINE_LABEL in feasible_labels
        assert "Shfl-BW,V=64" in feasible_labels

    def test_fixed_density_pruning(self):
        layer = transformer_layers()[0]
        _, rejected = prune_candidates(
            default_candidates(), get_gpu("A100"), layer, 0.25
        )
        assert "Balanced 2in4" in rejected
        assert "density" in rejected["Balanced 2in4"]
        feasible_50, _ = prune_candidates(
            default_candidates(), get_gpu("A100"), layer, 0.5
        )
        assert "Balanced 2in4" in {spec.display_label for spec, _ in feasible_50}

    @pytest.mark.parametrize("gpu", ["T4", "A100"])
    def test_arch_pruning(self, gpu):
        layer = transformer_layers()[0]
        _, rejected = prune_candidates(
            default_candidates(), get_gpu(gpu), layer, 0.25
        )
        assert "TileWise (VW,V=128)" in rejected

    def test_dense_is_always_feasible(self):
        for model in ("transformer", "gnmt", "resnet50"):
            for gpu in ("V100", "T4", "A100"):
                for layer in model_layers(model):
                    feasible, _ = prune_candidates(
                        default_candidates(), get_gpu(gpu), layer, 0.15
                    )
                    assert DENSE_BASELINE_LABEL in {
                        spec.display_label for spec, _ in feasible
                    }
