"""RecordedRefiner: serving measurements folded back into planning."""

from __future__ import annotations

from repro.eval.runner import KernelSpec
from repro.models.shapes import LayerShape
from repro.kernels.base import GEMMShape
from repro.tune import Autotuner
from repro.tune.measure import RecordedRefiner

LAYER = LayerShape("probe", GEMMShape(m=64, n=16, k=64))


def scored_pool():
    """Two fake candidates ordered by analytical time (best first)."""
    return [
        (KernelSpec(name="fast", label="fast"), None, 1.0),
        (KernelSpec(name="slow", label="slow"), None, 2.0),
    ]


class TestRefine:
    def test_no_records_keeps_analytical_winner(self):
        assert RecordedRefiner().refine(scored_pool(), LAYER, 0.1) == 0

    def test_recorded_evidence_displaces_the_winner(self):
        """Real traffic showed the analytical runner-up is actually faster."""
        refiner = RecordedRefiner(records=((("probe", "slow"), 0.5),))
        assert refiner.refine(scored_pool(), LAYER, 0.1) == 1

    def test_recorded_confirmation_keeps_the_winner(self):
        refiner = RecordedRefiner(records=((("probe", "fast"), 0.9),))
        assert refiner.refine(scored_pool(), LAYER, 0.1) == 0

    def test_records_of_other_layers_are_ignored(self):
        refiner = RecordedRefiner(records=((("elsewhere", "slow"), 0.001),))
        assert refiner.refine(scored_pool(), LAYER, 0.1) == 0

    def test_exact_tie_keeps_analytical_order(self):
        refiner = RecordedRefiner(records=((("probe", "slow"), 1.0),))
        assert refiner.refine(scored_pool(), LAYER, 0.1) == 0


class TestPlanIntegration:
    def test_measured_mode_and_distinct_cache_keys(self, tmp_path):
        """A recorded refiner flips the plan to measured mode, and its
        records hash into the plan-cache key (changed evidence = cold plan)."""
        gemm = (256, 32, 256)
        plain = Autotuner(cache_dir=tmp_path)
        plan = plain.plan_gemm(gemm, "V100", 0.9)
        assert plan.mode == "model"

        refined = Autotuner(
            cache_dir=tmp_path,
            refiner=RecordedRefiner(records=((("gemm-256x32x256", "x"), 1.0),)),
        )
        refined_plan = refined.plan_gemm(gemm, "V100", 0.9)
        assert refined_plan.mode == "measured"
        # Both tuners missed (different keys) rather than aliasing.
        assert plain.stats.misses == 1
        assert refined.stats.misses == 1

    def test_to_dict_is_sorted_and_canonical(self):
        refiner = RecordedRefiner(
            records=((("b", "y"), 2.0), (("a", "x"), 1.0))
        )
        assert refiner.to_dict() == {
            "recorded": [["a", "x", 1.0], ["b", "y", 2.0]]
        }
