"""Persistence, versioning and invalidation of the tuning-plan cache."""

from __future__ import annotations

import json

import pytest

from repro.eval.runner import MODEL_VERSION
from repro.eval.store import CorruptCacheWarning, blob_root_for
from repro.models.shapes import transformer_layers
from repro.tune import (
    PLAN_FILENAME,
    Autotuner,
    PlanCache,
    default_candidates,
    plan_request_hash,
)


class TestRequestHash:
    def kwargs(self, **overrides):
        base = dict(
            gpu="V100",
            sparsity=0.75,
            layers=transformer_layers(),
            candidates=default_candidates(),
            mode="model",
            refiner=None,
            model="transformer",
        )
        base.update(overrides)
        return base

    def test_stable_across_calls(self):
        assert plan_request_hash(**self.kwargs()) == plan_request_hash(**self.kwargs())

    def test_salt_changes_key(self):
        assert plan_request_hash(**self.kwargs()) != plan_request_hash(
            **self.kwargs(), salt="timing-v999"
        )

    def test_layer_shapes_participate(self):
        assert plan_request_hash(**self.kwargs()) != plan_request_hash(
            **self.kwargs(layers=transformer_layers(tokens=512))
        )

    def test_operating_point_participates(self):
        base = plan_request_hash(**self.kwargs())
        assert base != plan_request_hash(**self.kwargs(sparsity=0.85))
        assert base != plan_request_hash(**self.kwargs(gpu="T4"))

    def test_candidate_pool_participates(self):
        smaller = default_candidates()[:3]
        assert plan_request_hash(**self.kwargs()) != plan_request_hash(
            **self.kwargs(candidates=smaller)
        )

    def test_conv_spec_participates_beyond_the_gemm_shape(self):
        """Two convolutions lowering to the same implicit GEMM (a 3x3 and a
        1x1 with 9x the input channels) must not alias: the unfold overhead
        makes them time differently."""
        from repro.kernels.base import conv_to_gemm_shape
        from repro.models.shapes import LayerShape
        from repro.sparse.spconv import Conv2dSpec

        def conv_layer(cin: int, ksize: int) -> LayerShape:
            spec = Conv2dSpec(
                in_channels=cin,
                out_channels=64,
                kernel_size=ksize,
                stride=1,
                padding=ksize // 2,
            )
            return LayerShape(
                "conv",
                conv_to_gemm_shape(spec, 1, 28, 28),
                kind="conv",
                conv=spec,
                batch=1,
                height=28,
                width=28,
            )

        three_by_three = conv_layer(64, 3)
        one_by_one = conv_layer(64 * 9, 1)
        assert three_by_three.gemm == one_by_one.gemm
        assert plan_request_hash(
            **self.kwargs(layers=[three_by_three], model="resnet50")
        ) != plan_request_hash(**self.kwargs(layers=[one_by_one], model="resnet50"))

    def test_conv_resolution_participates(self):
        from repro.models.shapes import resnet50_layers

        default = resnet50_layers()
        bigger = resnet50_layers(batch=64)
        assert plan_request_hash(
            **self.kwargs(layers=default, model="resnet50")
        ) != plan_request_hash(**self.kwargs(layers=bigger, model="resnet50"))


class TestPlanCacheRoundTrip:
    def test_round_trip_identical_plan(self, tmp_path):
        first = Autotuner(cache_dir=tmp_path)
        plan = first.plan("transformer", "V100", 0.75)
        assert first.stats.misses == 1 and first.stats.hits == 0
        assert blob_root_for(tmp_path / PLAN_FILENAME).is_dir()

        second = Autotuner(cache_dir=tmp_path)
        cached = second.plan("transformer", "V100", 0.75)
        assert second.stats.hits == 1 and second.stats.misses == 0
        assert cached == plan

    def test_same_tuner_hits_its_own_cache(self, tmp_path):
        tuner = Autotuner(cache_dir=tmp_path)
        tuner.plan("gnmt", "T4", 0.85)
        tuner.plan("gnmt", "T4", 0.85)
        assert (tuner.stats.hits, tuner.stats.misses) == (1, 1)

    def test_cache_blobs_are_debuggable_json(self, tmp_path):
        Autotuner(cache_dir=tmp_path).plan("transformer", "A100", 0.5)
        (blob,) = blob_root_for(tmp_path / PLAN_FILENAME).glob("*/*.json")
        envelope = json.loads(blob.read_text())
        assert envelope["key"] == blob.name.removesuffix(".json")
        entry = envelope["entry"]
        assert entry["plan"]["salt"] == MODEL_VERSION
        assert entry["plan"]["model"] == "transformer"
        assert entry["plan"]["assignments"]

    def test_distinct_operating_points_do_not_alias(self, tmp_path):
        tuner = Autotuner(cache_dir=tmp_path)
        a = tuner.plan("transformer", "V100", 0.75)
        b = tuner.plan("transformer", "V100", 0.85)
        assert tuner.stats.misses == 2
        assert a.sparsity != b.sparsity


class TestModelVersionInvalidation:
    def test_salt_bump_reads_as_cold_cache(self, tmp_path):
        Autotuner(cache_dir=tmp_path).plan("transformer", "V100", 0.75)
        bumped = Autotuner(cache_dir=tmp_path, salt=MODEL_VERSION + "-bumped")
        bumped.plan("transformer", "V100", 0.75)
        assert (bumped.stats.hits, bumped.stats.misses) == (0, 1)
        # Both generations coexist in the store under different keys.
        blobs = list(blob_root_for(tmp_path / PLAN_FILENAME).glob("*/*.json"))
        assert len(blobs) == 2

    def test_entry_salt_is_checked_on_read(self, tmp_path):
        """Even a hand-edited blob cannot serve a stale-version plan."""
        tuner = Autotuner(cache_dir=tmp_path)
        tuner.plan("transformer", "V100", 0.75)
        (blob,) = blob_root_for(tmp_path / PLAN_FILENAME).glob("*/*.json")
        key = blob.name.removesuffix(".json")
        stale = PlanCache(tmp_path, salt="some-other-version")
        assert stale.get(key) is None

    def test_malformed_legacy_file_reads_as_empty(self, tmp_path):
        (tmp_path / PLAN_FILENAME).write_text("{not json")
        tuner = Autotuner(cache_dir=tmp_path)
        with pytest.warns(CorruptCacheWarning):
            tuner.plan("transformer", "V100", 0.75)
        assert tuner.stats.misses == 1

    def test_malformed_entry_reads_as_miss(self, tmp_path):
        (tmp_path / PLAN_FILENAME).write_text(json.dumps({"abc": {"nope": 1}}))
        cache = PlanCache(tmp_path)
        assert cache.get("abc") is None
        assert cache.get("missing") is None
