"""The planner is exactly the brute-force argmin of the timing model."""

from __future__ import annotations

import pytest

from repro.eval.runner import KernelSpec
from repro.eval.speedup import FIGURE1_DENSITIES, PAPER_SPARSITIES, layer_time
from repro.gpu.arch import get_gpu
from repro.kernels.base import KernelNotApplicableError
from repro.models.shapes import model_layers
from repro.tune import (
    Autotuner,
    build_kernel,
    candidate_density,
    compare_with_single_kernels,
    default_candidates,
    gemm_layer,
)

#: The Figure 1 GEMM problem.
FIGURE1_GEMM = (2048, 128, 2048)


def brute_force_best(candidates, arch, layer, density):
    """Reference argmin: try every candidate on the timing model, mirroring
    the sweep runner's applicability semantics (``supported_archs`` checked
    up front, estimate-time rejections treated as infeasible)."""
    best = None
    for spec in candidates:
        kernel = build_kernel(spec)
        if kernel.supported_archs is not None and arch.name not in kernel.supported_archs:
            continue
        try:
            time_s = layer_time(kernel, arch, layer, candidate_density(kernel, density))
        except (KernelNotApplicableError, ValueError):
            continue
        if best is None or time_s < best[1]:
            best = (spec.display_label, time_s)
    return best


class TestFigure1GridArgmin:
    @pytest.mark.parametrize("gpu", ["V100", "T4", "A100"])
    @pytest.mark.parametrize("density", FIGURE1_DENSITIES)
    def test_plan_matches_brute_force(self, gpu, density):
        """On every Figure 1 grid cell the tuner selects the same kernel as
        brute-force minimisation of the timing model."""
        sparsity = 1.0 - density
        tuner = Autotuner()
        plan = tuner.plan_gemm(FIGURE1_GEMM, gpu, sparsity)
        (assignment,) = plan.assignments
        label, time_s = brute_force_best(
            tuner.candidates, get_gpu(gpu), gemm_layer(FIGURE1_GEMM), density
        )
        assert assignment.label == label
        assert assignment.time_s == pytest.approx(time_s, rel=1e-12)


class TestModelPlanArgmin:
    @pytest.mark.parametrize("model", ["transformer", "gnmt", "resnet50"])
    @pytest.mark.parametrize("sparsity", PAPER_SPARSITIES)
    def test_every_layer_is_the_brute_force_argmin(self, model, sparsity):
        tuner = Autotuner()
        plan = tuner.plan(model, "V100", sparsity)
        arch = get_gpu("V100")
        layers = {layer.name: layer for layer in model_layers(model)}
        assert set(layers) == {a.layer for a in plan.assignments}
        for assignment in plan.assignments:
            label, time_s = brute_force_best(
                tuner.candidates, arch, layers[assignment.layer], 1.0 - sparsity
            )
            assert assignment.label == label, assignment.layer
            assert assignment.time_s == pytest.approx(time_s, rel=1e-12)

    def test_assignment_counts_match_layers(self):
        plan = Autotuner().plan("transformer", "T4", 0.85)
        for layer, assignment in zip(model_layers("transformer"), plan.assignments, strict=True):
            assert assignment.layer == layer.name
            assert assignment.count == layer.count
            assert assignment.considered > 0
        assert plan.total_time_s == pytest.approx(
            sum(a.time_s * a.count for a in plan.assignments)
        )


class TestNeverSlowerThanSingleKernel:
    @pytest.mark.parametrize("model", ["transformer", "gnmt", "resnet50"])
    @pytest.mark.parametrize("gpu", ["V100", "A100"])
    def test_planned_time_bounded_by_best_single(self, model, gpu):
        comparison = compare_with_single_kernels(model, gpu, 0.75)
        assert comparison.planned_time_s <= comparison.best_single_time_s * (1 + 1e-12)
        assert comparison.advantage >= 1.0 - 1e-12
        assert comparison.planned_speedup >= comparison.best_single_speedup * (1 - 1e-12)

    def test_dense_backstop_at_low_sparsity(self):
        """Where no sparse kernel wins, the best single kernel may be dense —
        and the plan can still never be slower."""
        comparison = compare_with_single_kernels("transformer", "V100", 0.5)
        assert comparison.planned_time_s <= comparison.best_single_time_s * (1 + 1e-12)
        labels = dict(comparison.single_kernel_times)
        assert comparison.best_single_label in labels


class TestBatchedScoring:
    """The batched candidate-scoring path (the default) must produce exactly
    the plans of the scalar per-layer loop — same kernels, same bit-exact
    modelled times, same rejection bookkeeping."""

    @pytest.mark.parametrize("model", ["transformer", "gnmt", "resnet50"])
    @pytest.mark.parametrize("gpu", ["V100", "T4", "A100"])
    def test_batched_plan_equals_scalar_plan(self, model, gpu):
        for sparsity in (0.5, 0.75, 0.95):
            batched = Autotuner().plan(model, gpu, sparsity)
            scalar = Autotuner(batched=False).plan(model, gpu, sparsity)
            assert batched == scalar

    def test_gemm_plans_equal_too(self):
        gemm = (2048, 128, 2048)
        assert Autotuner().plan_gemm(gemm, "T4", 0.75) == Autotuner(
            batched=False
        ).plan_gemm(gemm, "T4", 0.75)

    def test_no_feasible_candidate_message_identical(self):
        only_balanced = tuple(
            spec for spec in default_candidates() if spec.display_label == "Balanced 2in4"
        )
        messages = []
        for batched in (True, False):
            tuner = Autotuner(candidates=only_balanced, batched=batched)
            with pytest.raises(KernelNotApplicableError) as excinfo:
                tuner.plan("transformer", "V100", 0.75)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]


class TestPlanShape:
    def test_plans_are_deterministic(self):
        a = Autotuner().plan("gnmt", "A100", 0.85)
        b = Autotuner().plan("gnmt", "A100", 0.85)
        assert a == b

    def test_assignments_only_use_pool_candidates(self):
        tuner = Autotuner()
        plan = tuner.plan("resnet50", "T4", 0.95)
        pool = {spec.display_label for spec in tuner.candidates}
        for assignment in plan.assignments:
            assert assignment.label in pool
            assert build_kernel(
                KernelSpec(assignment.kernel, kwargs=assignment.kernel_kwargs)
            ).supports_conv  # resnet50 layers are all convolutions

    def test_conv_assignments_are_conv_capable(self):
        plan = Autotuner().plan("resnet50", "V100", 0.75)
        for assignment in plan.assignments:
            kernel = build_kernel(
                KernelSpec(assignment.kernel, kwargs=assignment.kernel_kwargs)
            )
            assert kernel.supports_conv

    def test_no_feasible_candidate_raises_with_reasons(self):
        only_balanced = tuple(
            spec for spec in default_candidates() if spec.display_label == "Balanced 2in4"
        )
        tuner = Autotuner(candidates=only_balanced)
        with pytest.raises(KernelNotApplicableError, match="no feasible kernel"):
            tuner.plan("transformer", "V100", 0.75)

    def test_empty_candidate_pool_rejected(self):
        with pytest.raises(ValueError):
            Autotuner(candidates=())

    def test_sparsity_validated(self):
        with pytest.raises(ValueError):
            Autotuner().plan("transformer", "V100", 1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Autotuner().plan("transformer", "V100", 0.75, layers=[])

    def test_gemm_plan_workload_label(self):
        plan = Autotuner().plan_gemm(FIGURE1_GEMM, "V100", 0.75)
        assert plan.workload == "gemm-2048x128x2048"
        assert plan.model is None
        histogram = plan.kernel_histogram()
        assert sum(histogram.values()) == 1

    def test_assignment_lookup(self):
        plan = Autotuner().plan("transformer", "V100", 0.75)
        assert plan.assignment_for("ffn1").layer == "ffn1"
        with pytest.raises(KeyError):
            plan.assignment_for("nope")
