"""PlannedModel execution, plan serialisation and measured refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pruning import prune_shflbw
from repro.eval.runner import KernelSpec
from repro.kernels.base import GEMMShape
from repro.kernels.registry import make_kernel
from repro.models.shapes import LayerShape
from repro.tune import (
    Autotuner,
    MeasuredRefiner,
    PlannedModel,
    TuningPlan,
    gemm_layer,
)


class TestPlanSerialisation:
    def test_dict_round_trip(self):
        plan = Autotuner().plan("transformer", "V100", 0.75)
        assert TuningPlan.from_dict(plan.to_dict()) == plan

    def test_gemm_plan_round_trip(self):
        plan = Autotuner().plan_gemm((512, 64, 512), "T4", 0.85)
        assert TuningPlan.from_dict(plan.to_dict()) == plan

    def test_workload_exclusivity_enforced(self):
        with pytest.raises(ValueError):
            TuningPlan(gpu="V100", sparsity=0.5, assignments=())


class TestPlannedModel:
    def test_layers_resolved_from_model_name(self):
        plan = Autotuner().plan("transformer", "V100", 0.75)
        planned = PlannedModel(plan)
        assert set(planned.layers) == {a.layer for a in plan.assignments}
        assert planned.total_time_s == pytest.approx(plan.total_time_s)
        names = [name for name, _, _ in planned.layer_times()]
        assert names == [a.layer for a in plan.assignments]

    def test_kernel_instances_match_assignments_and_are_cached(self):
        plan = Autotuner().plan("transformer", "V100", 0.75)
        planned = PlannedModel(plan)
        kernel = planned.kernel_for("ffn1")
        assert kernel.name == make_kernel(plan.assignment_for("ffn1").kernel).name
        assert planned.kernel_for("ffn1") is kernel

    def test_matmul_routes_through_assigned_kernel(self, rng):
        layer = LayerShape("fc", GEMMShape(m=32, n=16, k=48))
        spec = KernelSpec("shfl-bw", kwargs={"vector_size": 8}, label="Shfl-BW,V=8")
        tuner = Autotuner(candidates=(spec,))
        plan = tuner.plan("transformer", "V100", 0.75, layers=[layer])
        planned = PlannedModel(plan, layers=[layer])

        weight = rng.normal(size=(32, 48))
        weight[weight == 0.0] = 0.1
        pruned, result = prune_shflbw(weight, sparsity=0.75, vector_size=8, seed=0)
        activations = rng.normal(size=(48, 16))
        out = planned.matmul("fc", pruned, activations, row_indices=result.row_indices)
        np.testing.assert_allclose(out, pruned @ activations, atol=1e-10)

    def test_dense_assignment_is_exact(self, rng):
        layer = LayerShape("fc", GEMMShape(m=32, n=16, k=48))
        spec = KernelSpec("dense", label="Dense")
        plan = Autotuner(candidates=(spec,)).plan(
            "transformer", "V100", 0.75, layers=[layer]
        )
        planned = PlannedModel(plan, layers=[layer])
        weight = rng.normal(size=(32, 48))
        activations = rng.normal(size=(48, 16))
        np.testing.assert_allclose(
            planned.matmul("fc", weight, activations), weight @ activations, atol=1e-12
        )

    def test_gemm_plan_builds_its_own_layer(self):
        plan = Autotuner().plan_gemm((256, 32, 256), "V100", 0.75)
        planned = PlannedModel(plan)
        assert list(planned.layers) == [plan.assignments[0].layer]

    def test_mismatched_layers_rejected(self):
        plan = Autotuner().plan("transformer", "V100", 0.75)
        with pytest.raises(ValueError, match="absent"):
            PlannedModel(plan, layers=[gemm_layer((64, 16, 64))])


class TestMeasuredRefinement:
    def test_probe_shape_is_downscaled_and_aligned(self):
        refiner = MeasuredRefiner(max_dim=256)
        m, n, k = refiner.probe_shape(LayerShape("big", GEMMShape(4096, 300, 1024)))
        assert (m, n, k) == (256, 256, 256)
        m, n, k = refiner.probe_shape(LayerShape("small", GEMMShape(100, 8, 70)))
        assert m % 64 == 0 and k % 64 == 0 and n % 16 == 0
        assert m >= 64 and n >= 16 and k >= 64

    def test_probe_operands_are_deterministic_and_sparse(self):
        refiner = MeasuredRefiner(seed=7)
        layer = gemm_layer((256, 64, 256))
        w1, a1 = refiner.probe_operands(layer, 0.25)
        w2, a2 = refiner.probe_operands(layer, 0.25)
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(a1, a2)
        density = np.count_nonzero(w1) / w1.size
        assert 0.15 < density < 0.35

    def test_measure_failure_returns_none(self):
        class Exploding:
            def prepare_cached(self, weight):
                raise RuntimeError("boom")

        refiner = MeasuredRefiner(repeats=1)
        assert refiner.measure(Exploding(), gemm_layer((64, 16, 64)), 0.5) is None

    def test_refine_falls_back_to_analytical_winner(self):
        class Exploding:
            def prepare_cached(self, weight):
                raise RuntimeError("boom")

        refiner = MeasuredRefiner(repeats=1, top_k=2)
        scored = [(None, Exploding(), 1.0), (None, Exploding(), 2.0)]
        assert refiner.refine(scored, gemm_layer((64, 16, 64)), 0.5) == 0

    def test_measured_plan_smoke(self):
        """Measured mode produces a feasible plan tagged as measured."""
        tuner = Autotuner(refiner=MeasuredRefiner(top_k=2, repeats=1, max_dim=128))
        plan = tuner.plan("transformer", "V100", 0.75)
        assert plan.mode == "measured"
        pool = {spec.display_label for spec in tuner.candidates}
        assert {a.label for a in plan.assignments} <= pool

    def test_measured_and_model_plans_cache_separately(self, tmp_path):
        model_tuner = Autotuner(cache_dir=tmp_path)
        model_tuner.plan_gemm((256, 32, 256), "V100", 0.75)
        measured_tuner = Autotuner(
            cache_dir=tmp_path, refiner=MeasuredRefiner(top_k=1, repeats=1)
        )
        measured_tuner.plan_gemm((256, 32, 256), "V100", 0.75)
        assert measured_tuner.stats.hits == 0
        assert measured_tuner.stats.misses == 1
