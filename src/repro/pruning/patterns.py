"""Single-shot pruners for every sparsity pattern in the paper's evaluation.

* :class:`UnstructuredPruner` — global magnitude top-k (no structure),
* :class:`BlockwisePruner` — keep whole ``V x V`` blocks by summed score,
* :class:`VectorwisePruner` — keep ``V x 1`` column vectors within fixed
  consecutive row groups,
* :class:`BalancedPruner` — keep the top ``n`` of every ``m`` consecutive
  values in a row (2:4 by default, sparsity fixed at ``1 - n/m``),
* :class:`ShflBWPruner` — the paper's pattern, delegating to the two-stage
  search of :mod:`repro.core.pruning`.
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternKind
from ..core.pruning import search_shflbw_pattern, unstructured_mask, vector_wise_mask
from .base import Pruner

__all__ = [
    "UnstructuredPruner",
    "BlockwisePruner",
    "VectorwisePruner",
    "BalancedPruner",
    "ShflBWPruner",
    "make_pruner",
]


class UnstructuredPruner(Pruner):
    """Global magnitude pruning with no structural constraint."""

    pattern = PatternKind.UNSTRUCTURED
    name = "unstructured"

    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        return unstructured_mask(scores, 1.0 - sparsity)


class BlockwisePruner(Pruner):
    """Block-wise pruning: keep the ``V x V`` blocks with the largest summed score."""

    pattern = PatternKind.BLOCKWISE
    name = "blockwise"

    def __init__(self, block_size: int = 32):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        m, k = scores.shape
        v = self.block_size
        if m % v or k % v:
            raise ValueError(f"matrix shape {scores.shape} is not divisible by V={v}")
        density = 1.0 - sparsity
        block_scores = scores.reshape(m // v, v, k // v, v).sum(axis=(1, 3))
        block_mask = unstructured_mask(block_scores, density)
        return np.kron(block_mask, np.ones((v, v), dtype=bool))

    def extra_info(self) -> dict:
        return {"block_size": self.block_size}


class VectorwisePruner(Pruner):
    """Vector-wise pruning on fixed consecutive row groups of size ``V``."""

    pattern = PatternKind.VECTORWISE
    name = "vectorwise"

    def __init__(self, vector_size: int = 32):
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        self.vector_size = vector_size

    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        return vector_wise_mask(scores, 1.0 - sparsity, self.vector_size)

    def extra_info(self) -> dict:
        return {"vector_size": self.vector_size}


class BalancedPruner(Pruner):
    """Balanced ``n:m`` pruning (2-in-4 by default).

    The achievable sparsity is fixed at ``1 - n/m``; requesting a different
    target raises ``ValueError`` so experiments cannot silently mix patterns
    and sparsity levels the hardware does not support (the A100 restriction
    the paper points out).
    """

    pattern = PatternKind.BALANCED
    name = "balanced"

    def __init__(self, n: int = 2, m: int = 4):
        if m <= 0 or not 0 < n <= m:
            raise ValueError("need 0 < n <= m")
        self.n = n
        self.m = m

    @property
    def fixed_sparsity(self) -> float:
        return 1.0 - self.n / self.m

    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        if abs(sparsity - self.fixed_sparsity) > 1e-9:
            raise ValueError(
                f"balanced {self.n}:{self.m} sparsity is fixed at "
                f"{self.fixed_sparsity:.0%}, got {sparsity:.0%}"
            )
        rows, k = scores.shape
        if k % self.m:
            raise ValueError(f"K={k} must be a multiple of m={self.m}")
        groups = scores.reshape(rows, k // self.m, self.m)
        order = np.argsort(-groups, axis=2, kind="stable")
        mask = np.zeros_like(groups, dtype=bool)
        np.put_along_axis(mask, order[:, :, : self.n], True, axis=2)
        return mask.reshape(rows, k)

    def extra_info(self) -> dict:
        return {"n": self.n, "m": self.m}


class ShflBWPruner(Pruner):
    """Shuffled block-wise pruning via the two-stage search of Section 5."""

    pattern = PatternKind.SHFLBW
    name = "shfl-bw"

    def __init__(
        self,
        vector_size: int = 32,
        *,
        beta_factor: float = 2.0,
        kmeans_iters: int = 10,
        seed: int = 0,
    ):
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        self.vector_size = vector_size
        self.beta_factor = beta_factor
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self._last_result = None

    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        result = search_shflbw_pattern(
            scores,
            density=1.0 - sparsity,
            vector_size=self.vector_size,
            beta_factor=self.beta_factor,
            kmeans_iters=self.kmeans_iters,
            seed=self.seed,
        )
        self._last_result = result
        return result.mask

    def extra_info(self) -> dict:
        info = {"vector_size": self.vector_size, "beta_factor": self.beta_factor}
        if self._last_result is not None:
            info["row_indices"] = self._last_result.row_indices
            info["groups"] = self._last_result.groups
            info["retained_fraction"] = self._last_result.retained_fraction
        return info


def make_pruner(pattern: str, **kwargs) -> Pruner:
    """Construct a pruner by pattern name (``vector_size`` / ``block_size`` /
    ``n`` / ``m`` forwarded to the constructor)."""
    kind = PatternKind.parse(pattern)
    if kind is PatternKind.UNSTRUCTURED:
        return UnstructuredPruner()
    if kind is PatternKind.BLOCKWISE:
        return BlockwisePruner(**kwargs)
    if kind is PatternKind.VECTORWISE:
        return VectorwisePruner(**kwargs)
    if kind is PatternKind.BALANCED:
        return BalancedPruner(**kwargs)
    if kind is PatternKind.SHFLBW:
        return ShflBWPruner(**kwargs)
    raise ValueError(f"no pruner for pattern {pattern!r}")
