"""Grow-and-prune pruning workflow (Ma et al., 2021).

The paper prunes Transformer and ResNet50 with a scheduled grow-and-prune
workflow (Section 6.1): instead of a single pruning event, the mask is
revisited over multiple rounds — weights are pruned to the scheduled sparsity,
then a fraction of the pruned positions with the highest regrowth score is
re-activated ("grown") and the model trains on before the next pruning round.
Revisiting the mask lets early mistakes be corrected, which improves the final
accuracy of pattern-constrained pruning in particular.

The training step between rounds is a callback (``update_fn``), so the
workflow runs against the numpy proxies of :mod:`repro.nn` or standalone (no
callback) for algorithmic tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .base import PruneResult, Pruner
from .importance import magnitude_scores
from .schedule import SparsitySchedule, constant_schedule

__all__ = ["GrowPruneConfig", "GrowPrunePruner"]

UpdateFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
ScoreFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class GrowPruneConfig:
    """Hyper-parameters of the grow-and-prune loop.

    Attributes
    ----------
    num_rounds:
        Prune / grow / train rounds.
    grow_fraction:
        Fraction of the *pruned* positions regrown each round.
    schedule:
        Sparsity schedule across rounds (defaults to constant at the target).
    """

    num_rounds: int = 4
    grow_fraction: float = 0.1
    schedule: SparsitySchedule | None = None

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not 0.0 <= self.grow_fraction < 1.0:
            raise ValueError("grow_fraction must be in [0, 1)")


class GrowPrunePruner:
    """Scheduled grow-and-prune around a single-shot pattern pruner."""

    def __init__(self, projection: Pruner, config: GrowPruneConfig | None = None):
        self.projection = projection
        self.config = config or GrowPruneConfig()

    def run(
        self,
        weights: np.ndarray,
        sparsity: float,
        *,
        update_fn: UpdateFn | None = None,
        regrow_score_fn: ScoreFn | None = None,
    ) -> PruneResult:
        """Run the grow-and-prune rounds and return the final pruned result.

        Parameters
        ----------
        weights:
            Initial dense weights.
        sparsity:
            Final target sparsity.
        update_fn:
            ``update_fn(weights, mask) -> weights`` — trains the masked
            weights between rounds (identity if omitted).
        regrow_score_fn:
            Score used to pick which pruned weights to regrow; defaults to
            the magnitude of the (pre-masking) weights.
        """
        w = np.asarray(weights, dtype=np.float64).copy()
        if w.ndim != 2:
            raise ValueError("weights must be a 2-D matrix")
        cfg = self.config
        schedule = cfg.schedule or constant_schedule(sparsity)

        result = self.projection.prune(w, schedule.sparsity_at(0))
        for round_idx in range(cfg.num_rounds):
            target = schedule.sparsity_at(round_idx)
            # Prune to the scheduled sparsity.
            result = self.projection.prune(w, target)
            mask = result.mask.copy()
            # Grow back a fraction of the pruned positions with the highest
            # regrowth score.
            if cfg.grow_fraction > 0:
                scores = (
                    regrow_score_fn(w) if regrow_score_fn is not None else magnitude_scores(w)
                )
                pruned_positions = np.flatnonzero(~mask.reshape(-1))
                num_grow = int(round(cfg.grow_fraction * len(pruned_positions)))
                if num_grow > 0:
                    pruned_scores = scores.reshape(-1)[pruned_positions]
                    order = np.argsort(-pruned_scores, kind="stable")[:num_grow]
                    mask.reshape(-1)[pruned_positions[order]] = True
            # Train the (partially regrown) masked weights.
            if update_fn is not None:
                w = np.asarray(update_fn(w * mask, mask), dtype=np.float64)
            else:
                w = w * mask

        # Final hard pruning to the exact target pattern/sparsity.
        final = self.projection.prune(w, sparsity)
        final.info["grow_prune_rounds"] = cfg.num_rounds
        return final
