"""Sparsity schedules for gradual / iterative pruning workflows.

The ADMM and grow-and-prune workflows raise sparsity over several rounds
rather than in one shot.  A :class:`SparsitySchedule` maps a step (or round)
index to the sparsity target to apply at that point.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SparsitySchedule", "constant_schedule", "linear_schedule", "cubic_schedule"]


@dataclass(frozen=True)
class SparsitySchedule:
    """Sparsity as a function of the training/pruning step.

    Attributes
    ----------
    initial_sparsity, final_sparsity:
        Sparsity at ``begin_step`` and at/after ``end_step``.
    begin_step, end_step:
        Steps between which the sparsity ramps.
    exponent:
        Ramp shape: 1.0 is linear; 3.0 is the cubic "automated gradual
        pruning" schedule commonly used with magnitude pruning.
    """

    initial_sparsity: float = 0.0
    final_sparsity: float = 0.75
    begin_step: int = 0
    end_step: int = 1
    exponent: float = 3.0

    def __post_init__(self) -> None:
        for name, value in (
            ("initial_sparsity", self.initial_sparsity),
            ("final_sparsity", self.final_sparsity),
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.end_step < self.begin_step:
            raise ValueError("end_step must be >= begin_step")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def sparsity_at(self, step: int) -> float:
        """Sparsity target at the given step."""
        if step <= self.begin_step:
            return self.initial_sparsity
        if step >= self.end_step or self.end_step == self.begin_step:
            return self.final_sparsity
        progress = (step - self.begin_step) / (self.end_step - self.begin_step)
        ramp = 1.0 - (1.0 - progress) ** self.exponent
        return self.initial_sparsity + (self.final_sparsity - self.initial_sparsity) * ramp

    def targets(self, num_steps: int) -> list[float]:
        """Sparsity targets for steps ``0 .. num_steps - 1``."""
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        return [self.sparsity_at(step) for step in range(num_steps)]


def constant_schedule(sparsity: float) -> SparsitySchedule:
    """A schedule that always returns the same sparsity."""
    return SparsitySchedule(
        initial_sparsity=sparsity, final_sparsity=sparsity, begin_step=0, end_step=0
    )


def linear_schedule(final_sparsity: float, num_steps: int, *, initial_sparsity: float = 0.0) -> SparsitySchedule:
    """Linear ramp from ``initial_sparsity`` to ``final_sparsity``."""
    return SparsitySchedule(
        initial_sparsity=initial_sparsity,
        final_sparsity=final_sparsity,
        begin_step=0,
        end_step=max(1, num_steps - 1),
        exponent=1.0,
    )


def cubic_schedule(final_sparsity: float, num_steps: int, *, initial_sparsity: float = 0.0) -> SparsitySchedule:
    """Cubic ("automated gradual pruning") ramp."""
    return SparsitySchedule(
        initial_sparsity=initial_sparsity,
        final_sparsity=final_sparsity,
        begin_step=0,
        end_step=max(1, num_steps - 1),
        exponent=3.0,
    )
