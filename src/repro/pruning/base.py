"""Common pruner interface.

A pruner turns an importance-score matrix into a boolean keep-mask that
satisfies its sparsity pattern, and applies that mask to a weight matrix.
Every pattern discussed in the paper (unstructured, block-wise, vector-wise,
balanced n:m, Shfl-BW) gets a concrete pruner; the training-time workflows
(ADMM, grow-and-prune) compose these single-shot pruners over time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..core.pattern import PatternKind
from .importance import magnitude_scores

__all__ = ["PruneResult", "Pruner"]


@dataclass
class PruneResult:
    """Outcome of pruning one weight matrix.

    Attributes
    ----------
    weights:
        Masked weight matrix (same shape as the input).
    mask:
        Boolean keep-mask.
    pattern:
        Pattern the mask satisfies.
    info:
        Pattern-specific extras (e.g. ``row_indices`` for Shfl-BW).
    """

    weights: np.ndarray
    mask: np.ndarray
    pattern: PatternKind
    info: dict = field(default_factory=dict)

    @property
    def sparsity(self) -> float:
        """Fraction of pruned weights."""
        return 1.0 - float(self.mask.mean())

    @property
    def density(self) -> float:
        """Fraction of kept weights."""
        return float(self.mask.mean())

    @property
    def retained_score(self) -> float:
        """Sum of |weights| covered by the mask (magnitude retained)."""
        return float(np.abs(self.weights).sum())


class Pruner(abc.ABC):
    """Single-shot pattern pruner."""

    #: Pattern produced by this pruner.
    pattern: PatternKind = PatternKind.UNSTRUCTURED
    #: Display name for reports.
    name: str = "pruner"

    @abc.abstractmethod
    def mask(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        """Boolean keep-mask for the given importance scores and sparsity."""

    def prune(
        self,
        weights: np.ndarray,
        sparsity: float,
        *,
        scores: np.ndarray | None = None,
    ) -> PruneResult:
        """Prune ``weights`` to the target sparsity.

        ``scores`` defaults to the weight magnitudes (the paper's criterion).
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be a 2-D matrix")
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        if scores is None:
            scores = magnitude_scores(weights)
        keep = self.mask(np.asarray(scores, dtype=np.float64), sparsity)
        return PruneResult(
            weights=weights * keep,
            mask=keep,
            pattern=self.pattern,
            info=self.extra_info(),
        )

    def extra_info(self) -> dict:
        """Pattern-specific metadata attached to the result (overridable)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} pattern={self.pattern.value}>"
