"""Weight-importance scores used by the pruners.

The paper uses weight magnitude as the importance score (Section 5, citing
Han et al.); gradient-based saliency is provided as well because the ADMM and
grow-and-prune workflows (Section 6.1) can use it when gradients are
available from the training substrate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["magnitude_scores", "gradient_scores", "taylor_scores", "normalize_scores"]


def magnitude_scores(weights: np.ndarray) -> np.ndarray:
    """Absolute value of each weight (the paper's criterion)."""
    return np.abs(np.asarray(weights, dtype=np.float64))


def gradient_scores(weights: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Saliency ``|w * g|`` — first-order Taylor expansion of the loss change."""
    weights = np.asarray(weights, dtype=np.float64)
    gradients = np.asarray(gradients, dtype=np.float64)
    if weights.shape != gradients.shape:
        raise ValueError("weights and gradients must have the same shape")
    return np.abs(weights * gradients)


def taylor_scores(weights: np.ndarray, gradients: np.ndarray) -> np.ndarray:
    """Second-order-free Taylor criterion ``(w * g)^2``."""
    weights = np.asarray(weights, dtype=np.float64)
    gradients = np.asarray(gradients, dtype=np.float64)
    if weights.shape != gradients.shape:
        raise ValueError("weights and gradients must have the same shape")
    return (weights * gradients) ** 2


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Scale scores to sum to 1 (useful when comparing retained fractions)."""
    scores = np.asarray(scores, dtype=np.float64)
    total = scores.sum()
    if total <= 0:
        return np.full_like(scores, 1.0 / scores.size)
    return scores / total
