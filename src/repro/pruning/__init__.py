"""Pruning algorithms: single-shot pattern pruners and the training-time
workflows (ADMM, grow-and-prune) used in the paper's evaluation."""

from .admm import ADMMConfig, ADMMPruner
from .base import PruneResult, Pruner
from .grow_prune import GrowPruneConfig, GrowPrunePruner
from .importance import (
    gradient_scores,
    magnitude_scores,
    normalize_scores,
    taylor_scores,
)
from .patterns import (
    BalancedPruner,
    BlockwisePruner,
    ShflBWPruner,
    UnstructuredPruner,
    VectorwisePruner,
    make_pruner,
)
from .schedule import (
    SparsitySchedule,
    constant_schedule,
    cubic_schedule,
    linear_schedule,
)

__all__ = [
    "ADMMConfig",
    "ADMMPruner",
    "PruneResult",
    "Pruner",
    "GrowPruneConfig",
    "GrowPrunePruner",
    "gradient_scores",
    "magnitude_scores",
    "normalize_scores",
    "taylor_scores",
    "BalancedPruner",
    "BlockwisePruner",
    "ShflBWPruner",
    "UnstructuredPruner",
    "VectorwisePruner",
    "make_pruner",
    "SparsitySchedule",
    "constant_schedule",
    "cubic_schedule",
    "linear_schedule",
]
