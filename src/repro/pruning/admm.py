"""ADMM-based pruning workflow (Zhang et al., ECCV'18).

The paper trains GNMT with ADMM pruning (Section 6.1): the weights are pulled
toward a pattern-feasible auxiliary variable while training continues, so by
the time the hard pruning step happens the weight distribution has already
adapted to the pattern and less accuracy is lost.

The classic formulation alternates three updates per round:

* **primal (W)** — gradient steps on the task loss plus the augmented
  Lagrangian penalty ``rho/2 * ||W - Z + U||^2``,
* **auxiliary (Z)** — projection of ``W + U`` onto the sparsity pattern
  (here: whatever single-shot :class:`~repro.pruning.base.Pruner` is wrapped),
* **dual (U)** — ``U += W - Z``.

The task-loss gradient is supplied through a callback so the same workflow
drives the numpy proxy models of :mod:`repro.nn` or any other substrate; if
no callback is given the primal update only follows the penalty term, in
which case ADMM converges to the plain pattern projection (useful for tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .base import PruneResult, Pruner

__all__ = ["ADMMConfig", "ADMMPruner"]

GradientFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ADMMConfig:
    """Hyper-parameters of the ADMM pruning loop.

    Attributes
    ----------
    rho:
        Augmented-Lagrangian penalty strength.
    num_rounds:
        Outer ADMM rounds (Z / U updates).
    steps_per_round:
        Primal gradient steps between consecutive Z updates.
    learning_rate:
        Step size of the primal update.
    """

    rho: float = 1.0e-2
    num_rounds: int = 10
    steps_per_round: int = 10
    learning_rate: float = 1.0e-2

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.learning_rate <= 0:
            raise ValueError("rho and learning_rate must be positive")
        if self.num_rounds <= 0 or self.steps_per_round <= 0:
            raise ValueError("num_rounds and steps_per_round must be positive")


class ADMMPruner:
    """Prune a weight matrix with the ADMM workflow around a pattern pruner."""

    def __init__(self, projection: Pruner, config: ADMMConfig | None = None):
        self.projection = projection
        self.config = config or ADMMConfig()

    def run(
        self,
        weights: np.ndarray,
        sparsity: float,
        *,
        gradient_fn: GradientFn | None = None,
    ) -> PruneResult:
        """Run the ADMM loop and return the hard-pruned result.

        Parameters
        ----------
        weights:
            Initial dense weights.
        sparsity:
            Target sparsity for the pattern projection.
        gradient_fn:
            Callback returning the task-loss gradient for the current
            weights; ``None`` disables the task term.
        """
        w = np.asarray(weights, dtype=np.float64).copy()
        if w.ndim != 2:
            raise ValueError("weights must be a 2-D matrix")
        cfg = self.config
        z = self.projection.prune(w, sparsity).weights
        u = np.zeros_like(w)

        for _ in range(cfg.num_rounds):
            for _ in range(cfg.steps_per_round):
                grad = gradient_fn(w) if gradient_fn is not None else 0.0
                penalty_grad = cfg.rho * (w - z + u)
                w = w - cfg.learning_rate * (grad + penalty_grad)
            z = self.projection.prune(w + u, sparsity).weights
            u = u + w - z

        # Hard pruning: apply the final pattern mask to the trained weights.
        final = self.projection.prune(w, sparsity)
        final.info["admm_rounds"] = cfg.num_rounds
        final.info["primal_dual_gap"] = float(np.abs(w * final.mask - z).mean())
        return final
