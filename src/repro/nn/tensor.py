"""A minimal reverse-mode automatic-differentiation engine on numpy arrays.

The accuracy side of the paper's evaluation (Table 1, Figure 2) requires
training and fine-tuning pruned models.  PyTorch is not available in this
environment, so this module provides the smallest autograd core that supports
the proxy models in :mod:`repro.models`: dense/elementwise ops, matmul,
reductions, indexing/embedding gather, and the shape manipulations the layers
need.  It is intentionally simple — eager, define-by-run, float64 — and tuned
for clarity over speed (the proxy models are tiny).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling gradient tracking (for evaluation loops)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether newly created tensors will track gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like values (stored as ``float64``).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape), requires_grad=requires_grad)

    @classmethod
    def randn(cls, *shape: int, rng: np.random.Generator | None = None, scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return cls(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    @staticmethod
    def as_tensor(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self) = 1)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None or not node._parents:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(node._parents, parent_grads, strict=True):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad
        # Leaves whose gradients are still pending (e.g. self is a leaf).
        for node_id, pending in grads.items():
            for node in order:
                if id(node) == node_id:
                    node._accumulate(pending)
                    break

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.data.shape),
                _unbroadcast(grad * self.data, other.data.shape),
            )

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.data.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape),
            )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray):
            return (grad * exponent * np.power(self.data, exponent - 1),)

        return self._make(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)

        def backward(grad: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return grad @ b.T, a.T @ grad
            # Batched matmul: contract over the batch dimensions.
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, a.shape),
                _unbroadcast(grad_b, b.shape),
            )

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out**2),)

        return self._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * out * (1.0 - out),)

        return self._make(out, (self,), backward)

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out,)

        return self._make(out, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / out,)

        return self._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray):
            g = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(g, self.data.shape).copy(),)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=True)
        mask = self.data == out

        def backward(grad: np.ndarray):
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis)
            share = mask / mask.sum(axis=axis, keepdims=True)
            return (g * share,)

        result = out if keepdims else out.squeeze(axis)
        return self._make(result, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return self._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(self.data[index], (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style gather: select rows by an integer index array."""
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
            return (full,)

        return self._make(self.data[indices], (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray):
            splits = np.cumsum(sizes)[:-1]
            return tuple(np.split(grad, splits, axis=axis))

        parents = tuple(tensors)
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray):
            return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

        parents = tuple(tensors)
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out
