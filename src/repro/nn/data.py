"""Synthetic datasets for the proxy accuracy experiments.

The paper evaluates on WMT translation (Transformer, GNMT) and ImageNet
classification (ResNet50); neither dataset is available offline, so the
accuracy experiments use synthetic tasks that exercise the same model
families and loss surfaces:

* :class:`SyntheticTranslationTask` — sequence-to-sequence token mapping with
  a per-position dependency (the target is a vocabulary permutation of the
  source combined with its neighbour), scored with BLEU like the paper's
  translation models,
* :class:`SyntheticClassificationTask` — image classification over classes
  defined by localised spatial patterns plus noise, scored with top-1
  accuracy like ResNet50.

Both generators are deterministic given their seed, and both expose
train/validation splits of (inputs, targets) numpy batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Batch", "SyntheticTranslationTask", "SyntheticClassificationTask"]


@dataclass(frozen=True)
class Batch:
    """One batch of inputs and targets."""

    inputs: np.ndarray
    targets: np.ndarray


@dataclass
class SyntheticTranslationTask:
    """Token-sequence "translation": position-dependent vocabulary mapping.

    The source is a random token sequence; the target at position ``t`` is
    ``perm[(src[t] + t) % vocab]`` — the model has to combine the token
    identity with its position, which requires the (prunable) intermediate
    layers rather than a plain embedding-to-output shortcut, so pruning
    damage shows up as BLEU loss while the task remains learnable in seconds
    at proxy scale.
    """

    vocab_size: int = 16
    seq_len: int = 12
    num_train: int = 1024
    num_valid: int = 128
    seed: int = 0
    _perm: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size < 4 or self.seq_len < 2:
            raise ValueError("vocab_size must be >= 4 and seq_len >= 2")
        rng = np.random.default_rng(self.seed)
        self._perm = rng.permutation(self.vocab_size)

    def _make_split(self, count: int, seed: int) -> Batch:
        rng = np.random.default_rng(seed)
        src = rng.integers(0, self.vocab_size, size=(count, self.seq_len))
        positions = np.arange(self.seq_len)[None, :]
        tgt = self._perm[(src + positions) % self.vocab_size]
        return Batch(inputs=src, targets=tgt)

    def train_split(self) -> Batch:
        return self._make_split(self.num_train, self.seed + 1)

    def valid_split(self) -> Batch:
        return self._make_split(self.num_valid, self.seed + 2)

    def batches(self, split: Batch, batch_size: int, *, rng: np.random.Generator | None = None):
        """Yield shuffled mini-batches from a split."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = rng or np.random.default_rng(self.seed + 3)
        order = rng.permutation(len(split.inputs))
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            yield Batch(inputs=split.inputs[idx], targets=split.targets[idx])


@dataclass
class SyntheticClassificationTask:
    """Tiny image-classification task standing in for ImageNet.

    Each class is defined by a distinct spatial template; an example is its
    class template plus Gaussian noise, so a small CNN can learn it but the
    decision boundary degrades gracefully as weights are pruned.
    """

    num_classes: int = 10
    image_size: int = 8
    channels: int = 3
    num_train: int = 512
    num_valid: int = 128
    noise: float = 0.6
    seed: int = 0
    _templates: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(self.seed)
        self._templates = rng.normal(
            0.0, 1.0, size=(self.num_classes, self.channels, self.image_size, self.image_size)
        )

    def _make_split(self, count: int, seed: int) -> Batch:
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, self.num_classes, size=count)
        images = self._templates[labels] + rng.normal(
            0.0, self.noise, size=(count, self.channels, self.image_size, self.image_size)
        )
        return Batch(inputs=images, targets=labels)

    def train_split(self) -> Batch:
        return self._make_split(self.num_train, self.seed + 1)

    def valid_split(self) -> Batch:
        return self._make_split(self.num_valid, self.seed + 2)

    def batches(self, split: Batch, batch_size: int, *, rng: np.random.Generator | None = None):
        """Yield shuffled mini-batches from a split."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = rng or np.random.default_rng(self.seed + 3)
        order = rng.permutation(len(split.inputs))
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            yield Batch(inputs=split.inputs[idx], targets=split.targets[idx])
