"""Evaluation metrics used by the accuracy experiments.

* :func:`bleu_score` — corpus BLEU with the standard brevity penalty and
  up-to-4-gram precisions, used for the Transformer / GNMT proxies (the paper
  reports BLEU on WMT),
* :func:`top1_accuracy` — classification accuracy, used for the ResNet proxy
  (the paper reports ImageNet top-1),
* :func:`token_accuracy` / :func:`perplexity` — auxiliary diagnostics.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

__all__ = ["bleu_score", "token_accuracy", "top1_accuracy", "perplexity"]


def _ngram_counts(tokens: list[int], order: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1)
    )


def bleu_score(
    references: np.ndarray | list[list[int]],
    hypotheses: np.ndarray | list[list[int]],
    *,
    max_order: int = 4,
    smooth: float = 1.0e-9,
) -> float:
    """Corpus-level BLEU (0-100) of hypothesis token sequences.

    Parameters
    ----------
    references, hypotheses:
        Sequences of token ids; arrays of shape ``(num_sentences, seq_len)``
        or lists of token lists.
    max_order:
        Highest n-gram order (4, as in standard BLEU).
    smooth:
        Additive smoothing so empty n-gram matches do not zero the score.
    """
    refs = [list(map(int, r)) for r in references]
    hyps = [list(map(int, h)) for h in hypotheses]
    if len(refs) != len(hyps):
        raise ValueError("references and hypotheses must have the same length")
    if not refs:
        return 0.0

    precisions = []
    for order in range(1, max_order + 1):
        matched = 0
        total = 0
        for ref, hyp in zip(refs, hyps, strict=True):
            ref_counts = _ngram_counts(ref, order)
            hyp_counts = _ngram_counts(hyp, order)
            overlap = sum((ref_counts & hyp_counts).values())
            matched += overlap
            total += max(0, len(hyp) - order + 1)
        precisions.append((matched + smooth) / (total + smooth) if total else smooth)

    ref_len = sum(len(r) for r in refs)
    hyp_len = sum(len(h) for h in hyps)
    if hyp_len == 0:
        return 0.0
    brevity = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    geo_mean = math.exp(sum(math.log(p) for p in precisions) / max_order)
    return 100.0 * brevity * geo_mean


def token_accuracy(references: np.ndarray, hypotheses: np.ndarray) -> float:
    """Fraction of positions where the predicted token matches the reference."""
    references = np.asarray(references)
    hypotheses = np.asarray(hypotheses)
    if references.shape != hypotheses.shape:
        raise ValueError("shape mismatch between references and hypotheses")
    if references.size == 0:
        return 0.0
    return float((references == hypotheses).mean())


def top1_accuracy(labels: np.ndarray, logits_or_preds: np.ndarray) -> float:
    """Top-1 accuracy (in percent) from logits ``(N, C)`` or predictions ``(N,)``."""
    labels = np.asarray(labels)
    arr = np.asarray(logits_or_preds)
    preds = arr.argmax(axis=-1) if arr.ndim == labels.ndim + 1 else arr
    if preds.shape != labels.shape:
        raise ValueError("prediction and label shapes do not match")
    if labels.size == 0:
        return 0.0
    return 100.0 * float((preds == labels).mean())


def perplexity(mean_cross_entropy: float) -> float:
    """Perplexity from a mean cross-entropy (natural log)."""
    return float(math.exp(min(50.0, mean_cross_entropy)))
