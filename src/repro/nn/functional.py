"""Functional building blocks on top of the autograd :class:`Tensor`.

Softmax / log-softmax / losses / normalisation used by the proxy models.
Everything is composed from the differentiable primitives of
:mod:`repro.nn.tensor`, so no bespoke backward passes are needed here.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "layer_norm",
    "dropout",
    "one_hot",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label array (last axis added)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range")
    out = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, labels[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray, *, ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (..., C) and integer ``labels`` (...).

    ``ignore_index`` positions (e.g. padding tokens) contribute nothing to the
    loss or the normalisation.
    """
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = logits.shape[-1]
    log_probs = log_softmax(logits, axis=-1)
    safe_labels = labels.copy()
    weights = np.ones(labels.shape, dtype=np.float64)
    if ignore_index is not None:
        ignored = labels == ignore_index
        safe_labels[ignored] = 0
        weights[ignored] = 0.0
    target = one_hot(safe_labels, num_classes) * weights[..., None]
    total = -(log_probs * Tensor(target)).sum()
    count = max(1.0, float(weights.sum()))
    return total * (1.0 / count)


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = Tensor.as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, *, eps: float = 1.0e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    normed = centred / (var + eps).sqrt()
    return normed * weight + bias


def dropout(x: Tensor, p: float, *, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)
