"""Optimisers for the proxy-model training loops."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging / divergence checks).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class Optimizer:
    """Base optimiser: holds parameters, applies updates in-place."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1.0e-2,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity, strict=True):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1.0e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1.0e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        for param, m, v in zip(self.parameters, self._m, self._v, strict=True):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**self._step)
            v_hat = v / (1 - beta2**self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
