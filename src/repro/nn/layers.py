"""Neural-network layers on top of the autograd engine.

Only what the proxy models need: linear / embedding / normalisation layers,
2-D convolution and pooling (for the ResNet proxy), an LSTM (for the GNMT
proxy) and multi-head self-attention (for the Transformer proxy).

Every layer whose weight is a candidate for the paper's weight pruning marks
it *prunable*; :meth:`Module.prunable_parameters` walks the module tree and
returns those 2-D weight matrices, which is what the pruning workflows and
the accuracy experiments operate on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..sparse.spconv import Conv2dSpec, col2im, im2col
from .functional import dropout, layer_norm, softmax
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "Sequential",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "LSTMCell",
    "LSTM",
    "MultiHeadSelfAttention",
]


class Module:
    """Base class: parameter registration, traversal and train/eval mode."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self._prunable: set[str] = set()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration (automatic via attribute assignment)
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_prunable(self, name: str) -> None:
        """Mark one of this module's parameters as a pruning target."""
        if name not in self._parameters:
            raise KeyError(f"{name!r} is not a registered parameter")
        self._prunable.add(name)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def prunable_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """2-D weight matrices subject to weight pruning."""
        for name in self._prunable:
            yield f"{prefix}{name}", self._parameters[name]
        for name, module in self._modules.items():
            yield from module.prunable_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value, keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _init_matrix(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> Tensor:
    """Kaiming-uniform-ish initialisation used by every weight matrix."""
    bound = 1.0 / np.sqrt(max(1, fan_in))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


class Linear(Module):
    """Fully connected layer ``y = x @ W^T + b`` with a prunable weight.

    The weight has shape ``(out_features, in_features)``, matching the
    ``(M, K)`` orientation of the SpMM kernels (output rows are the sparse
    dimension).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = _init_matrix(rng, in_features, (out_features, in_features))
        self.register_prunable("weight")
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table (not a pruning target in the paper)."""

    def __init__(self, num_embeddings: int, dim: int, *, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Tensor(rng.normal(0.0, 0.1, size=(num_embeddings, dim)), requires_grad=True)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(token_ids, dtype=np.int64))


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1.0e-5):
        super().__init__()
        self.eps = eps
        self.weight = Tensor(np.ones(dim), requires_grad=True)
        self.bias = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, eps=self.eps)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) for NCHW feature maps."""

    def __init__(self, channels: int, *, eps: float = 1.0e-5, momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(channels), requires_grad=True)
        self.bias = Tensor(np.zeros(channels), requires_grad=True)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mean
            var = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            centred = x - mean
        normed = centred / (var + self.eps).sqrt()
        scale = self.weight.reshape(1, -1, 1, 1)
        shift = self.bias.reshape(1, -1, 1, 1)
        return normed * scale + shift


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for idx, module in enumerate(modules):
            setattr(self, f"layer{idx}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x


class Conv2d(Module):
    """2-D convolution via im2col, with a prunable GEMM-view weight.

    The weight is stored directly in the implicit-GEMM layout
    ``(out_channels, in_channels * KH * KW)`` — the same matrix the Shfl-BW
    convolution kernel prunes and compresses.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.spec = Conv2dSpec(
            in_channels=in_channels,
            out_channels=out_channels,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
        )
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = _init_matrix(rng, fan_in, (out_channels, fan_in))
        self.register_prunable("weight")
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        spec = self.spec
        n, _, h, w = x.shape
        oh, ow = spec.output_hw(h, w)
        cols = im2col(x.data, spec)  # (C*k*k, N*OH*OW)
        weight = self.weight
        out2d = weight.data @ cols
        out_data = out2d.reshape(spec.out_channels, n, oh, ow).transpose(1, 0, 2, 3)

        input_shape = x.shape

        def backward(grad: np.ndarray):
            grad2d = grad.transpose(1, 0, 2, 3).reshape(spec.out_channels, -1)
            grad_weight = grad2d @ cols.T
            grad_cols = weight.data.T @ grad2d
            grad_input = col2im(grad_cols, input_shape, spec)
            return grad_input, grad_weight

        out = x._make(out_data, (x, weight), backward)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out


class MaxPool2d(Module):
    """Max pooling with a square window (spatial dims must divide evenly)."""

    def __init__(self, window: int = 2):
        super().__init__()
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        k = self.window
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by window {k}")
        x = x.reshape(n, c, h // k, k, w // k, k)
        return x.max(axis=3).max(axis=4)


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class LSTMCell(Module):
    """A single LSTM cell with prunable input/hidden weight matrices."""

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = _init_matrix(rng, input_size, (4 * hidden_size, input_size))
        self.weight_hh = _init_matrix(rng, hidden_size, (4 * hidden_size, hidden_size))
        self.register_prunable("weight_ih")
        self.register_prunable("weight_hh")
        self.bias = Tensor(np.zeros(4 * hidden_size), requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.weight_ih.T + h @ self.weight_hh.T + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        return (
            Tensor(np.zeros((batch, self.hidden_size))),
            Tensor(np.zeros((batch, self.hidden_size))),
        )


class LSTM(Module):
    """Unidirectional LSTM over a (batch, time, features) sequence."""

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, steps, _ = x.shape
        if state is None:
            state = self.cell.initial_state(batch)
        outputs = []
        for t in range(steps):
            step_input = x[:, t, :]
            h, c = self.cell(step_input, state)
            state = (h, c)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), state


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with prunable projection weights."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        *,
        dropout_p: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.dropout_p = dropout_p
        self._rng = rng
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, seq, dim = x.shape
        heads, hd = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, heads, hd).transpose(0, 2, 1, 3)

        q = split_heads(self.q_proj(x))
        k = split_heads(self.k_proj(x))
        v = split_heads(self.v_proj(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        if mask is not None:
            scores = scores + Tensor(np.where(mask, 0.0, -1.0e9))
        attn = softmax(scores, axis=-1)
        attn = dropout(attn, self.dropout_p, rng=self._rng, training=self.training)
        context = attn @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out_proj(context)
