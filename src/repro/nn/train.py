"""Training and masked fine-tuning loops for the proxy models.

The accuracy experiments follow the classic prune-then-fine-tune recipe: train
a dense proxy, prune its prunable weight matrices with one of the pattern
pruners, then fine-tune with the masks held fixed (masked gradients).  The
proxy models in :mod:`repro.models` expose two methods used here:

* ``loss(batch) -> Tensor`` — differentiable training loss for a batch,
* ``evaluate(batch) -> float`` — the task metric (BLEU or top-1 accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pruning.base import Pruner
from .layers import Module
from .optim import Adam, Optimizer, SGD, clip_grad_norm
from .tensor import no_grad

__all__ = [
    "TrainConfig",
    "TrainResult",
    "collect_prunable",
    "build_masks",
    "apply_masks",
    "mask_gradients",
    "train_model",
    "prune_model",
    "prune_and_finetune",
]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training / fine-tuning run."""

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1.0e-3
    optimizer: str = "adam"
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    losses: list[float]
    final_metric: float
    epochs: int


def _make_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.learning_rate)
    return SGD(model.parameters(), lr=config.learning_rate, momentum=0.9)


def collect_prunable(model: Module) -> dict[str, np.ndarray]:
    """Current values of every prunable weight matrix, keyed by name."""
    return {name: param.data.copy() for name, param in model.prunable_parameters()}


def build_masks(
    model: Module,
    pruner: Pruner,
    sparsity: float,
    *,
    min_rows: int = 1,
) -> tuple[dict[str, np.ndarray], dict[str, dict]]:
    """Prune every prunable weight of ``model`` and return the masks.

    Layers with fewer than ``min_rows`` rows (or rows not divisible by the
    pruner's vector size, for pattern pruners that require it) are skipped,
    mirroring the common practice of leaving tiny layers dense.

    Returns
    -------
    (masks, infos)
        ``masks[name]`` is the boolean keep-mask; ``infos[name]`` carries the
        pruner's pattern-specific extras (e.g. Shfl-BW row indices).
    """
    masks: dict[str, np.ndarray] = {}
    infos: dict[str, dict] = {}
    vector_size = getattr(pruner, "vector_size", None) or getattr(pruner, "block_size", None)
    for name, param in model.prunable_parameters():
        rows = param.data.shape[0]
        if rows < min_rows:
            continue
        if vector_size is not None and rows % vector_size:
            continue
        # Non-finite weights are corruption (diverged training), not a
        # pattern-infeasibility: raise before the tolerant prune below can
        # read the pruner's finite-score rejection as "leave the layer
        # dense" and hide the problem.
        if not np.all(np.isfinite(param.data)):
            raise ValueError(
                f"weights of prunable layer {name!r} contain non-finite values"
            )
        try:
            result = pruner.prune(param.data, sparsity)
        except ValueError:
            # Layers whose shape cannot hold the pattern (e.g. a stem conv
            # whose reduction length is not divisible by the block size) are
            # left dense, matching common pruning practice.
            continue
        masks[name] = result.mask
        infos[name] = result.info
    return masks, infos


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero out pruned weights in-place."""
    for name, param in model.prunable_parameters():
        if name in masks:
            param.data = param.data * masks[name]


def mask_gradients(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero gradients of pruned weights so fine-tuning keeps the pattern."""
    for name, param in model.prunable_parameters():
        if name in masks and param.grad is not None:
            param.grad = param.grad * masks[name]


def train_model(
    model: Module,
    task,
    config: TrainConfig,
    *,
    masks: dict[str, np.ndarray] | None = None,
) -> TrainResult:
    """Train (or fine-tune) a proxy model on a synthetic task.

    Parameters
    ----------
    model:
        A proxy model exposing ``loss(batch)`` and ``evaluate(batch)``.
    task:
        A dataset from :mod:`repro.nn.data` exposing ``train_split`` /
        ``valid_split`` / ``batches``.
    config:
        Training hyper-parameters.
    masks:
        Optional pruning masks; when given, weights and gradients are masked
        every step so the sparsity pattern is preserved.
    """
    optimizer = _make_optimizer(model, config)
    rng = np.random.default_rng(config.seed)
    train_split = task.train_split()
    valid_split = task.valid_split()

    if masks:
        apply_masks(model, masks)

    losses: list[float] = []
    model.train()
    for _ in range(config.epochs):
        for batch in task.batches(train_split, config.batch_size, rng=rng):
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            if masks:
                mask_gradients(model, masks)
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            if masks:
                apply_masks(model, masks)
            losses.append(float(loss.data))

    model.eval()
    with no_grad():
        metric = model.evaluate(valid_split)
    return TrainResult(losses=losses, final_metric=float(metric), epochs=config.epochs)


def prune_model(model: Module, pruner: Pruner, sparsity: float) -> dict[str, np.ndarray]:
    """One-shot prune the model in place; returns the masks used."""
    masks, _ = build_masks(model, pruner, sparsity)
    apply_masks(model, masks)
    return masks


def prune_and_finetune(
    model: Module,
    task,
    pruner: Pruner,
    sparsity: float,
    *,
    finetune: TrainConfig | None = None,
) -> tuple[float, dict[str, np.ndarray]]:
    """Prune a trained model and fine-tune it with the masks held fixed.

    Returns the post-fine-tuning validation metric and the masks.
    """
    masks = prune_model(model, pruner, sparsity)
    config = finetune or TrainConfig(epochs=2)
    result = train_model(model, task, config, masks=masks)
    return result.final_metric, masks
