"""Memory-traffic model for the GPU kernel simulator.

The model follows the paper's framing (Section 3.2.2): kernel performance on
tensor-core GPUs is dominated by how many bytes have to cross the DRAM
interface per floating point operation.  We therefore describe a kernel's
memory behaviour as a :class:`TrafficBreakdown` of DRAM bytes by operand, plus
an *access efficiency* per operand that captures how well the access pattern
uses the memory system (coalescing, transaction granularity).

A light-weight L2 model is included: operand streams whose per-wave working
set fits in the L2 cache are only charged DRAM traffic once per wave, which is
what makes small-N GEMMs (the shapes of real DNN layers, Figure 6) memory
bound on the weight matrix rather than on the activation re-reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .arch import GPUArch

#: Bytes per FP16 value; the paper evaluates half precision throughout.
BYTES_FP16 = 2
#: Bytes per FP32 value (accumulators, some metadata).
BYTES_FP32 = 4
#: Bytes per column-index / row-index metadata entry.
BYTES_INDEX = 4
#: DRAM transaction (cache line) granularity in bytes.
TRANSACTION_BYTES = 32


@dataclass
class OperandTraffic:
    """DRAM traffic contributed by one operand of a kernel.

    Attributes
    ----------
    name:
        Operand label, e.g. ``"weight"`` or ``"activation"``.
    bytes:
        Unique bytes of this operand touched by the kernel (its footprint).
    reads:
        Number of times the footprint is streamed from memory *before* any
        cache filtering (e.g. an activation tile re-read once per row-tile).
    access_efficiency:
        Fraction of each memory transaction that carries useful data.  1.0 for
        perfectly coalesced streaming access, lower for gather-style access
        (e.g. unstructured SpMM loading scattered activation rows).
    is_write:
        Whether the traffic is a store stream (writes are not L2-filtered in
        this model).
    """

    name: str
    bytes: float
    reads: float = 1.0
    access_efficiency: float = 1.0
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError(f"operand {self.name!r} has negative bytes")
        if self.reads < 0:
            raise ValueError(f"operand {self.name!r} has negative read count")
        if not 0.0 < self.access_efficiency <= 1.0:
            raise ValueError(
                f"operand {self.name!r} access efficiency must be in (0, 1]"
            )

    @property
    def raw_bytes(self) -> float:
        """Total bytes requested by the kernel before cache filtering."""
        return self.bytes * self.reads

    def dram_bytes(self, arch: GPUArch) -> float:
        """DRAM bytes after L2 filtering and access-efficiency penalties.

        Re-reads of an operand whose footprint fits within half of the L2
        capacity hit in L2 and cost no extra DRAM traffic; larger footprints
        degrade smoothly (the fraction of the footprint resident in L2 is
        filtered, the rest spills to DRAM on every re-read).  Stores always go
        to DRAM (write-through approximation).
        """
        effective_reads = self.reads
        if not self.is_write and self.reads > 1.0 and self.bytes > 0:
            usable_l2 = arch.l2_capacity / 2
            hit_fraction = min(1.0, usable_l2 / self.bytes)
            effective_reads = 1.0 + (self.reads - 1.0) * (1.0 - hit_fraction)
        return (self.bytes * effective_reads) / self.access_efficiency


@dataclass
class TrafficBreakdown:
    """Collection of operand traffic streams for one kernel launch."""

    operands: list[OperandTraffic] = field(default_factory=list)

    def add(
        self,
        name: str,
        bytes: float,
        *,
        reads: float = 1.0,
        access_efficiency: float = 1.0,
        is_write: bool = False,
    ) -> "TrafficBreakdown":
        """Append one operand stream and return ``self`` for chaining."""
        self.operands.append(
            OperandTraffic(
                name=name,
                bytes=bytes,
                reads=reads,
                access_efficiency=access_efficiency,
                is_write=is_write,
            )
        )
        return self

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_raw_bytes(self) -> float:
        """Bytes requested before any cache filtering."""
        return sum(op.raw_bytes for op in self.operands)

    def total_dram_bytes(self, arch: GPUArch) -> float:
        """DRAM bytes after L2 filtering / efficiency penalties."""
        return sum(op.dram_bytes(arch) for op in self.operands)

    def dram_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Time to move the DRAM traffic at (a fraction of) peak bandwidth."""
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        return self.total_dram_bytes(arch) / (
            arch.dram_bandwidth * bandwidth_efficiency
        )

    def l2_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Time to move the *raw* (pre-filter) traffic through the L2 cache.

        Re-reads filtered out of DRAM still consume last-level-cache
        bandwidth; kernels with poor reuse (small tiles / small ``V``) become
        L2-bandwidth bound even when their DRAM footprint is small — this is
        the "63 MACs per loaded value" argument of Section 2.1.
        """
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        return self.total_raw_bytes() / (arch.l2_bandwidth * bandwidth_efficiency)

    def memory_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Combined memory-stream time: the slower of DRAM and L2 delivery."""
        return max(
            self.dram_time(arch, bandwidth_efficiency=bandwidth_efficiency),
            self.l2_time(arch, bandwidth_efficiency=bandwidth_efficiency),
        )

    def by_operand(self, arch: GPUArch) -> dict[str, float]:
        """DRAM bytes per operand name (merging duplicates)."""
        out: dict[str, float] = {}
        for op in self.operands:
            out[op.name] = out.get(op.name, 0.0) + op.dram_bytes(arch)
        return out

    def operation_intensity(self, flops: float, arch: GPUArch) -> float:
        """FLOPs per DRAM byte for this traffic under ``arch``."""
        dram = self.total_dram_bytes(arch)
        if dram <= 0:
            return float("inf")
        return flops / dram


def gather_access_efficiency(contiguous_bytes: float) -> float:
    """Efficiency of gather-style access with a given contiguous run length.

    A gather that touches ``contiguous_bytes`` of useful data per memory
    transaction wastes the remainder of the :data:`TRANSACTION_BYTES` line.
    Runs longer than a transaction are fully efficient.
    """
    if contiguous_bytes <= 0:
        raise ValueError("contiguous_bytes must be positive")
    return min(1.0, contiguous_bytes / TRANSACTION_BYTES)
