"""Memory-traffic model for the GPU kernel simulator.

The model follows the paper's framing (Section 3.2.2): kernel performance on
tensor-core GPUs is dominated by how many bytes have to cross the DRAM
interface per floating point operation.  We therefore describe a kernel's
memory behaviour as a :class:`TrafficBreakdown` of DRAM bytes by operand, plus
an *access efficiency* per operand that captures how well the access pattern
uses the memory system (coalescing, transaction granularity).

A light-weight L2 model is included: operand streams whose per-wave working
set fits in the L2 cache are only charged DRAM traffic once per wave, which is
what makes small-N GEMMs (the shapes of real DNN layers, Figure 6) memory
bound on the weight matrix rather than on the activation re-reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .arch import GPUArch
from .vectorize import anytrue, stack_parts

#: Bytes per FP16 value; the paper evaluates half precision throughout.
BYTES_FP16 = 2
#: Bytes per FP32 value (accumulators, some metadata).
BYTES_FP32 = 4
#: Bytes per column-index / row-index metadata entry.
BYTES_INDEX = 4
#: DRAM transaction (cache line) granularity in bytes.
TRANSACTION_BYTES = 32


@dataclass
class OperandTraffic:
    """DRAM traffic contributed by one operand of a kernel.

    Attributes
    ----------
    name:
        Operand label, e.g. ``"weight"`` or ``"activation"``.
    bytes:
        Unique bytes of this operand touched by the kernel (its footprint).
    reads:
        Number of times the footprint is streamed from memory *before* any
        cache filtering (e.g. an activation tile re-read once per row-tile).
    access_efficiency:
        Fraction of each memory transaction that carries useful data.  1.0 for
        perfectly coalesced streaming access, lower for gather-style access
        (e.g. unstructured SpMM loading scattered activation rows).
    is_write:
        Whether the traffic is a store stream (writes are not L2-filtered in
        this model).
    """

    name: str
    bytes: float
    reads: float = 1.0
    access_efficiency: float = 1.0
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError(f"operand {self.name!r} has negative bytes")
        if self.reads < 0:
            raise ValueError(f"operand {self.name!r} has negative read count")
        if not 0.0 < self.access_efficiency <= 1.0:
            raise ValueError(
                f"operand {self.name!r} access efficiency must be in (0, 1]"
            )

    @property
    def raw_bytes(self) -> float:
        """Total bytes requested by the kernel before cache filtering."""
        return self.bytes * self.reads

    def dram_bytes(self, arch: GPUArch) -> float:
        """DRAM bytes after L2 filtering and access-efficiency penalties.

        Re-reads of an operand whose footprint fits within half of the L2
        capacity hit in L2 and cost no extra DRAM traffic; larger footprints
        degrade smoothly (the fraction of the footprint resident in L2 is
        filtered, the rest spills to DRAM on every re-read).  Stores always go
        to DRAM (write-through approximation).
        """
        effective_reads = self.reads
        if not self.is_write and self.reads > 1.0 and self.bytes > 0:
            usable_l2 = arch.l2_capacity / 2
            hit_fraction = min(1.0, usable_l2 / self.bytes)
            effective_reads = 1.0 + (self.reads - 1.0) * (1.0 - hit_fraction)
        return (self.bytes * effective_reads) / self.access_efficiency


@dataclass
class TrafficBreakdown:
    """Collection of operand traffic streams for one kernel launch."""

    operands: list[OperandTraffic] = field(default_factory=list)

    def add(
        self,
        name: str,
        bytes: float,
        *,
        reads: float = 1.0,
        access_efficiency: float = 1.0,
        is_write: bool = False,
    ) -> "TrafficBreakdown":
        """Append one operand stream and return ``self`` for chaining."""
        self.operands.append(
            OperandTraffic(
                name=name,
                bytes=bytes,
                reads=reads,
                access_efficiency=access_efficiency,
                is_write=is_write,
            )
        )
        return self

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_raw_bytes(self) -> float:
        """Bytes requested before any cache filtering."""
        return sum(op.raw_bytes for op in self.operands)

    def total_dram_bytes(self, arch: GPUArch) -> float:
        """DRAM bytes after L2 filtering / efficiency penalties."""
        return sum(op.dram_bytes(arch) for op in self.operands)

    def dram_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Time to move the DRAM traffic at (a fraction of) peak bandwidth."""
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        return self.total_dram_bytes(arch) / (
            arch.dram_bandwidth * bandwidth_efficiency
        )

    def l2_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Time to move the *raw* (pre-filter) traffic through the L2 cache.

        Re-reads filtered out of DRAM still consume last-level-cache
        bandwidth; kernels with poor reuse (small tiles / small ``V``) become
        L2-bandwidth bound even when their DRAM footprint is small — this is
        the "63 MACs per loaded value" argument of Section 2.1.
        """
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        return self.total_raw_bytes() / (arch.l2_bandwidth * bandwidth_efficiency)

    def memory_time(self, arch: GPUArch, *, bandwidth_efficiency: float = 1.0) -> float:
        """Combined memory-stream time: the slower of DRAM and L2 delivery."""
        return max(
            self.dram_time(arch, bandwidth_efficiency=bandwidth_efficiency),
            self.l2_time(arch, bandwidth_efficiency=bandwidth_efficiency),
        )

    def by_operand(self, arch: GPUArch) -> dict[str, float]:
        """DRAM bytes per operand name (merging duplicates)."""
        out: dict[str, float] = {}
        for op in self.operands:
            out[op.name] = out.get(op.name, 0.0) + op.dram_bytes(arch)
        return out

    def operation_intensity(self, flops: float, arch: GPUArch) -> float:
        """FLOPs per DRAM byte for this traffic under ``arch``."""
        dram = self.total_dram_bytes(arch)
        if dram <= 0:
            return float("inf")
        return flops / dram


# --------------------------------------------------------------------------- #
# Batched (structure-of-arrays) traffic — the vectorized twin of
# OperandTraffic / TrafficBreakdown used by repro.gpu.simulator.simulate_batch.
# --------------------------------------------------------------------------- #
@dataclass
class OperandBatch:
    """One operand *slot* across a batch of launches.

    The scalar model stores one :class:`OperandTraffic` per operand per
    launch; the batched model stores one array per field with one entry per
    launch.  Every formula below is the scalar expression applied
    element-wise, so a batch of launches produces bit-identical numbers to
    looping :meth:`OperandTraffic.dram_bytes` one launch at a time.
    """

    name: str
    bytes: np.ndarray
    reads: np.ndarray
    access_efficiency: np.ndarray
    is_write: np.ndarray

    def raw_bytes(self) -> np.ndarray:
        """Per-launch bytes requested before cache filtering."""
        return self.bytes * self.reads

    def dram_bytes(self, arch: GPUArch) -> np.ndarray:
        """Per-launch DRAM bytes after L2 filtering / efficiency penalties."""
        reads = self.reads
        # Single-read streams (outputs, metadata, weights) never hit the L2
        # re-read filter; skip its arithmetic when the slot cannot qualify.
        if reads.ndim == 0 and reads <= 1.0:
            return (self.bytes * reads) / self.access_efficiency
        usable_l2 = arch.l2_capacity / 2
        safe_bytes = np.where(self.bytes > 0, self.bytes, 1.0)
        # Denormal footprints overflow the ratio to inf, exactly like the
        # scalar division; the min() clamps it to 1.0 either way.
        with np.errstate(over="ignore"):
            hit_fraction = np.minimum(1.0, usable_l2 / safe_bytes)
        adjusted = (~self.is_write) & (reads > 1.0) & (self.bytes > 0)
        effective_reads = np.where(
            adjusted, 1.0 + (reads - 1.0) * (1.0 - hit_fraction), reads
        )
        return (self.bytes * effective_reads) / self.access_efficiency


@dataclass
class TrafficBatch:
    """Operand traffic streams of a whole batch of launches.

    ``size`` is the batch length; each :meth:`add` appends one operand slot
    shared by every launch (scalars broadcast).  Launches with fewer operands
    than their batch-mates pad the missing slots with zero-byte streams,
    which contribute exactly ``0.0`` to every aggregate, so the per-launch
    accumulation order over the real operands matches the scalar
    :class:`TrafficBreakdown` sums term by term.
    """

    size: int
    slots: list[OperandBatch] = field(default_factory=list)

    def _as_array(self, value, dtype=np.float64) -> np.ndarray:
        arr = np.asarray(value, dtype=dtype)
        if arr.ndim and arr.shape != (self.size,):
            raise ValueError(
                f"expected a scalar or a length-{self.size} array, got shape {arr.shape}"
            )
        return arr

    def add(
        self,
        name: str,
        bytes: np.ndarray | float,
        *,
        reads: np.ndarray | float = 1.0,
        access_efficiency: np.ndarray | float = 1.0,
        is_write: np.ndarray | bool = False,
        validate: bool = True,
    ) -> "TrafficBatch":
        """Append one operand slot and return ``self`` for chaining.

        Scalar fields stay 0-d (numpy broadcasts them in every aggregate);
        per-launch arrays must have length ``size``.  ``validate`` may be
        switched off by callers whose inputs are non-negative / in-range by
        construction (the kernel grid builders validate their own inputs
        before deriving the traffic).
        """
        bytes_ = self._as_array(bytes)
        reads_ = self._as_array(reads)
        efficiency = self._as_array(access_efficiency)
        write = self._as_array(is_write, dtype=bool)
        if validate:
            if anytrue(bytes_ < 0):
                raise ValueError(f"operand {name!r} has negative bytes")
            if anytrue(reads_ < 0):
                raise ValueError(f"operand {name!r} has negative read count")
            if anytrue((efficiency <= 0.0) | (efficiency > 1.0)):
                raise ValueError(
                    f"operand {name!r} access efficiency must be in (0, 1]"
                )
        self.slots.append(OperandBatch(name, bytes_, reads_, efficiency, write))
        return self

    @classmethod
    def from_breakdowns(cls, breakdowns: list[TrafficBreakdown]) -> "TrafficBatch":
        """Stack per-launch :class:`TrafficBreakdown` objects into one batch.

        Slot ``i`` holds the ``i``-th operand of each launch; launches with
        fewer operands pad with zero-byte streams *after* their real
        operands, preserving the scalar summation order.
        """
        size = len(breakdowns)
        batch = cls(size)
        max_ops = max((len(b.operands) for b in breakdowns), default=0)
        for slot in range(max_ops):
            ops = [
                b.operands[slot] if slot < len(b.operands) else None for b in breakdowns
            ]
            name = next((op.name for op in ops if op is not None), f"slot{slot}")
            batch.add(
                name,
                np.array([op.bytes if op is not None else 0.0 for op in ops]),
                reads=np.array([op.reads if op is not None else 0.0 for op in ops]),
                access_efficiency=np.array(
                    [op.access_efficiency if op is not None else 1.0 for op in ops]
                ),
                is_write=np.array(
                    [op.is_write if op is not None else False for op in ops]
                ),
            )
        return batch

    @classmethod
    def concat(cls, parts: "list[TrafficBatch]") -> "TrafficBatch":
        """Stack several traffic batches end to end.

        Slot ``j`` of the result concatenates slot ``j`` of every part;
        parts with fewer slots pad with zero-byte streams, which contribute
        an exact ``0.0`` to every aggregate (same argument as
        :meth:`from_breakdowns`).
        """
        sizes = [part.size for part in parts]
        merged = cls(sum(sizes))
        max_slots = max((len(part.slots) for part in parts), default=0)
        for slot in range(max_slots):
            ops = [
                part.slots[slot] if slot < len(part.slots) else None for part in parts
            ]
            merged.slots.append(
                OperandBatch(
                    name=next((op.name for op in ops if op is not None), f"slot{slot}"),
                    bytes=stack_parts(
                        [op.bytes if op else None for op in ops], sizes, 0.0
                    ),
                    reads=stack_parts(
                        [op.reads if op else None for op in ops], sizes, 0.0
                    ),
                    access_efficiency=stack_parts(
                        [op.access_efficiency if op else None for op in ops], sizes, 1.0
                    ),
                    is_write=stack_parts(
                        [op.is_write if op else None for op in ops],
                        sizes,
                        False,
                        dtype=bool,
                    ),
                )
            )
        return merged

    # ------------------------------------------------------------------ #
    # Aggregates (element-wise twins of the TrafficBreakdown methods)
    # ------------------------------------------------------------------ #
    def total_raw_bytes(self) -> np.ndarray:
        """Per-launch bytes requested before any cache filtering."""
        total = np.zeros(self.size)
        for slot in self.slots:
            total += slot.raw_bytes()
        return total

    def total_dram_bytes(self, arch: GPUArch) -> np.ndarray:
        """Per-launch DRAM bytes after L2 filtering / efficiency penalties."""
        total = np.zeros(self.size)
        for slot in self.slots:
            total += slot.dram_bytes(arch)
        return total

    def _check_bandwidth_efficiency(self, bandwidth_efficiency) -> np.ndarray:
        efficiency = self._as_array(bandwidth_efficiency)
        if anytrue((efficiency <= 0.0) | (efficiency > 1.0)):
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        return efficiency

    def dram_time(
        self,
        arch: GPUArch,
        *,
        bandwidth_efficiency: np.ndarray | float = 1.0,
        dram_bytes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-launch DRAM delivery time (``dram_bytes`` may be precomputed)."""
        efficiency = self._check_bandwidth_efficiency(bandwidth_efficiency)
        if dram_bytes is None:
            dram_bytes = self.total_dram_bytes(arch)
        return dram_bytes / (arch.dram_bandwidth * efficiency)

    def l2_time(
        self, arch: GPUArch, *, bandwidth_efficiency: np.ndarray | float = 1.0
    ) -> np.ndarray:
        """Per-launch raw-traffic delivery time through the L2."""
        efficiency = self._check_bandwidth_efficiency(bandwidth_efficiency)
        return self.total_raw_bytes() / (arch.l2_bandwidth * efficiency)

    def memory_time(
        self,
        arch: GPUArch,
        *,
        bandwidth_efficiency: np.ndarray | float = 1.0,
        dram_bytes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-launch memory-stream time: the slower of DRAM and L2."""
        return np.maximum(
            self.dram_time(
                arch, bandwidth_efficiency=bandwidth_efficiency, dram_bytes=dram_bytes
            ),
            self.l2_time(arch, bandwidth_efficiency=bandwidth_efficiency),
        )


def gather_access_efficiency(contiguous_bytes: float) -> float:
    """Efficiency of gather-style access with a given contiguous run length.

    A gather that touches ``contiguous_bytes`` of useful data per memory
    transaction wastes the remainder of the :data:`TRANSACTION_BYTES` line.
    Runs longer than a transaction are fully efficient.
    """
    if contiguous_bytes <= 0:
        raise ValueError("contiguous_bytes must be positive")
    return min(1.0, contiguous_bytes / TRANSACTION_BYTES)
