"""Micro-helpers shared by the batched (array) variants of the GPU model.

The batched estimation engine runs many small numpy expressions per sweep
group; the generic :func:`numpy.any` wrapper and eager scalar broadcasting
are measurable overhead at that granularity.  These helpers keep the hot
paths lean without changing semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["anytrue", "stack_parts"]


def anytrue(mask) -> bool:
    """``bool(np.any(mask))`` without the ufunc-wrapper overhead.

    Accepts plain Python bools (scalar comparisons), numpy bool scalars and
    arrays alike, so validation code can write ``anytrue(x <= 0)`` whether
    ``x`` is a scalar or a per-launch array.
    """
    if isinstance(mask, bool):
        return mask
    return bool(mask.any())


def stack_parts(values: list, sizes, fill=None, *, dtype=np.float64) -> np.ndarray:
    """Stack one field of several batch parts end to end, scalars preserved.

    ``values[i]`` is part ``i``'s field (a length-``sizes[i]`` array, a
    scalar/0-d value, or — when ``fill`` is given — ``None`` meaning "this
    part lacks the field, pad with ``fill``").  Three regimes, cheapest
    first:

    * the same scalar in every part stays 0-d (numpy broadcasts it through
      the merged batch for free),
    * scalar-per-part merges as a step function with one ``np.repeat``,
    * anything else materialises per part (``np.full`` is markedly cheaper
      than ``broadcast_to`` here) and concatenates.

    Because scalars and their materialised forms are element-wise
    indistinguishable, stacking cannot change any launch's numbers — the
    property both ``LaunchBatch.concat`` and ``TrafficBatch.concat`` lean
    on.
    """
    arrays = [
        None if value is None else np.asarray(value, dtype=dtype) for value in values
    ]
    if all(arr is None or arr.ndim == 0 for arr in arrays):
        items = [fill if arr is None else arr.item() for arr in arrays]
        first = items[0]
        if all(item == first for item in items[1:]):
            return np.asarray(first, dtype=dtype)
        return np.repeat(np.array(items, dtype=dtype), np.asarray(sizes))
    return np.concatenate(
        [
            np.full(n, fill if arr is None else arr, dtype=dtype)
            if arr is None or arr.ndim == 0
            else arr
            for arr, n in zip(arrays, sizes, strict=True)
        ]
    )
