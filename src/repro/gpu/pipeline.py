"""Software-pipeline latency model (Algorithm 1 of the paper).

A Shfl-BW SpMM main loop interleaves three streams of work per K-step:

1. ``BulkLoadMeta`` — load the column indices (metadata) of future weight
   tiles, issued once every ``MetaPrefetchStage`` steps,
2. ``StitchTile`` — load/gather the weight values and the activation rows
   named by the metadata into shared memory,
3. ``WarpMMA`` — tensor-core computation on a previously loaded buffer.

With enough pipeline stages the per-iteration time is the *maximum* of the
overlapping streams; without prefetching, the metadata load serialises with
the data load because the stitch cannot start until the indices are known
(the dependency called out in Section 4.4).  This module exposes both
behaviours so the metadata-prefetch ablation benchmark can quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vectorize import anytrue


@dataclass(frozen=True)
class PipelineSpec:
    """Per-iteration latencies of the main-loop streams, in seconds.

    Attributes
    ----------
    compute_time:
        Tensor-core (or CUDA-core) time per K-step.
    load_time:
        Shared-memory fill time per K-step (weights + stitched activations).
    meta_time:
        Metadata (column index) load time per K-step, *before* bulk
        aggregation.
    k_steps:
        Number of main-loop iterations.
    pipeline_stages:
        Number of buffers available for overlap; 1 disables overlap entirely.
    meta_prefetch_steps:
        ``MetaPrefetchStage`` from Algorithm 1 — how many iterations' worth of
        metadata are fetched in one bulk load.  1 disables bulk prefetching.
    meta_bulk_efficiency:
        Bandwidth-efficiency bonus of aggregating small metadata loads into
        bulk transfers (Section 4.4 notes metadata is small and benefits from
        aggregation); applied when ``meta_prefetch_steps > 1``.
    """

    compute_time: float
    load_time: float
    meta_time: float = 0.0
    k_steps: int = 1
    pipeline_stages: int = 2
    meta_prefetch_steps: int = 4
    meta_bulk_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.load_time < 0 or self.meta_time < 0:
            raise ValueError("stream times must be non-negative")
        if self.k_steps < 1:
            raise ValueError("k_steps must be >= 1")
        if self.pipeline_stages < 1:
            raise ValueError("pipeline_stages must be >= 1")
        if self.meta_prefetch_steps < 1:
            raise ValueError("meta_prefetch_steps must be >= 1")
        if not 0.0 < self.meta_bulk_efficiency <= 1.0:
            raise ValueError("meta_bulk_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class PipelineEstimate:
    """Outcome of the pipeline model."""

    total_time: float
    steady_state_time: float
    prologue_time: float
    bound: str  # "compute", "memory" or "serial"

    @property
    def overlap_efficiency(self) -> float:
        """Ratio of the perfectly-overlapped lower bound to the estimate."""
        if self.total_time <= 0:
            return 1.0
        return self.steady_state_time / self.total_time


def pipeline_time(spec: PipelineSpec, *, prefetch_metadata: bool = True) -> PipelineEstimate:
    """Estimate main-loop time for a threadblock under the pipeline model.

    Parameters
    ----------
    spec:
        Stream latencies and pipeline configuration.
    prefetch_metadata:
        When ``True`` (the paper's design), metadata for
        ``meta_prefetch_steps`` future iterations is loaded in bulk and
        overlaps with compute, so the per-iteration cost is
        ``max(compute, load + meta/prefetch_steps)``.  When ``False``, the
        metadata load serialises in front of the data load:
        ``max(compute, meta + load)`` with no bulk-aggregation benefit.
    """
    if prefetch_metadata and spec.meta_prefetch_steps > 1:
        # Bulk-prefetched metadata joins the pipelined memory stream and can
        # hide behind compute like any other load.
        memory_stream = spec.load_time + spec.meta_time * spec.meta_bulk_efficiency
        serial_meta = 0.0
    else:
        # Serial dependency (Section 4.4): the column indices must arrive
        # before the stitch of the same tile can start, and the stitch must
        # finish before the MMA, so the metadata latency cannot be hidden
        # behind either stream.
        memory_stream = spec.load_time
        serial_meta = spec.meta_time

    if spec.pipeline_stages >= 2:
        steady = serial_meta + max(spec.compute_time, memory_stream)
        bound = "compute" if spec.compute_time >= memory_stream + serial_meta else "memory"
    else:
        steady = serial_meta + spec.compute_time + memory_stream
        bound = "serial"

    # Pipeline prologue: the first (stages - 1) buffers must be filled before
    # the first MMA can issue; the epilogue drains symmetric to the prologue
    # and is folded into the same term.
    warmup_iters = min(spec.pipeline_stages - 1, spec.k_steps)
    prologue = warmup_iters * memory_stream

    total = prologue + spec.k_steps * steady
    return PipelineEstimate(
        total_time=total,
        steady_state_time=spec.k_steps * steady,
        prologue_time=prologue,
        bound=bound,
    )


# --------------------------------------------------------------------------- #
# Batched (array-accepting) variant — the element-wise twin of pipeline_time
# used by repro.gpu.simulator.simulate_batch.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PipelineBatch:
    """Per-launch pipeline estimates (the array twin of :class:`PipelineEstimate`)."""

    total_time: np.ndarray
    steady_state_time: np.ndarray
    prologue_time: np.ndarray
    bound: np.ndarray


def pipeline_time_grid(
    *,
    compute_time: np.ndarray,
    load_time: np.ndarray,
    meta_time: np.ndarray,
    k_steps: np.ndarray,
    pipeline_stages: np.ndarray,
    meta_prefetch_steps: np.ndarray,
    prefetch_metadata: np.ndarray,
    meta_bulk_efficiency: np.ndarray | float = 1.0,
    validate: bool = True,
) -> PipelineBatch:
    """Element-wise :func:`pipeline_time` over per-launch stream arrays.

    Every expression mirrors the scalar model term by term (the two
    metadata behaviours and the overlap / serial regimes are selected by
    masks), so each launch's numbers are bit-identical to building its
    :class:`PipelineSpec` and calling :func:`pipeline_time`.  ``validate``
    may be switched off by callers whose inputs are valid by construction
    (the simulator derives them from an already-validated launch batch).
    """
    bulk_efficiency = np.asarray(meta_bulk_efficiency, dtype=np.float64)
    if validate:
        if anytrue(compute_time < 0) or anytrue(load_time < 0) or anytrue(meta_time < 0):
            raise ValueError("stream times must be non-negative")
        if anytrue(k_steps < 1):
            raise ValueError("k_steps must be >= 1")
        if anytrue(pipeline_stages < 1):
            raise ValueError("pipeline_stages must be >= 1")
        if anytrue(meta_prefetch_steps < 1):
            raise ValueError("meta_prefetch_steps must be >= 1")
        if anytrue((bulk_efficiency <= 0.0) | (bulk_efficiency > 1.0)):
            raise ValueError("meta_bulk_efficiency must be in (0, 1]")

    bulk = np.asarray(prefetch_metadata, dtype=bool) & (meta_prefetch_steps > 1)
    memory_stream = np.where(bulk, load_time + meta_time * bulk_efficiency, load_time)
    serial_meta = np.where(bulk, 0.0, meta_time)

    overlapped = pipeline_stages >= 2
    steady = np.where(
        overlapped,
        serial_meta + np.maximum(compute_time, memory_stream),
        serial_meta + compute_time + memory_stream,
    )
    bound = np.where(
        overlapped,
        np.where(compute_time >= memory_stream + serial_meta, "compute", "memory"),
        "serial",
    )

    warmup_iters = np.minimum(pipeline_stages - 1, k_steps)
    prologue = warmup_iters * memory_stream
    steady_state = k_steps * steady
    return PipelineBatch(
        total_time=prologue + steady_state,
        steady_state_time=steady_state,
        prologue_time=prologue,
        bound=bound,
    )


def dense_pipeline_time(
    compute_time: float,
    load_time: float,
    k_steps: int,
    *,
    pipeline_stages: int = 3,
) -> PipelineEstimate:
    """Convenience wrapper for dense kernels, which carry no sparse metadata."""
    spec = PipelineSpec(
        compute_time=compute_time,
        load_time=load_time,
        meta_time=0.0,
        k_steps=k_steps,
        pipeline_stages=pipeline_stages,
        meta_prefetch_steps=1,
    )
    return pipeline_time(spec, prefetch_metadata=False)
