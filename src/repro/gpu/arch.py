"""GPU architecture descriptions used by the kernel timing model.

The paper evaluates on NVIDIA V100, T4 and A100.  Real hardware is not
available in this environment, so every kernel in :mod:`repro.kernels` is
timed against an analytical model parameterised by the published
specifications captured here.  The specs deliberately stick to the handful of
quantities that govern the paper's arguments (Section 2.1 and 3.2):

* tensor-core and CUDA-core peak throughput (FP16),
* DRAM and L2 bandwidth,
* the SM count and per-SM shared memory / register file capacity,
* tensor-core MMA instruction granularity.

All throughputs are stored in floating point operations per second (FLOP/s,
counting a multiply-accumulate as two operations) and bandwidths in bytes per
second, so the timing model never has to juggle units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


TERA = 1.0e12
GIGA = 1.0e9
MEGA = 1.0e6
KILO = 1.0e3


@dataclass(frozen=True)
class MMAShape:
    """Granularity of one tensor-core matrix-multiply-accumulate instruction.

    The paper quotes ``m16n8k16`` as the granularity of the latest NVIDIA
    tensor cores (Section 2.1); Volta exposes ``m16n16k4`` HMMA steps through
    the WMMA API but the effective fragment is 16x16x16, which is what we
    model.
    """

    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        """FLOPs performed by one MMA instruction (MAC = 2 ops)."""
        return 2 * self.m * self.n * self.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.m}n{self.n}k{self.k}"


@dataclass(frozen=True)
class GPUArch:
    """A single GPU architecture as seen by the performance model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100"``.
    sm_count:
        Number of streaming multiprocessors.
    sm_clock_hz:
        Boost clock used for peak-throughput calculations.
    tensor_flops:
        Peak FP16 tensor-core throughput of the whole chip, FLOP/s.
    cuda_core_flops:
        Peak FP16 CUDA-core (non tensor-core) throughput, FLOP/s.
    dram_bandwidth:
        Peak DRAM bandwidth, bytes/s.
    l2_bandwidth:
        Aggregate L2 cache bandwidth, bytes/s.
    l2_capacity:
        L2 cache capacity in bytes.
    shared_mem_per_sm:
        Maximum shared memory usable by threadblocks on one SM, bytes.
    register_file_per_sm:
        Register file size per SM, bytes.
    max_threads_per_sm:
        Thread-occupancy limit per SM.
    mma:
        Tensor-core instruction granularity.
    supports_sparse_tensor_core:
        Whether the architecture has native 2:4 structured-sparsity support
        (A100 only among the three GPUs in the paper).
    kernel_launch_overhead_s:
        Fixed host-side + scheduling latency added to every kernel launch.
    """

    name: str
    sm_count: int
    sm_clock_hz: float
    tensor_flops: float
    cuda_core_flops: float
    dram_bandwidth: float
    l2_bandwidth: float
    l2_capacity: int
    shared_mem_per_sm: int
    register_file_per_sm: int
    max_threads_per_sm: int
    mma: MMAShape = field(default_factory=lambda: MMAShape(16, 8, 16))
    supports_sparse_tensor_core: bool = False
    kernel_launch_overhead_s: float = 4.0e-6

    # ------------------------------------------------------------------ #
    # Derived quantities used by the analysis in Section 3.2
    # ------------------------------------------------------------------ #
    @property
    def tensor_flops_per_sm(self) -> float:
        """Peak tensor-core FLOP/s available to a single SM."""
        return self.tensor_flops / self.sm_count

    @property
    def cuda_core_flops_per_sm(self) -> float:
        """Peak CUDA-core FLOP/s available to a single SM."""
        return self.cuda_core_flops / self.sm_count

    @property
    def compute_to_bandwidth(self) -> float:
        """Tensor-core FLOPs the chip can do per DRAM byte (machine balance).

        The paper notes this is the quantity that dictates how much data
        reuse a kernel must expose: A100 needs ~63 MACs per loaded value
        (Section 2.1); T4 needs fewer per unit of *achievable* throughput
        which is why its sparse speedups are the largest (Section 6.2).
        """
        return self.tensor_flops / self.dram_bandwidth

    @property
    def macs_per_value_for_peak(self) -> float:
        """MACs required per loaded FP16 value to reach peak tensor throughput
        from the last-level cache (the "63 MACs" figure for A100)."""
        bytes_per_value = 2.0
        return self.l2_bandwidth and (
            (self.tensor_flops / 2.0) / (self.l2_bandwidth / bytes_per_value)
        )

    def peak_flops(self, use_tensor_core: bool) -> float:
        """Peak throughput for the selected execution unit."""
        return self.tensor_flops if use_tensor_core else self.cuda_core_flops

    def with_overrides(self, **kwargs) -> "GPUArch":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


# --------------------------------------------------------------------------- #
# The three GPUs used in the paper's evaluation (Section 6.1).
#
# Sources: NVIDIA V100 / T4 / A100 whitepapers & datasheets.  FP16 CUDA-core
# throughput is 2x FP32.  Bandwidths are the published peak values.
# --------------------------------------------------------------------------- #

V100 = GPUArch(
    name="V100",
    sm_count=80,
    sm_clock_hz=1530 * MEGA,
    tensor_flops=125 * TERA,
    cuda_core_flops=31.4 * TERA,
    dram_bandwidth=900 * GIGA,
    l2_bandwidth=2150 * GIGA,
    l2_capacity=6 * 1024 * 1024,
    shared_mem_per_sm=96 * 1024,
    register_file_per_sm=256 * 1024,
    max_threads_per_sm=2048,
    mma=MMAShape(16, 16, 16),
    supports_sparse_tensor_core=False,
)

T4 = GPUArch(
    name="T4",
    sm_count=40,
    sm_clock_hz=1590 * MEGA,
    tensor_flops=65 * TERA,
    cuda_core_flops=16.2 * TERA,
    dram_bandwidth=320 * GIGA,
    l2_bandwidth=1280 * GIGA,
    l2_capacity=4 * 1024 * 1024,
    shared_mem_per_sm=64 * 1024,
    register_file_per_sm=256 * 1024,
    max_threads_per_sm=1024,
    mma=MMAShape(16, 8, 16),
    supports_sparse_tensor_core=False,
)

A100 = GPUArch(
    name="A100",
    sm_count=108,
    sm_clock_hz=1410 * MEGA,
    tensor_flops=312 * TERA,
    cuda_core_flops=78 * TERA,
    dram_bandwidth=1555 * GIGA,
    l2_bandwidth=4830 * GIGA,
    l2_capacity=40 * 1024 * 1024,
    shared_mem_per_sm=164 * 1024,
    register_file_per_sm=256 * 1024,
    max_threads_per_sm=2048,
    mma=MMAShape(16, 8, 16),
    supports_sparse_tensor_core=True,
)


_REGISTRY: dict[str, GPUArch] = {
    "V100": V100,
    "T4": T4,
    "A100": A100,
}


def available_gpus() -> list[str]:
    """Names of the GPU architectures known to the model."""
    return sorted(_REGISTRY)


def get_gpu(name: str) -> GPUArch:
    """Look up a GPU architecture by (case-insensitive) name.

    Raises
    ------
    KeyError
        If the name is not one of :func:`available_gpus`.
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown GPU {name!r}; available: {', '.join(available_gpus())}"
        )
    return _REGISTRY[key]


def register_gpu(arch: GPUArch, *, overwrite: bool = False) -> None:
    """Register a custom architecture so it can be retrieved by name.

    Parameters
    ----------
    arch:
        The architecture to register.
    overwrite:
        Allow replacing an existing entry of the same name.
    """
    key = arch.name.upper()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"GPU {arch.name!r} is already registered")
    _REGISTRY[key] = arch
