"""Roofline and operation-intensity utilities (Section 3.2.2 of the paper).

The paper argues about sparse-kernel efficiency purely in terms of operation
intensity (FLOPs per byte loaded from global memory) against the machine
balance of each GPU.  These helpers expose that argument directly so the
analysis benchmarks can regenerate the paper's ``Max_reuse`` results and so
kernels can sanity-check the timing model against the roofline bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .arch import GPUArch
from .memory import BYTES_FP16, BYTES_FP32
from .tiling import optimal_tile_extent


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel placed on the roofline of a particular GPU."""

    arch: str
    operation_intensity: float
    attainable_flops: float
    peak_flops: float
    memory_bound: bool

    @property
    def efficiency(self) -> float:
        """Fraction of peak throughput attainable at this intensity."""
        if self.peak_flops <= 0:
            return 0.0
        return self.attainable_flops / self.peak_flops


def machine_balance(arch: GPUArch, *, use_tensor_core: bool = True) -> float:
    """FLOPs per DRAM byte needed to reach peak throughput on ``arch``."""
    return arch.peak_flops(use_tensor_core) / arch.dram_bandwidth


def attainable_flops(
    arch: GPUArch, operation_intensity: float, *, use_tensor_core: bool = True
) -> RooflinePoint:
    """Classic roofline: ``min(peak, intensity * bandwidth)``."""
    if operation_intensity < 0:
        raise ValueError("operation intensity must be non-negative")
    peak = arch.peak_flops(use_tensor_core)
    bw_limited = operation_intensity * arch.dram_bandwidth
    attainable = min(peak, bw_limited)
    return RooflinePoint(
        arch=arch.name,
        operation_intensity=operation_intensity,
        attainable_flops=attainable,
        peak_flops=peak,
        memory_bound=bw_limited < peak,
    )


@dataclass(frozen=True)
class RooflineBatch:
    """Many kernels placed on one GPU's roofline (array twin of
    :class:`RooflinePoint`)."""

    arch: str
    operation_intensity: np.ndarray
    attainable_flops: np.ndarray
    peak_flops: float
    memory_bound: np.ndarray

    @property
    def efficiency(self) -> np.ndarray:
        """Per-kernel fraction of peak throughput attainable."""
        if self.peak_flops <= 0:
            return np.zeros_like(self.attainable_flops)
        return self.attainable_flops / self.peak_flops


def attainable_flops_grid(
    arch: GPUArch,
    operation_intensity: np.ndarray,
    *,
    use_tensor_core: bool = True,
) -> RooflineBatch:
    """Element-wise :func:`attainable_flops` over an intensity array."""
    intensity = np.asarray(operation_intensity, dtype=np.float64)
    if np.any(intensity < 0):
        raise ValueError("operation intensity must be non-negative")
    peak = arch.peak_flops(use_tensor_core)
    bw_limited = intensity * arch.dram_bandwidth
    return RooflineBatch(
        arch=arch.name,
        operation_intensity=intensity,
        attainable_flops=np.minimum(peak, bw_limited),
        peak_flops=peak,
        memory_bound=bw_limited < peak,
    )


def dense_gemm_intensity(m: int, n: int, k: int, *, bytes_per_value: int = BYTES_FP16) -> float:
    """Operation intensity of a dense GEMM that streams each operand once."""
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    flops = 2.0 * m * n * k
    data = bytes_per_value * (m * k + k * n + m * n)
    return flops / data


def dense_tile_reuse(
    tile_m: int, tile_n: int, *, bytes_per_value: int = BYTES_FP16
) -> float:
    """Reuse (FLOP per byte) of a dense ``TM x TN`` output tile.

    For a K-step of size ``TK`` the tile loads ``(TM + TN) * TK`` values and
    performs ``2 * TM * TN * TK`` FLOPs, so the reuse is independent of
    ``TK``:  ``2 * TM * TN / (TM + TN)`` FLOP per value.
    """
    if tile_m <= 0 or tile_n <= 0:
        raise ValueError("tile dimensions must be positive")
    values = tile_m + tile_n
    flops = 2.0 * tile_m * tile_n
    return flops / (values * bytes_per_value)


def max_reuse_dense(arch: GPUArch, *, accumulator_bytes: int = BYTES_FP32) -> float:
    """``Reuse_dense = T_opt / 2`` FLOP per byte (Section 3.2.2).

    Derived from a square ``T_opt x T_opt`` output tile where
    ``T_opt = sqrt(Size_regfile / accumulator_bytes)``.
    """
    t_opt = optimal_tile_extent(arch, accumulator_bytes=accumulator_bytes)
    return dense_tile_reuse(int(t_opt), int(t_opt))


def max_reuse_unstructured(
    arch: GPUArch, density: float, *, accumulator_bytes: int = BYTES_FP32
) -> float:
    """``Max_reuse = sqrt(alpha) * Reuse_dense`` for unstructured / balanced
    sparsity (Section 3.2.2), where ``alpha`` is the non-zero ratio."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    return math.sqrt(density) * max_reuse_dense(arch, accumulator_bytes=accumulator_bytes)


def max_reuse_blockwise(
    arch: GPUArch,
    block_size: int,
    *,
    accumulator_bytes: int = BYTES_FP32,
) -> float:
    """Reuse attainable by block-wise / vector-wise / Shfl-BW sparsity.

    If the block (vector) size ``V`` is at least ``T_opt`` the dense-tile reuse
    is fully recovered; smaller ``V`` caps the output-tile extent along M at
    ``V`` (the sparse side), while the dense side can still use ``T_opt``.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    t_opt = optimal_tile_extent(arch, accumulator_bytes=accumulator_bytes)
    tile_m = min(block_size, int(t_opt))
    tile_n = int(t_opt)
    return dense_tile_reuse(tile_m, tile_n)


def reuse_ratio_vs_dense(arch: GPUArch, pattern: str, density: float, block_size: int = 32) -> float:
    """Convenience: reuse of ``pattern`` relative to the dense maximum."""
    dense = max_reuse_dense(arch)
    pattern = pattern.lower()
    if pattern in ("unstructured", "balanced"):
        return max_reuse_unstructured(arch, density) / dense
    if pattern in ("blockwise", "block-wise", "vectorwise", "vector-wise", "shflbw", "shfl-bw"):
        return max_reuse_blockwise(arch, block_size) / dense
    if pattern == "dense":
        return 1.0
    raise ValueError(f"unknown sparsity pattern {pattern!r}")
