"""GPU architecture models and the analytical kernel-timing simulator.

This package stands in for the V100 / T4 / A100 hardware used in the paper's
evaluation.  See :mod:`repro.gpu.arch` for the architecture descriptions and
:mod:`repro.gpu.simulator` for the timing model that every kernel in
:mod:`repro.kernels` is scored against.
"""

from .arch import A100, T4, V100, GPUArch, MMAShape, available_gpus, get_gpu, register_gpu
from .memory import (
    BYTES_FP16,
    BYTES_FP32,
    BYTES_INDEX,
    OperandTraffic,
    TrafficBreakdown,
    gather_access_efficiency,
)
from .pipeline import PipelineEstimate, PipelineSpec, dense_pipeline_time, pipeline_time
from .roofline import (
    RooflinePoint,
    attainable_flops,
    dense_gemm_intensity,
    dense_tile_reuse,
    machine_balance,
    max_reuse_blockwise,
    max_reuse_dense,
    max_reuse_unstructured,
    reuse_ratio_vs_dense,
)
from .simulator import ComputeUnit, KernelLaunch, KernelTiming, simulate
from .tensorcore import (
    ComputeEstimate,
    ceil_div,
    cuda_core_time,
    mma_instructions_for_tile,
    sparse_tensor_core_time,
    tensor_core_time,
)
from .tiling import (
    TileConfig,
    concurrent_tiles,
    default_gemm_tile,
    occupancy,
    optimal_tile_extent,
    wave_count,
    wave_efficiency,
)

__all__ = [
    "A100",
    "T4",
    "V100",
    "GPUArch",
    "MMAShape",
    "available_gpus",
    "get_gpu",
    "register_gpu",
    "BYTES_FP16",
    "BYTES_FP32",
    "BYTES_INDEX",
    "OperandTraffic",
    "TrafficBreakdown",
    "gather_access_efficiency",
    "PipelineEstimate",
    "PipelineSpec",
    "dense_pipeline_time",
    "pipeline_time",
    "RooflinePoint",
    "attainable_flops",
    "dense_gemm_intensity",
    "dense_tile_reuse",
    "machine_balance",
    "max_reuse_blockwise",
    "max_reuse_dense",
    "max_reuse_unstructured",
    "reuse_ratio_vs_dense",
    "ComputeUnit",
    "KernelLaunch",
    "KernelTiming",
    "simulate",
    "ComputeEstimate",
    "ceil_div",
    "cuda_core_time",
    "mma_instructions_for_tile",
    "sparse_tensor_core_time",
    "tensor_core_time",
    "TileConfig",
    "concurrent_tiles",
    "default_gemm_tile",
    "occupancy",
    "optimal_tile_extent",
    "wave_count",
    "wave_efficiency",
]
