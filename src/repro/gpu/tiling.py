"""Threadblock tiling, occupancy and wave-quantisation model.

The paper's efficiency analysis (Section 3.2.2) rests on how large an output
tile a threadblock can accumulate in the register file: the larger the
``TM x TN`` output tile, the more FLOPs are performed per byte loaded.  This
module provides:

* :class:`TileConfig` — a threadblock tile shape plus pipeline depth,
* occupancy estimation from shared-memory and register usage,
* wave quantisation: a grid of ``num_tiles`` threadblocks executes in
  ``ceil(num_tiles / concurrent_tiles)`` waves and the last, partially filled
  wave still takes a full wave's time,
* the register-file-limited optimal tile size ``T_opt = sqrt(regfile/accum)``
  used in the Max_reuse derivation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .arch import GPUArch
from .memory import BYTES_FP16, BYTES_FP32
from .tensorcore import ceil_div, ceil_div_array
from .vectorize import anytrue


@dataclass(frozen=True)
class TileConfig:
    """A threadblock tiling configuration for a GEMM-like kernel.

    Attributes
    ----------
    tile_m, tile_n, tile_k:
        Per-threadblock tile extents along the GEMM M, N and K dimensions.
        The threadblock iterates over K in steps of ``tile_k``.
    threads:
        Threads per threadblock.
    pipeline_stages:
        Number of in-flight shared-memory buffers (double/triple buffering).
    accumulator_bytes:
        Bytes per output accumulator element held in registers (FP32 by
        default, matching tensor-core accumulation).
    """

    tile_m: int
    tile_n: int
    tile_k: int
    threads: int = 128
    pipeline_stages: int = 2
    accumulator_bytes: int = BYTES_FP32

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k) <= 0:
            raise ValueError("tile dimensions must be positive")
        if self.threads <= 0 or self.threads % 32 != 0:
            raise ValueError("threads must be a positive multiple of 32")
        if self.pipeline_stages < 1:
            raise ValueError("pipeline_stages must be >= 1")

    # ------------------------------------------------------------------ #
    # Resource usage
    # ------------------------------------------------------------------ #
    @property
    def smem_bytes_per_stage(self) -> int:
        """Shared memory for one pipeline stage (A tile + B tile, FP16)."""
        a_tile = self.tile_m * self.tile_k * BYTES_FP16
        b_tile = self.tile_k * self.tile_n * BYTES_FP16
        return a_tile + b_tile

    @property
    def smem_bytes(self) -> int:
        """Total shared memory used by the threadblock."""
        return self.smem_bytes_per_stage * self.pipeline_stages

    @property
    def accumulator_bytes_total(self) -> int:
        """Register bytes holding the output tile accumulators."""
        return self.tile_m * self.tile_n * self.accumulator_bytes

    @property
    def register_bytes(self) -> int:
        """Total register usage estimate (accumulators + staging fragments)."""
        # Staging fragments for A and B plus address arithmetic; a flat 25 %
        # overhead over the accumulators is a reasonable CUTLASS-like figure.
        return int(self.accumulator_bytes_total * 1.25)

    @property
    def flops_per_k_step(self) -> int:
        """Useful FLOPs performed per K-iteration of the main loop."""
        return 2 * self.tile_m * self.tile_n * self.tile_k

    @property
    def load_bytes_per_k_step(self) -> int:
        """Bytes loaded from global memory per K-iteration (dense operands)."""
        return self.smem_bytes_per_stage

    def grid_tiles(self, m: int, n: int) -> int:
        """Number of threadblocks needed to cover an ``m x n`` output."""
        if m <= 0 or n <= 0:
            raise ValueError("problem dimensions must be positive")
        return ceil_div(m, self.tile_m) * ceil_div(n, self.tile_n)

    def k_steps(self, k: int) -> int:
        """Number of main-loop iterations over a reduction length ``k``."""
        if k <= 0:
            raise ValueError("k must be positive")
        return ceil_div(k, self.tile_k)


def occupancy(arch: GPUArch, tile: TileConfig) -> int:
    """Concurrent threadblocks per SM, limited by shared memory, registers
    and the thread-count ceiling.  Always at least 1 (a tile that exceeds an
    SM's resources is treated as running alone, serialised)."""
    by_smem = arch.shared_mem_per_sm // max(tile.smem_bytes, 1)
    by_regs = arch.register_file_per_sm // max(tile.register_bytes, 1)
    by_threads = arch.max_threads_per_sm // tile.threads
    return max(1, min(by_smem, by_regs, by_threads))


def concurrent_tiles(arch: GPUArch, tile: TileConfig) -> int:
    """Threadblocks resident across the whole chip at once."""
    return occupancy(arch, tile) * arch.sm_count


def wave_count(arch: GPUArch, tile: TileConfig, num_tiles: int) -> int:
    """Number of waves needed to run ``num_tiles`` threadblocks."""
    if num_tiles <= 0:
        raise ValueError("num_tiles must be positive")
    return ceil_div(num_tiles, concurrent_tiles(arch, tile))


def wave_efficiency(arch: GPUArch, tile: TileConfig, num_tiles: int) -> float:
    """Fraction of the last wave that is actually occupied.

    A grid of 130 tiles on a machine that runs 128 concurrently takes two
    waves but the second wave is only 2/128 full; overall efficiency is
    ``130 / 256``.  Small grids (fewer tiles than SMs) are the main reason
    dense tensor-core GEMMs under-perform on narrow DNN layer shapes, which
    in turn is part of why sparse kernels can exceed the naive ``1/density``
    speedup bound on T4 (Section 6.2).
    """
    waves = wave_count(arch, tile, num_tiles)
    return num_tiles / (waves * concurrent_tiles(arch, tile))


# --------------------------------------------------------------------------- #
# Batched (array-accepting) variants — element-wise twins of the scalar
# occupancy / wave model above, operating on per-launch tile-field arrays.
# --------------------------------------------------------------------------- #
def smem_bytes_grid(
    tile_m: np.ndarray,
    tile_n: np.ndarray,
    tile_k: np.ndarray,
    pipeline_stages: np.ndarray,
) -> np.ndarray:
    """Element-wise :attr:`TileConfig.smem_bytes`."""
    a_tile = tile_m * tile_k * BYTES_FP16
    b_tile = tile_k * tile_n * BYTES_FP16
    return (a_tile + b_tile) * pipeline_stages


def register_bytes_grid(
    tile_m: np.ndarray, tile_n: np.ndarray, accumulator_bytes: np.ndarray
) -> np.ndarray:
    """Element-wise :attr:`TileConfig.register_bytes` (same 25 % staging
    overhead, same truncation towards zero as the scalar ``int()``)."""
    accumulators = tile_m * tile_n * accumulator_bytes
    return (accumulators.astype(np.float64) * 1.25).astype(np.int64)


def occupancy_grid(
    arch: GPUArch,
    *,
    tile_m: np.ndarray,
    tile_n: np.ndarray,
    tile_k: np.ndarray,
    threads: np.ndarray,
    pipeline_stages: np.ndarray,
    accumulator_bytes: np.ndarray,
) -> np.ndarray:
    """Element-wise :func:`occupancy`."""
    smem = smem_bytes_grid(tile_m, tile_n, tile_k, pipeline_stages)
    regs = register_bytes_grid(tile_m, tile_n, accumulator_bytes)
    by_smem = arch.shared_mem_per_sm // np.maximum(smem, 1)
    by_regs = arch.register_file_per_sm // np.maximum(regs, 1)
    by_threads = arch.max_threads_per_sm // threads
    return np.maximum(1, np.minimum(np.minimum(by_smem, by_regs), by_threads))


def concurrent_tiles_grid(
    arch: GPUArch,
    *,
    tile_m: np.ndarray,
    tile_n: np.ndarray,
    tile_k: np.ndarray,
    threads: np.ndarray,
    pipeline_stages: np.ndarray,
    accumulator_bytes: np.ndarray,
) -> np.ndarray:
    """Element-wise :func:`concurrent_tiles`."""
    return (
        occupancy_grid(
            arch,
            tile_m=tile_m,
            tile_n=tile_n,
            tile_k=tile_k,
            threads=threads,
            pipeline_stages=pipeline_stages,
            accumulator_bytes=accumulator_bytes,
        )
        * arch.sm_count
    )


def wave_count_grid(num_tiles: np.ndarray, concurrent: np.ndarray) -> np.ndarray:
    """Element-wise :func:`wave_count` given precomputed concurrent tiles."""
    if anytrue(num_tiles <= 0):
        raise ValueError("num_tiles must be positive")
    return ceil_div_array(num_tiles, concurrent)


def _next_pow2_grid(dim: np.ndarray) -> np.ndarray:
    """Element-wise ``1 << (max(dim, 1) - 1).bit_length()``.

    ``bit_length`` is recovered from the ``frexp`` exponent, which is exact
    for every integer a float64 can represent (the grids here are far below
    2**53).
    """
    x = np.maximum(dim, 1) - 1
    bit_length = np.frexp(x.astype(np.float64))[1]
    return np.left_shift(np.int64(1), bit_length)


def default_gemm_tile_grid(
    m: np.ndarray, n: np.ndarray, k: np.ndarray, *, min_tiles: int = 96
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Element-wise :func:`default_gemm_tile` over problem-shape arrays.

    Returns the ``(tile_m, tile_n, tile_k)`` arrays; the remaining
    :class:`TileConfig` fields are the constructor defaults (128 threads,
    2 pipeline stages, FP32 accumulators), exactly as the scalar helper
    produces.  The scalar shrink-until-``min_tiles`` loops run at most twice
    per dimension (128 -> 64 -> 32), so two masked halvings reproduce them.
    """
    if anytrue(m <= 0) or anytrue(n <= 0):
        raise ValueError("problem dimensions must be positive")

    def _fit(dim: np.ndarray, preferred: int) -> np.ndarray:
        return np.where(
            dim >= preferred, preferred, np.maximum(16, _next_pow2_grid(dim))
        )

    tile_m = _fit(m, 128)
    tile_n = _fit(n, 128)
    tile_k = _fit(k, 64)

    def grid(tm: np.ndarray, tn: np.ndarray) -> np.ndarray:
        return ceil_div_array(m, tm) * ceil_div_array(n, tn)

    for _ in range(2):
        shrink = (grid(tile_m, tile_n) < min_tiles) & (tile_m > 32)
        if not anytrue(shrink):
            break
        tile_m = np.where(shrink, tile_m // 2, tile_m)
    for _ in range(2):
        shrink = (grid(tile_m, tile_n) < min_tiles) & (tile_n > 32)
        if not anytrue(shrink):
            break
        tile_n = np.where(shrink, tile_n // 2, tile_n)
    return tile_m, tile_n, tile_k


def optimal_tile_extent(arch: GPUArch, *, accumulator_bytes: int = BYTES_FP32) -> float:
    """``T_opt = sqrt(Size_regfile / accum_bytes)`` from Section 3.2.2.

    This is the square output-tile edge that maximises data reuse subject to
    the register file holding the accumulators; block/vector sizes ``V`` at or
    above this value allow a sparse kernel to reach dense-level reuse.
    """
    return math.sqrt(arch.register_file_per_sm / accumulator_bytes)


def default_gemm_tile(m: int, n: int, k: int, *, min_tiles: int = 96) -> TileConfig:
    """Pick a reasonable dense-GEMM threadblock tile for a problem shape.

    Mirrors the heuristics of vendor GEMM libraries: prefer 128x128 tiles for
    large problems, but shrink the tile (M first, then N, floor 32) until the
    grid has at least ``min_tiles`` threadblocks so narrow DNN-layer shapes do
    not leave most of the chip idle.  Dimensions smaller than the tile shrink
    to the next power of two.
    """

    def _fit(dim: int, preferred: int) -> int:
        if dim >= preferred:
            return preferred
        return max(16, 1 << (max(dim, 1) - 1).bit_length())

    tile_m = _fit(m, 128)
    tile_n = _fit(n, 128)
    tile_k = _fit(k, 64)

    def grid(tm: int, tn: int) -> int:
        return ceil_div(m, tm) * ceil_div(n, tn)

    while grid(tile_m, tile_n) < min_tiles and tile_m > 32:
        tile_m //= 2
    while grid(tile_m, tile_n) < min_tiles and tile_n > 32:
        tile_n //= 2
    return TileConfig(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k)
