"""Compute-throughput model for tensor-core and CUDA-core execution.

Tensor cores consume work in fixed ``m x n x k`` MMA granules (Section 2.1 of
the paper).  A threadblock tile whose dimensions are not multiples of the MMA
shape still has to issue whole instructions, so small or ragged tiles waste
throughput.  This module converts a tile's logical FLOPs into issued-MMA
FLOPs, and provides the analogous (much simpler) model for CUDA-core FMA
execution used by unstructured-sparsity baselines such as Sputnik.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GPUArch, MMAShape
from .vectorize import anytrue


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for positive operands."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


@dataclass(frozen=True)
class ComputeEstimate:
    """Result of estimating the compute time of a block of work.

    Attributes
    ----------
    time_s:
        Estimated execution time in seconds at the modelled efficiency.
    issued_flops:
        FLOPs actually issued to the execution units, including padding waste.
    useful_flops:
        FLOPs that contribute to the result.
    utilization:
        ``useful_flops / issued_flops`` (1.0 means no quantisation waste).
    """

    time_s: float
    issued_flops: float
    useful_flops: float

    @property
    def utilization(self) -> float:
        if self.issued_flops <= 0:
            return 0.0
        return self.useful_flops / self.issued_flops


def mma_instructions_for_tile(tile_m: int, tile_n: int, tile_k: int, mma: MMAShape) -> int:
    """Number of MMA instructions needed to cover a ``tile_m x tile_n x tile_k``
    matrix-multiply fragment, padding each dimension up to the MMA granule."""
    if min(tile_m, tile_n, tile_k) <= 0:
        raise ValueError("tile dimensions must be positive")
    return (
        ceil_div(tile_m, mma.m)
        * ceil_div(tile_n, mma.n)
        * ceil_div(tile_k, mma.k)
    )


def tensor_core_tile_flops(tile_m: int, tile_n: int, tile_k: int, mma: MMAShape) -> float:
    """Issued FLOPs (including padding) for one tile on tensor cores."""
    return mma_instructions_for_tile(tile_m, tile_n, tile_k, mma) * mma.flops


def tensor_core_time(
    arch: GPUArch,
    useful_flops: float,
    *,
    tile_m: int,
    tile_n: int,
    tile_k: int,
    num_tiles: float,
    efficiency: float = 1.0,
) -> ComputeEstimate:
    """Estimate tensor-core compute time for ``num_tiles`` tiles of work.

    Parameters
    ----------
    arch:
        Target GPU.
    useful_flops:
        Total useful FLOPs across all tiles.
    tile_m, tile_n, tile_k:
        Per-MMA-loop fragment shape used by the kernel; quantisation waste is
        charged when these are not multiples of the MMA granule.
    num_tiles:
        Number of such fragments issued over the whole kernel (may be
        fractional when derived from averages).
    efficiency:
        Fraction of peak tensor throughput achievable by this kernel's inner
        loop (instruction mix, bank conflicts, etc.).
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    issued = tensor_core_tile_flops(tile_m, tile_n, tile_k, arch.mma) * num_tiles
    issued = max(issued, useful_flops)
    time = issued / (arch.tensor_flops * efficiency)
    return ComputeEstimate(time_s=time, issued_flops=issued, useful_flops=useful_flops)


def cuda_core_time(
    arch: GPUArch,
    useful_flops: float,
    *,
    efficiency: float = 1.0,
    vector_width: int = 1,
    occupancy: float = 1.0,
) -> ComputeEstimate:
    """Estimate CUDA-core (FMA pipeline) compute time.

    Unstructured sparse kernels execute scalar or short-vector FMAs; there is
    no instruction-shape quantisation but irregular control flow and low
    occupancy reduce achieved throughput, captured by ``efficiency`` and
    ``occupancy``.
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    if not 0.0 < occupancy <= 1.0:
        raise ValueError("occupancy must be in (0, 1]")
    if vector_width < 1:
        raise ValueError("vector_width must be >= 1")
    # Short vectors below the 32-wide warp SIMD width waste lanes.
    lane_utilization = min(1.0, vector_width / 1.0) if vector_width >= 1 else 1.0
    achieved = arch.cuda_core_flops * efficiency * occupancy * lane_utilization
    time = useful_flops / achieved
    return ComputeEstimate(
        time_s=time, issued_flops=useful_flops, useful_flops=useful_flops
    )


# --------------------------------------------------------------------------- #
# Batched (array-accepting) variants — element-wise twins of the scalar
# estimators above, used by repro.gpu.simulator.simulate_batch.  Inputs are
# arrays with one entry per launch; every expression mirrors the scalar one
# so the results are bit-identical to looping the scalar functions.
# --------------------------------------------------------------------------- #
def ceil_div_array(a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
    """Element-wise integer ceiling division for positive operands."""
    if anytrue(b <= 0):
        raise ValueError("divisor must be positive")
    return -(-a // b)


@dataclass(frozen=True)
class ComputeBatch:
    """Per-launch compute estimates (the array twin of :class:`ComputeEstimate`)."""

    time_s: np.ndarray
    issued_flops: np.ndarray
    useful_flops: np.ndarray

    @property
    def utilization(self) -> np.ndarray:
        issued = self.issued_flops
        safe = np.where(issued > 0, issued, 1.0)
        return np.where(issued > 0, self.useful_flops / safe, 0.0)


def mma_instructions_grid(
    tile_m: np.ndarray, tile_n: np.ndarray, tile_k: np.ndarray, mma: MMAShape
) -> np.ndarray:
    """Element-wise :func:`mma_instructions_for_tile`."""
    if anytrue(tile_m <= 0) or anytrue(tile_n <= 0) or anytrue(tile_k <= 0):
        raise ValueError("tile dimensions must be positive")
    return (
        ceil_div_array(tile_m, mma.m)
        * ceil_div_array(tile_n, mma.n)
        * ceil_div_array(tile_k, mma.k)
    )


def _check_efficiency_array(efficiency: np.ndarray) -> np.ndarray:
    efficiency = np.asarray(efficiency, dtype=np.float64)
    if anytrue((efficiency <= 0.0) | (efficiency > 1.0)):
        raise ValueError("efficiency must be in (0, 1]")
    return efficiency


def tensor_core_time_grid(
    arch: GPUArch,
    useful_flops: np.ndarray,
    *,
    tile_m: np.ndarray,
    tile_n: np.ndarray,
    tile_k: np.ndarray,
    num_tiles: np.ndarray,
    efficiency: np.ndarray,
) -> ComputeBatch:
    """Element-wise :func:`tensor_core_time` over a batch of launches."""
    efficiency = _check_efficiency_array(efficiency)
    useful_flops = np.asarray(useful_flops, dtype=np.float64)
    tile_flops = (mma_instructions_grid(tile_m, tile_n, tile_k, arch.mma) * arch.mma.flops)
    issued = tile_flops.astype(np.float64) * np.asarray(num_tiles, dtype=np.float64)
    issued = np.maximum(issued, useful_flops)
    time = issued / (arch.tensor_flops * efficiency)
    return ComputeBatch(time_s=time, issued_flops=issued, useful_flops=useful_flops)


def cuda_core_time_grid(
    arch: GPUArch,
    useful_flops: np.ndarray,
    *,
    efficiency: np.ndarray,
) -> ComputeBatch:
    """Element-wise :func:`cuda_core_time` (unit occupancy / lane width, the
    form the simulator uses)."""
    efficiency = _check_efficiency_array(efficiency)
    useful_flops = np.asarray(useful_flops, dtype=np.float64)
    achieved = arch.cuda_core_flops * efficiency
    time = useful_flops / achieved
    return ComputeBatch(
        time_s=time, issued_flops=useful_flops, useful_flops=useful_flops
    )


def sparse_tensor_core_time_grid(
    arch: GPUArch,
    useful_flops: np.ndarray,
    *,
    tile_m: np.ndarray,
    tile_n: np.ndarray,
    tile_k: np.ndarray,
    num_tiles: np.ndarray,
    efficiency: np.ndarray,
) -> ComputeBatch:
    """Element-wise :func:`sparse_tensor_core_time`."""
    dense = tensor_core_time_grid(
        arch,
        useful_flops,
        tile_m=tile_m,
        tile_n=tile_n,
        tile_k=tile_k,
        num_tiles=num_tiles,
        efficiency=efficiency,
    )
    if not arch.supports_sparse_tensor_core:
        return dense
    return ComputeBatch(
        time_s=dense.time_s / 2.0,
        issued_flops=dense.issued_flops,
        useful_flops=dense.useful_flops,
    )


def sparse_tensor_core_time(
    arch: GPUArch,
    useful_flops: float,
    *,
    tile_m: int,
    tile_n: int,
    tile_k: int,
    num_tiles: float,
    efficiency: float = 1.0,
) -> ComputeEstimate:
    """Compute time using the A100 sparse tensor cores (2:4 structured sparsity).

    The sparse tensor core doubles the effective MAC rate for matrices in the
    2-in-4 balanced format; architectures without the feature fall back to the
    dense tensor-core rate (the metadata selection then brings no compute
    benefit, matching cuSPARSELt behaviour on pre-Ampere parts).
    """
    dense = tensor_core_time(
        arch,
        useful_flops,
        tile_m=tile_m,
        tile_n=tile_n,
        tile_k=tile_k,
        num_tiles=num_tiles,
        efficiency=efficiency,
    )
    if not arch.supports_sparse_tensor_core:
        return dense
    return ComputeEstimate(
        time_s=dense.time_s / 2.0,
        issued_flops=dense.issued_flops,
        useful_flops=dense.useful_flops,
    )
