"""Analytical kernel-timing simulator.

This is the substitute for running the paper's CUDA kernels on real V100 / T4
/ A100 hardware.  Every kernel in :mod:`repro.kernels` describes one launch as
a :class:`KernelLaunch` — how many useful FLOPs it performs, how many bytes it
moves (per operand, after format-specific compression), how it tiles the
problem and which execution unit it uses — and the simulator turns that into a
time estimate by combining:

* the tensor-core / CUDA-core compute model (:mod:`repro.gpu.tensorcore`),
* the DRAM traffic + L2 model (:mod:`repro.gpu.memory`),
* occupancy and wave quantisation (:mod:`repro.gpu.tiling`),
* the software-pipeline / metadata-prefetch model (:mod:`repro.gpu.pipeline`).

The absolute numbers are approximations; what the model is designed to get
right are the *relationships* the paper's evaluation hinges on — dense vs
sparse crossover points, tensor-core vs CUDA-core gaps, the effect of block
size ``V`` on data reuse, and the near-zero cost of the Shfl-BW row shuffle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .arch import GPUArch
from .memory import TrafficBreakdown
from .pipeline import PipelineSpec, pipeline_time
from .tensorcore import (
    ComputeEstimate,
    cuda_core_time,
    sparse_tensor_core_time,
    tensor_core_time,
)
from .tiling import TileConfig, concurrent_tiles, wave_count


class ComputeUnit(enum.Enum):
    """Execution unit a kernel maps its inner product onto."""

    TENSOR_CORE = "tensor_core"
    CUDA_CORE = "cuda_core"
    SPARSE_TENSOR_CORE = "sparse_tensor_core"


@dataclass
class KernelLaunch:
    """Complete description of one kernel launch for the timing model.

    Attributes
    ----------
    name:
        Human-readable kernel name (for reports).
    useful_flops:
        FLOPs that contribute to the mathematical result.
    traffic:
        DRAM traffic of the data operands (weights, activations, outputs).
    meta_traffic:
        DRAM traffic of sparse metadata (column indices, row indices);
        kept separate so the metadata-prefetch pipeline model can act on it.
    tile:
        Threadblock tiling configuration.
    num_tiles:
        Number of output tiles (threadblocks) in the grid.
    k_steps:
        Main-loop iterations per threadblock.
    compute_unit:
        Which execution unit performs the MACs.
    compute_efficiency:
        Fraction of the unit's peak the inner loop sustains.
    bandwidth_efficiency:
        Fraction of peak DRAM bandwidth the access pattern sustains.
    prefetch_metadata:
        Whether the kernel bulk-prefetches metadata (Algorithm 1).
    meta_prefetch_steps:
        Bulk size of the metadata prefetch.
    extra_overhead_s:
        Additional fixed overhead (e.g. multi-stream synchronisation for the
        TileWise baseline, format conversion done on the device, etc.).
    launches:
        Number of device kernel launches this logical operation needs (1 for
        fused kernels, larger for multi-stream / multi-pass baselines).
    """

    name: str
    useful_flops: float
    traffic: TrafficBreakdown
    tile: TileConfig
    num_tiles: int
    k_steps: int
    compute_unit: ComputeUnit = ComputeUnit.TENSOR_CORE
    meta_traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    compute_efficiency: float = 0.85
    bandwidth_efficiency: float = 0.85
    prefetch_metadata: bool = True
    meta_prefetch_steps: int = 4
    extra_overhead_s: float = 0.0
    launches: int = 1

    def __post_init__(self) -> None:
        if self.useful_flops < 0:
            raise ValueError("useful_flops must be non-negative")
        if self.num_tiles < 1:
            raise ValueError("num_tiles must be >= 1")
        if self.k_steps < 1:
            raise ValueError("k_steps must be >= 1")
        if self.launches < 1:
            raise ValueError("launches must be >= 1")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class KernelTiming:
    """Timing estimate returned by :func:`simulate`."""

    kernel: str
    arch: str
    total_time_s: float
    compute_time_s: float
    memory_time_s: float
    meta_time_s: float
    overhead_s: float
    waves: int
    bound: str
    useful_flops: float
    dram_bytes: float
    compute_utilization: float

    @property
    def achieved_tflops(self) -> float:
        """Achieved useful throughput in TFLOP/s."""
        if self.total_time_s <= 0:
            return 0.0
        return self.useful_flops / self.total_time_s / 1.0e12

    @property
    def achieved_bandwidth_gbs(self) -> float:
        """Achieved DRAM bandwidth in GB/s."""
        if self.total_time_s <= 0:
            return 0.0
        return self.dram_bytes / self.total_time_s / 1.0e9

    def speedup_over(self, other: "KernelTiming") -> float:
        """Speedup of this kernel relative to ``other`` (>1 means faster)."""
        if self.total_time_s <= 0:
            return float("inf")
        return other.total_time_s / self.total_time_s


def _compute_estimate(arch: GPUArch, launch: KernelLaunch) -> ComputeEstimate:
    """Per-launch compute estimate on the requested execution unit."""
    total_fragments = launch.num_tiles * launch.k_steps
    if launch.compute_unit is ComputeUnit.TENSOR_CORE:
        return tensor_core_time(
            arch,
            launch.useful_flops,
            tile_m=launch.tile.tile_m,
            tile_n=launch.tile.tile_n,
            tile_k=launch.tile.tile_k,
            num_tiles=total_fragments,
            efficiency=launch.compute_efficiency,
        )
    if launch.compute_unit is ComputeUnit.SPARSE_TENSOR_CORE:
        return sparse_tensor_core_time(
            arch,
            launch.useful_flops,
            tile_m=launch.tile.tile_m,
            tile_n=launch.tile.tile_n,
            tile_k=launch.tile.tile_k,
            num_tiles=total_fragments,
            efficiency=launch.compute_efficiency,
        )
    return cuda_core_time(
        arch,
        launch.useful_flops,
        efficiency=launch.compute_efficiency,
    )


def simulate(arch: GPUArch, launch: KernelLaunch) -> KernelTiming:
    """Estimate the execution time of ``launch`` on ``arch``.

    The whole-kernel compute time (peak-throughput model, de-rated by grid
    under-utilisation and wave quantisation) and the whole-kernel DRAM /
    metadata traffic times feed the software-pipeline model, which decides how
    much of the memory latency hides behind compute; fixed launch overheads
    are added on top.
    """
    compute = _compute_estimate(arch, launch)

    data_bytes = launch.traffic.total_dram_bytes(arch)
    meta_bytes = launch.meta_traffic.total_dram_bytes(arch)
    total_bytes = data_bytes + meta_bytes

    memory_time = launch.traffic.memory_time(
        arch, bandwidth_efficiency=launch.bandwidth_efficiency
    )
    meta_time = launch.meta_traffic.memory_time(
        arch, bandwidth_efficiency=launch.bandwidth_efficiency
    )

    waves = wave_count(arch, launch.tile, launch.num_tiles)
    # Fraction of the chip's compute resources the grid can actually keep
    # busy: an SM's execution units are saturated once one threadblock is
    # resident (extra occupancy only hides latency), so what matters is how
    # many SMs receive work in the average wave.  Small grids (fewer tiles
    # than SMs) and ragged final waves both lower it.  The peak-throughput
    # compute estimate is stretched by the inverse of this factor.
    tiles_per_wave = launch.num_tiles / waves
    grid_utilization = min(1.0, tiles_per_wave / arch.sm_count)
    effective_compute_time = compute.time_s / grid_utilization

    spec = PipelineSpec(
        compute_time=effective_compute_time / launch.k_steps,
        load_time=memory_time / launch.k_steps,
        meta_time=meta_time / launch.k_steps,
        k_steps=launch.k_steps,
        pipeline_stages=launch.tile.pipeline_stages,
        meta_prefetch_steps=launch.meta_prefetch_steps,
    )
    pipe = pipeline_time(spec, prefetch_metadata=launch.prefetch_metadata)

    overhead = (
        arch.kernel_launch_overhead_s * launch.launches + launch.extra_overhead_s
    )
    # The pipeline prologue (filling the first buffers) is paid per resident
    # threadblock, not once per whole-kernel "step": dividing by the number of
    # concurrently resident tiles scales the whole-kernel-granularity estimate
    # back to a per-tile warm-up.
    resident = max(1, min(launch.num_tiles, concurrent_tiles(arch, launch.tile)))
    total = pipe.steady_state_time + pipe.prologue_time / resident + overhead

    return KernelTiming(
        kernel=launch.name,
        arch=arch.name,
        total_time_s=total,
        compute_time_s=effective_compute_time,
        memory_time_s=memory_time,
        meta_time_s=meta_time,
        overhead_s=overhead,
        waves=waves,
        bound=pipe.bound,
        useful_flops=launch.useful_flops,
        dram_bytes=total_bytes,
        compute_utilization=compute.utilization,
    )
