"""Analytical kernel-timing simulator.

This is the substitute for running the paper's CUDA kernels on real V100 / T4
/ A100 hardware.  Every kernel in :mod:`repro.kernels` describes one launch as
a :class:`KernelLaunch` — how many useful FLOPs it performs, how many bytes it
moves (per operand, after format-specific compression), how it tiles the
problem and which execution unit it uses — and the simulator turns that into a
time estimate by combining:

* the tensor-core / CUDA-core compute model (:mod:`repro.gpu.tensorcore`),
* the DRAM traffic + L2 model (:mod:`repro.gpu.memory`),
* occupancy and wave quantisation (:mod:`repro.gpu.tiling`),
* the software-pipeline / metadata-prefetch model (:mod:`repro.gpu.pipeline`).

The absolute numbers are approximations; what the model is designed to get
right are the *relationships* the paper's evaluation hinges on — dense vs
sparse crossover points, tensor-core vs CUDA-core gaps, the effect of block
size ``V`` on data reuse, and the near-zero cost of the Shfl-BW row shuffle.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .arch import GPUArch
from .memory import TrafficBatch, TrafficBreakdown
from .vectorize import anytrue, stack_parts
from .pipeline import PipelineSpec, pipeline_time, pipeline_time_grid
from .tensorcore import (
    ComputeEstimate,
    cuda_core_time,
    cuda_core_time_grid,
    sparse_tensor_core_time,
    tensor_core_time,
    tensor_core_time_grid,
)
from .tiling import (
    TileConfig,
    concurrent_tiles,
    concurrent_tiles_grid,
    wave_count,
    wave_count_grid,
)


class ComputeUnit(enum.Enum):
    """Execution unit a kernel maps its inner product onto."""

    TENSOR_CORE = "tensor_core"
    CUDA_CORE = "cuda_core"
    SPARSE_TENSOR_CORE = "sparse_tensor_core"


@dataclass
class KernelLaunch:
    """Complete description of one kernel launch for the timing model.

    Attributes
    ----------
    name:
        Human-readable kernel name (for reports).
    useful_flops:
        FLOPs that contribute to the mathematical result.
    traffic:
        DRAM traffic of the data operands (weights, activations, outputs).
    meta_traffic:
        DRAM traffic of sparse metadata (column indices, row indices);
        kept separate so the metadata-prefetch pipeline model can act on it.
    tile:
        Threadblock tiling configuration.
    num_tiles:
        Number of output tiles (threadblocks) in the grid.
    k_steps:
        Main-loop iterations per threadblock.
    compute_unit:
        Which execution unit performs the MACs.
    compute_efficiency:
        Fraction of the unit's peak the inner loop sustains.
    bandwidth_efficiency:
        Fraction of peak DRAM bandwidth the access pattern sustains.
    prefetch_metadata:
        Whether the kernel bulk-prefetches metadata (Algorithm 1).
    meta_prefetch_steps:
        Bulk size of the metadata prefetch.
    extra_overhead_s:
        Additional fixed overhead (e.g. multi-stream synchronisation for the
        TileWise baseline, format conversion done on the device, etc.).
    launches:
        Number of device kernel launches this logical operation needs (1 for
        fused kernels, larger for multi-stream / multi-pass baselines).
    """

    name: str
    useful_flops: float
    traffic: TrafficBreakdown
    tile: TileConfig
    num_tiles: int
    k_steps: int
    compute_unit: ComputeUnit = ComputeUnit.TENSOR_CORE
    meta_traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    compute_efficiency: float = 0.85
    bandwidth_efficiency: float = 0.85
    prefetch_metadata: bool = True
    meta_prefetch_steps: int = 4
    extra_overhead_s: float = 0.0
    launches: int = 1

    def __post_init__(self) -> None:
        if self.useful_flops < 0:
            raise ValueError("useful_flops must be non-negative")
        if self.num_tiles < 1:
            raise ValueError("num_tiles must be >= 1")
        if self.k_steps < 1:
            raise ValueError("k_steps must be >= 1")
        if self.launches < 1:
            raise ValueError("launches must be >= 1")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class KernelTiming:
    """Timing estimate returned by :func:`simulate`."""

    kernel: str
    arch: str
    total_time_s: float
    compute_time_s: float
    memory_time_s: float
    meta_time_s: float
    overhead_s: float
    waves: int
    bound: str
    useful_flops: float
    dram_bytes: float
    compute_utilization: float

    @property
    def achieved_tflops(self) -> float:
        """Achieved useful throughput in TFLOP/s."""
        if self.total_time_s <= 0:
            return 0.0
        return self.useful_flops / self.total_time_s / 1.0e12

    @property
    def achieved_bandwidth_gbs(self) -> float:
        """Achieved DRAM bandwidth in GB/s."""
        if self.total_time_s <= 0:
            return 0.0
        return self.dram_bytes / self.total_time_s / 1.0e9

    def speedup_over(self, other: "KernelTiming") -> float:
        """Speedup of this kernel relative to ``other`` (>1 means faster)."""
        if self.total_time_s <= 0:
            return float("inf")
        return other.total_time_s / self.total_time_s


def _compute_estimate(arch: GPUArch, launch: KernelLaunch) -> ComputeEstimate:
    """Per-launch compute estimate on the requested execution unit."""
    total_fragments = launch.num_tiles * launch.k_steps
    if launch.compute_unit is ComputeUnit.TENSOR_CORE:
        return tensor_core_time(
            arch,
            launch.useful_flops,
            tile_m=launch.tile.tile_m,
            tile_n=launch.tile.tile_n,
            tile_k=launch.tile.tile_k,
            num_tiles=total_fragments,
            efficiency=launch.compute_efficiency,
        )
    if launch.compute_unit is ComputeUnit.SPARSE_TENSOR_CORE:
        return sparse_tensor_core_time(
            arch,
            launch.useful_flops,
            tile_m=launch.tile.tile_m,
            tile_n=launch.tile.tile_n,
            tile_k=launch.tile.tile_k,
            num_tiles=total_fragments,
            efficiency=launch.compute_efficiency,
        )
    return cuda_core_time(
        arch,
        launch.useful_flops,
        efficiency=launch.compute_efficiency,
    )


def simulate(arch: GPUArch, launch: KernelLaunch) -> KernelTiming:
    """Estimate the execution time of ``launch`` on ``arch``.

    The whole-kernel compute time (peak-throughput model, de-rated by grid
    under-utilisation and wave quantisation) and the whole-kernel DRAM /
    metadata traffic times feed the software-pipeline model, which decides how
    much of the memory latency hides behind compute; fixed launch overheads
    are added on top.
    """
    compute = _compute_estimate(arch, launch)

    data_bytes = launch.traffic.total_dram_bytes(arch)
    meta_bytes = launch.meta_traffic.total_dram_bytes(arch)
    total_bytes = data_bytes + meta_bytes

    memory_time = launch.traffic.memory_time(
        arch, bandwidth_efficiency=launch.bandwidth_efficiency
    )
    meta_time = launch.meta_traffic.memory_time(
        arch, bandwidth_efficiency=launch.bandwidth_efficiency
    )

    waves = wave_count(arch, launch.tile, launch.num_tiles)
    # Fraction of the chip's compute resources the grid can actually keep
    # busy: an SM's execution units are saturated once one threadblock is
    # resident (extra occupancy only hides latency), so what matters is how
    # many SMs receive work in the average wave.  Small grids (fewer tiles
    # than SMs) and ragged final waves both lower it.  The peak-throughput
    # compute estimate is stretched by the inverse of this factor.
    tiles_per_wave = launch.num_tiles / waves
    grid_utilization = min(1.0, tiles_per_wave / arch.sm_count)
    effective_compute_time = compute.time_s / grid_utilization

    spec = PipelineSpec(
        compute_time=effective_compute_time / launch.k_steps,
        load_time=memory_time / launch.k_steps,
        meta_time=meta_time / launch.k_steps,
        k_steps=launch.k_steps,
        pipeline_stages=launch.tile.pipeline_stages,
        meta_prefetch_steps=launch.meta_prefetch_steps,
    )
    pipe = pipeline_time(spec, prefetch_metadata=launch.prefetch_metadata)

    overhead = (
        arch.kernel_launch_overhead_s * launch.launches + launch.extra_overhead_s
    )
    # The pipeline prologue (filling the first buffers) is paid per resident
    # threadblock, not once per whole-kernel "step": dividing by the number of
    # concurrently resident tiles scales the whole-kernel-granularity estimate
    # back to a per-tile warm-up.
    resident = max(1, min(launch.num_tiles, concurrent_tiles(arch, launch.tile)))
    total = pipe.steady_state_time + pipe.prologue_time / resident + overhead

    return KernelTiming(
        kernel=launch.name,
        arch=arch.name,
        total_time_s=total,
        compute_time_s=effective_compute_time,
        memory_time_s=memory_time,
        meta_time_s=meta_time,
        overhead_s=overhead,
        waves=waves,
        bound=pipe.bound,
        useful_flops=launch.useful_flops,
        dram_bytes=total_bytes,
        compute_utilization=compute.utilization,
    )


# --------------------------------------------------------------------------- #
# Batched estimation engine
#
# The sweep grids of the evaluation (Figure 1/6, the headline table, the
# autotuner's candidate scoring) hammer simulate() one configuration at a
# time; LaunchBatch is the structure-of-arrays twin of KernelLaunch and
# simulate_batch() evaluates a whole batch of launches on one architecture in
# a handful of numpy broadcasts.  Every expression mirrors the scalar model
# term by term — including the order of floating-point accumulations — so a
# batch reproduces the scalar results *bit for bit* (for the realistic
# magnitudes of the grids, far below 2**53, where int->float conversions are
# exact).  The scalar simulate() stays as the oracle; the property suite
# asserts batch == scalar on random launches.
# --------------------------------------------------------------------------- #
_UNIT_CODES: dict[ComputeUnit, int] = {
    ComputeUnit.TENSOR_CORE: 0,
    ComputeUnit.CUDA_CORE: 1,
    ComputeUnit.SPARSE_TENSOR_CORE: 2,
}
_CODE_UNITS: dict[int, ComputeUnit] = {code: unit for unit, code in _UNIT_CODES.items()}


def _unit_codes(compute_unit, size: int) -> np.ndarray:
    """Coerce a ComputeUnit (or a sequence of them / of codes) to int8 codes."""
    if isinstance(compute_unit, ComputeUnit):
        return np.int8(_UNIT_CODES[compute_unit])
    if isinstance(compute_unit, (int, np.integer)):
        arr = np.int8(compute_unit)
        if int(arr) not in _CODE_UNITS:
            raise ValueError("unknown compute-unit code")
        return arr
    if isinstance(compute_unit, np.ndarray) and compute_unit.dtype == np.int8:
        arr = compute_unit
    else:
        codes = [
            _UNIT_CODES[unit] if isinstance(unit, ComputeUnit) else int(unit)
            for unit in compute_unit
        ]
        arr = np.asarray(codes, dtype=np.int8)
    if arr.ndim and arr.shape != (size,):
        raise ValueError(f"expected {size} compute units, got shape {arr.shape}")
    if not np.all(np.isin(arr, list(_CODE_UNITS))):
        raise ValueError("unknown compute-unit code")
    return arr


@dataclass
class LaunchBatch:
    """Structure-of-arrays description of many kernel launches on one arch.

    Field names mirror :class:`KernelLaunch`; every per-launch scalar becomes
    a length-``n`` array (scalars broadcast on construction).  ``tile_*``,
    ``threads``, ``pipeline_stages`` and ``accumulator_bytes`` flatten the
    per-launch :class:`~repro.gpu.tiling.TileConfig`.  ``compute_unit``
    stores one small-int code per launch (see :data:`ComputeUnit`), so one
    batch may mix tensor-core, CUDA-core and sparse-tensor-core launches.
    """

    names: list[str]
    useful_flops: np.ndarray
    traffic: TrafficBatch
    tile_m: np.ndarray
    tile_n: np.ndarray
    tile_k: np.ndarray
    num_tiles: np.ndarray
    k_steps: np.ndarray
    compute_unit: np.ndarray | ComputeUnit = ComputeUnit.TENSOR_CORE
    meta_traffic: TrafficBatch | None = None
    threads: np.ndarray | int = 128
    pipeline_stages: np.ndarray | int = 2
    accumulator_bytes: np.ndarray | int = 4
    compute_efficiency: np.ndarray | float = 0.85
    bandwidth_efficiency: np.ndarray | float = 0.85
    prefetch_metadata: np.ndarray | bool = True
    meta_prefetch_steps: np.ndarray | int = 4
    extra_overhead_s: np.ndarray | float = 0.0
    launches: np.ndarray | int = 1
    #: Skip the range validations for batches whose fields are valid by
    #: construction (the kernel grid builders validate their own inputs).
    validate: bool = True

    def __post_init__(self) -> None:
        self.useful_flops = np.asarray(self.useful_flops, dtype=np.float64)
        if self.useful_flops.ndim != 1:
            raise ValueError(
                "useful_flops must be a 1-D array with one entry per launch "
                "(it defines the batch length; the other per-launch scalars "
                "broadcast)"
            )
        size = len(self)

        # Per-launch scalars stay 0-d (numpy broadcasts them inside every
        # expression); only genuinely per-launch fields carry full arrays.
        def _ints(value) -> np.ndarray:
            return np.asarray(value, dtype=np.int64)

        def _floats(value) -> np.ndarray:
            return np.asarray(value, dtype=np.float64)

        self.names = list(self.names)
        if len(self.names) == 1 and size > 1:
            self.names = self.names * size
        self.tile_m = _ints(self.tile_m)
        self.tile_n = _ints(self.tile_n)
        self.tile_k = _ints(self.tile_k)
        self.threads = _ints(self.threads)
        self.pipeline_stages = _ints(self.pipeline_stages)
        self.accumulator_bytes = _ints(self.accumulator_bytes)
        self.num_tiles = _ints(self.num_tiles)
        self.k_steps = _ints(self.k_steps)
        self.launches = _ints(self.launches)
        self.meta_prefetch_steps = _ints(self.meta_prefetch_steps)
        self.compute_efficiency = _floats(self.compute_efficiency)
        self.bandwidth_efficiency = _floats(self.bandwidth_efficiency)
        self.extra_overhead_s = _floats(self.extra_overhead_s)
        self.prefetch_metadata = np.asarray(self.prefetch_metadata, dtype=bool)
        self.compute_unit = _unit_codes(self.compute_unit, size)
        if self.meta_traffic is None:
            self.meta_traffic = TrafficBatch(size)
        if len(self.names) != size:
            raise ValueError("one name per launch required")
        if self.traffic.size != size or self.meta_traffic.size != size:
            raise ValueError("traffic batches must match the launch count")
        if not self.validate:
            return

        # The vectorized twin of KernelLaunch.__post_init__.
        if anytrue(self.useful_flops < 0):
            raise ValueError("useful_flops must be non-negative")
        if anytrue(self.num_tiles < 1):
            raise ValueError("num_tiles must be >= 1")
        if anytrue(self.k_steps < 1):
            raise ValueError("k_steps must be >= 1")
        if anytrue(self.launches < 1):
            raise ValueError("launches must be >= 1")
        if anytrue((self.compute_efficiency <= 0.0) | (self.compute_efficiency > 1.0)):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if anytrue(
            (self.bandwidth_efficiency <= 0.0) | (self.bandwidth_efficiency > 1.0)
        ):
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if anytrue(self.tile_m <= 0) or anytrue(self.tile_n <= 0) or anytrue(self.tile_k <= 0):
            raise ValueError("tile dimensions must be positive")

    def __len__(self) -> int:
        return int(self.useful_flops.shape[0])

    @classmethod
    def concat(cls, batches: "Sequence[LaunchBatch]") -> "LaunchBatch":
        """Stack several launch batches (for one arch) end to end.

        The sweep executor builds one batch per kernel group and then
        simulates every group of a GPU in a single :func:`simulate_batch`
        call; since the model is element-wise, concatenation cannot change
        any launch's numbers.
        """
        batches = list(batches)
        if not batches:
            raise ValueError("cannot concatenate zero batches")
        if len(batches) == 1:
            return batches[0]
        sizes = [len(batch) for batch in batches]

        def _field(name: str, dtype) -> np.ndarray:
            return stack_parts(
                [getattr(batch, name) for batch in batches], sizes, dtype=dtype
            )

        return cls(
            names=[name for batch in batches for name in batch.names],
            useful_flops=_field("useful_flops", np.float64),
            traffic=TrafficBatch.concat([batch.traffic for batch in batches]),
            meta_traffic=TrafficBatch.concat(
                [batch.meta_traffic for batch in batches]
            ),
            tile_m=_field("tile_m", np.int64),
            tile_n=_field("tile_n", np.int64),
            tile_k=_field("tile_k", np.int64),
            threads=_field("threads", np.int64),
            pipeline_stages=_field("pipeline_stages", np.int64),
            accumulator_bytes=_field("accumulator_bytes", np.int64),
            num_tiles=_field("num_tiles", np.int64),
            k_steps=_field("k_steps", np.int64),
            compute_unit=_field("compute_unit", np.int8),
            compute_efficiency=_field("compute_efficiency", np.float64),
            bandwidth_efficiency=_field("bandwidth_efficiency", np.float64),
            prefetch_metadata=_field("prefetch_metadata", bool),
            meta_prefetch_steps=_field("meta_prefetch_steps", np.int64),
            extra_overhead_s=_field("extra_overhead_s", np.float64),
            launches=_field("launches", np.int64),
            validate=False,
        )

    @classmethod
    def from_launches(cls, launches: Sequence[KernelLaunch]) -> "LaunchBatch":
        """Stack scalar :class:`KernelLaunch` descriptions into one batch."""
        launches = list(launches)
        if not launches:
            raise ValueError("cannot batch zero launches")
        return cls(
            names=[launch.name for launch in launches],
            useful_flops=np.array([launch.useful_flops for launch in launches]),
            traffic=TrafficBatch.from_breakdowns([la.traffic for la in launches]),
            meta_traffic=TrafficBatch.from_breakdowns(
                [la.meta_traffic for la in launches]
            ),
            tile_m=np.array([la.tile.tile_m for la in launches]),
            tile_n=np.array([la.tile.tile_n for la in launches]),
            tile_k=np.array([la.tile.tile_k for la in launches]),
            threads=np.array([la.tile.threads for la in launches]),
            pipeline_stages=np.array([la.tile.pipeline_stages for la in launches]),
            accumulator_bytes=np.array(
                [la.tile.accumulator_bytes for la in launches]
            ),
            num_tiles=np.array([la.num_tiles for la in launches]),
            k_steps=np.array([la.k_steps for la in launches]),
            compute_unit=[la.compute_unit for la in launches],
            compute_efficiency=np.array([la.compute_efficiency for la in launches]),
            bandwidth_efficiency=np.array(
                [la.bandwidth_efficiency for la in launches]
            ),
            prefetch_metadata=np.array([la.prefetch_metadata for la in launches]),
            meta_prefetch_steps=np.array([la.meta_prefetch_steps for la in launches]),
            extra_overhead_s=np.array([la.extra_overhead_s for la in launches]),
            launches=np.array([la.launches for la in launches]),
        )


@dataclass(frozen=True)
class TimingBatch:
    """Per-launch timing estimates (the array twin of :class:`KernelTiming`)."""

    kernel: tuple[str, ...]
    arch: str
    total_time_s: np.ndarray
    compute_time_s: np.ndarray
    memory_time_s: np.ndarray
    meta_time_s: np.ndarray
    overhead_s: np.ndarray
    waves: np.ndarray
    bound: tuple[str, ...]
    useful_flops: np.ndarray
    dram_bytes: np.ndarray
    compute_utilization: np.ndarray

    def __len__(self) -> int:
        return int(self.total_time_s.shape[0])

    @property
    def achieved_tflops(self) -> np.ndarray:
        """Per-launch achieved useful throughput in TFLOP/s."""
        safe = np.where(self.total_time_s > 0, self.total_time_s, 1.0)
        return np.where(
            self.total_time_s > 0, self.useful_flops / safe / 1.0e12, 0.0
        )

    @property
    def achieved_bandwidth_gbs(self) -> np.ndarray:
        """Per-launch achieved DRAM bandwidth in GB/s."""
        safe = np.where(self.total_time_s > 0, self.total_time_s, 1.0)
        return np.where(self.total_time_s > 0, self.dram_bytes / safe / 1.0e9, 0.0)

    def timing(self, index: int) -> KernelTiming:
        """Materialise one launch's estimate as a scalar :class:`KernelTiming`."""
        return KernelTiming(
            kernel=self.kernel[index],
            arch=self.arch,
            total_time_s=float(self.total_time_s[index]),
            compute_time_s=float(self.compute_time_s[index]),
            memory_time_s=float(self.memory_time_s[index]),
            meta_time_s=float(self.meta_time_s[index]),
            overhead_s=float(self.overhead_s[index]),
            waves=int(self.waves[index]),
            bound=str(self.bound[index]),
            useful_flops=float(self.useful_flops[index]),
            dram_bytes=float(self.dram_bytes[index]),
            compute_utilization=float(self.compute_utilization[index]),
        )

    def timings(self) -> list[KernelTiming]:
        """Materialise the whole batch as scalar timings."""
        return [self.timing(i) for i in range(len(self))]


def simulate_batch(arch: GPUArch, batch: LaunchBatch) -> TimingBatch:
    """Estimate the execution time of every launch in ``batch`` on ``arch``.

    The vectorized twin of :func:`simulate`: identical model, identical
    floating-point expressions, evaluated once over arrays instead of once
    per launch.
    """
    total_fragments = batch.num_tiles * batch.k_steps
    is_cuda = batch.compute_unit == _UNIT_CODES[ComputeUnit.CUDA_CORE]
    is_sparse = batch.compute_unit == _UNIT_CODES[ComputeUnit.SPARSE_TENSOR_CORE]
    any_cuda = anytrue(is_cuda)
    all_cuda = not anytrue(batch.compute_unit != _UNIT_CODES[ComputeUnit.CUDA_CORE])
    # The tensor-core estimate doubles as the sparse-tensor-core one (halved
    # where the arch supports it), so only batches that actually mix in
    # CUDA-core launches pay for the second grid.
    if all_cuda:
        cuda = cuda_core_time_grid(
            arch, batch.useful_flops, efficiency=batch.compute_efficiency
        )
        compute_time = cuda.time_s
        compute_utilization = cuda.utilization
    else:
        tensor = tensor_core_time_grid(
            arch,
            batch.useful_flops,
            tile_m=batch.tile_m,
            tile_n=batch.tile_n,
            tile_k=batch.tile_k,
            num_tiles=total_fragments,
            efficiency=batch.compute_efficiency,
        )
        sparse_time = tensor.time_s
        if anytrue(is_sparse) and arch.supports_sparse_tensor_core:
            sparse_time = tensor.time_s / 2.0
        compute_time = np.where(is_sparse, sparse_time, tensor.time_s)
        compute_utilization = tensor.utilization
        if any_cuda:
            cuda = cuda_core_time_grid(
                arch, batch.useful_flops, efficiency=batch.compute_efficiency
            )
            compute_time = np.where(is_cuda, cuda.time_s, compute_time)
            compute_utilization = np.where(
                is_cuda, cuda.utilization, compute_utilization
            )

    data_bytes = batch.traffic.total_dram_bytes(arch)
    meta_bytes = batch.meta_traffic.total_dram_bytes(arch)
    total_bytes = data_bytes + meta_bytes

    memory_time = batch.traffic.memory_time(
        arch, bandwidth_efficiency=batch.bandwidth_efficiency, dram_bytes=data_bytes
    )
    meta_time = batch.meta_traffic.memory_time(
        arch, bandwidth_efficiency=batch.bandwidth_efficiency, dram_bytes=meta_bytes
    )

    concurrent = concurrent_tiles_grid(
        arch,
        tile_m=batch.tile_m,
        tile_n=batch.tile_n,
        tile_k=batch.tile_k,
        threads=batch.threads,
        pipeline_stages=batch.pipeline_stages,
        accumulator_bytes=batch.accumulator_bytes,
    )
    waves = wave_count_grid(batch.num_tiles, concurrent)
    tiles_per_wave = batch.num_tiles / waves
    grid_utilization = np.minimum(1.0, tiles_per_wave / arch.sm_count)
    effective_compute_time = compute_time / grid_utilization

    pipe = pipeline_time_grid(
        compute_time=effective_compute_time / batch.k_steps,
        load_time=memory_time / batch.k_steps,
        meta_time=meta_time / batch.k_steps,
        k_steps=batch.k_steps,
        pipeline_stages=batch.pipeline_stages,
        meta_prefetch_steps=batch.meta_prefetch_steps,
        prefetch_metadata=batch.prefetch_metadata,
        validate=False,
    )

    overhead = arch.kernel_launch_overhead_s * batch.launches + batch.extra_overhead_s
    resident = np.maximum(1, np.minimum(batch.num_tiles, concurrent))
    total = pipe.steady_state_time + pipe.prologue_time / resident + overhead

    # Per-launch scalars may have stayed 0-d through the expressions above;
    # materialise every output at full batch length so TimingBatch cells
    # index cleanly.
    def _full(values) -> np.ndarray:
        values = np.asarray(values)
        if values.shape == total.shape:
            return values
        return np.broadcast_to(values, total.shape)

    return TimingBatch(
        kernel=tuple(batch.names),
        arch=arch.name,
        total_time_s=total,
        compute_time_s=_full(effective_compute_time),
        memory_time_s=_full(memory_time),
        meta_time_s=_full(meta_time),
        overhead_s=_full(overhead),
        waves=_full(waves),
        bound=tuple(_full(pipe.bound).tolist()),
        useful_flops=_full(batch.useful_flops),
        dram_bytes=_full(total_bytes),
        compute_utilization=_full(compute_utilization),
    )
