"""Per-function effect extraction: which observable effects one body has.

This module is the *intraprocedural* half of the dataflow layer
(:mod:`repro.staticcheck.flow` is the interprocedural half).  One
:class:`EffectScanner` pass over a function body produces a list of
:class:`EffectSite` records — each pins one effect kind to a source
location with a human-readable detail string.  The kinds cover every
dimension a contract rule consumes:

* the four *purity* kinds SC001 scans for (wall-clock reads, unseeded
  RNG, environment reads, set-order-dependent outputs),
* filesystem writes,
* process/thread spawning,
* lock acquisition and release (resolved to project-wide lock
  identities by a caller-supplied resolver),
* potentially blocking primitives (queue ``put``/``get``, pipe
  ``send``/``recv``, ``join``, ``wait``, ``sleep``, ``result``...),
* resource releases (``close``/``terminate``/``kill``/bounded ``join``),
* reply emission (pipe/socket sends and ``wfile`` writes — the ops the
  reply-protocol rule counts).

Everything here is purely syntactic; receiver types are unknown, so the
classifiers use argument-shape heuristics (a zero-argument ``.get()`` is
a queue read, a two-argument one is a mapping lookup) documented in
``docs/staticcheck.md``.
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from dataclasses import dataclass

from .project import FunctionInfo, ModuleInfo, dotted_chain

__all__ = [
    "BLOCKING",
    "ENVIRON",
    "FS_WRITE",
    "LOCK_ACQUIRE",
    "LOCK_RELEASE",
    "PURITY_KINDS",
    "RELEASE",
    "REPLY",
    "SET_ORDER",
    "SPAWN",
    "UNSEEDED_RNG",
    "WALL_CLOCK",
    "EffectSite",
    "EffectScanner",
    "FunctionSummary",
    "blocking_detail",
    "is_bare_join",
    "is_lock_constructor",
    "receive_receiver",
    "reply_receiver",
    "resource_kind",
    "spawn_detail",
]

# ----------------------------- effect kinds ----------------------------- #
WALL_CLOCK = "wall-clock"
UNSEEDED_RNG = "unseeded-rng"
ENVIRON = "environ"
SET_ORDER = "set-order"
FS_WRITE = "fs-write"
SPAWN = "spawn"
LOCK_ACQUIRE = "lock-acquire"
LOCK_RELEASE = "lock-release"
BLOCKING = "blocking"
RELEASE = "release"
REPLY = "reply"

#: The nondeterminism kinds the SC001 purity rule reports.
PURITY_KINDS = frozenset({WALL_CLOCK, UNSEEDED_RNG, ENVIRON, SET_ORDER})

#: ``numpy.random`` attributes that are deterministic-by-construction entry
#: points (explicitly seeded generators), not legacy global-state APIs.
_SEEDED_RNG_APIS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Builtins that construct sets, and builtins that materialise an iterable
#: into an *ordered* output (the combination is the set-order hazard).
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate"})

#: Trailing components of process/thread/executor constructors.
_SPAWN_CTORS = frozenset(
    {"Process", "Thread", "Timer", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: Trailing components of lock constructors (threading/multiprocessing).
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Methods that release a resource in bounded time.
_RELEASE_METHODS = frozenset(
    {"close", "terminate", "kill", "shutdown", "release", "cancel"}
)

#: Methods that receive one message from a channel (handler-loop anchors).
_RECEIVE_METHODS = frozenset({"recv", "recv_bytes", "readline"})

#: Methods that emit one message on a channel.
_SEND_METHODS = frozenset({"send", "sendall", "send_bytes"})

#: Fully resolved call targets that mutate the filesystem.
_FS_WRITE_CALLS = frozenset(
    {
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
    }
)
_FS_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


@dataclass(frozen=True, order=True)
class EffectSite:
    """One effect occurrence at one source location."""

    kind: str
    line: int
    col: int
    #: Human-readable fragment: for purity kinds the exact SC001 message;
    #: for lock kinds the resolved lock identity; otherwise a short
    #: description of the operation.
    detail: str


@dataclass(frozen=True)
class FunctionSummary:
    """The compositional summary of one function, after fixpoint.

    ``sites``/``direct`` describe the body itself; ``effects`` and
    ``acquires`` additionally fold in every analyzed callee (transitively,
    through call-graph cycles); ``reply_counts`` is the set of possible
    reply-emission counts of one complete call, capped at 2 (= "two or
    more").
    """

    qualname: str
    sites: tuple[EffectSite, ...]
    direct: frozenset[str]
    effects: frozenset[str]
    reply_counts: frozenset[int]
    acquires: frozenset[str]


# ----------------------------- classifiers ----------------------------- #
def _receiver_chain(node: ast.Call) -> str | None:
    """Dotted chain of an attribute call's receiver (``a.b`` for ``a.b.c()``)."""
    if not isinstance(node.func, ast.Attribute):
        return None
    return dotted_chain(node.func.value)


def _last_component(chain: str) -> str:
    return chain.rsplit(".", 1)[-1]


def is_lock_constructor(module: ModuleInfo, node: ast.Call) -> bool:
    """Whether the call constructs a threading/multiprocessing lock object."""
    chain = dotted_chain(node.func)
    if chain is None:
        return False
    return _last_component(module.resolve(chain)) in _LOCK_CTORS


def spawn_detail(module: ModuleInfo, node: ast.Call) -> str | None:
    """A description when the call spawns a process, thread or executor."""
    chain = dotted_chain(node.func)
    if chain is None:
        return None
    resolved = module.resolve(chain)
    last = _last_component(resolved)
    if last in _SPAWN_CTORS:
        return f"{chain}(...)"
    if resolved.startswith("subprocess.") or resolved == "os.fork":
        return f"{resolved}(...)"
    return None


def resource_kind(module: ModuleInfo, node: ast.Call) -> str | None:
    """The resource class a call constructs, for the lifecycle rule.

    Returns ``"process"``, ``"thread"``, ``"executor"``, ``"queue"``,
    ``"pipe"``, ``"socket"`` or ``"file"`` — or ``None`` for calls that do
    not create a releasable resource.
    """
    chain = dotted_chain(node.func)
    if chain is None:
        return None
    resolved = module.resolve(chain)
    last = _last_component(resolved)
    if last in ("Process", "Timer"):
        return "process"
    if last == "Thread":
        return "thread"
    if last in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
        return "executor"
    if last in ("Queue", "SimpleQueue", "JoinableQueue"):
        return "queue"
    if last == "Pipe":
        return "pipe"
    if resolved in ("socket.socket", "socket.create_connection"):
        return "socket"
    if resolved == "open" or (isinstance(node.func, ast.Attribute) and last == "open"):
        return "file"
    return None


def is_bare_join(node: ast.Call) -> bool:
    """A ``x.join()`` with no timeout: the unbounded-shutdown hazard."""
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "join"
        and not node.args
        and not node.keywords
        and not isinstance(node.func.value, ast.Constant)
    )


def _kwarg_names(node: ast.Call) -> set[str]:
    return {kw.arg for kw in node.keywords if kw.arg is not None}


def blocking_detail(module: ModuleInfo, node: ast.Call) -> str | None:
    """A description when the call is a potentially blocking primitive.

    Receiver types are unknown, so the queue heuristics go by argument
    shape: ``.get()`` with no positional argument is a queue read (a
    mapping ``get`` needs a key), ``.put(item)`` with exactly one is a
    queue write (the repo's cache ``put(config, record)`` takes two).
    """
    chain = dotted_chain(node.func)
    resolved = module.resolve(chain) if chain is not None else None
    if resolved == "time.sleep" or resolved == "select.select":
        return f"{resolved}(...)"
    if resolved is not None and resolved.endswith("connection.wait"):
        return f"{resolved}(...)"
    if not isinstance(node.func, ast.Attribute):
        return None
    attr = node.func.attr
    receiver = _receiver_chain(node)
    shown = f"{receiver}.{attr}" if receiver is not None else attr
    if isinstance(node.func.value, ast.Constant):
        return None  # "sep".join(...) and friends
    if attr == "join":
        if not node.args and not node.keywords:
            return f"{shown}() without a timeout"
        if "timeout" in _kwarg_names(node):
            return f"{shown}(timeout=...)"
        if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
            return f"{shown}(...)"
        return None
    if attr == "get" and not node.args and _kwarg_names(node) <= {"timeout", "block"}:
        return f"{shown}() queue read"
    if attr == "put" and len(node.args) == 1 and _kwarg_names(node) <= {"timeout", "block"}:
        return f"{shown}(...) queue write"
    if attr in _RECEIVE_METHODS or attr == "accept":
        return f"{shown}()"
    if attr in _SEND_METHODS:
        return f"{shown}(...) channel write"
    if attr == "poll" and (node.args or node.keywords):
        return f"{shown}(timeout)"
    if attr in ("wait", "result"):
        return f"{shown}(...)"
    return None


def reply_receiver(node: ast.Call) -> str | None:
    """The receiver chain when the call emits one reply on a channel.

    Reply operations are pipe/socket ``send``/``sendall``/``send_bytes``
    and ``.write`` on a chain containing a ``wfile`` component (the
    ``socketserver`` stream-handler convention).
    """
    if not isinstance(node.func, ast.Attribute):
        return None
    receiver = _receiver_chain(node)
    if node.func.attr in _SEND_METHODS:
        return receiver if receiver is not None else "<channel>"
    if node.func.attr == "write" and receiver is not None:
        if "wfile" in receiver.split("."):
            return receiver
    return None


def receive_receiver(node: ast.Call) -> str | None:
    """The receiver chain when the call receives one message from a channel."""
    if not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr in _RECEIVE_METHODS and not node.args:
        return _receiver_chain(node)
    return None


def _is_set_display(module: ModuleInfo, node: ast.expr) -> bool:
    """Whether the expression is syntactically a set: a ``{...}`` display, a
    set comprehension, or a direct ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if chain is not None and module.resolve(chain) in _SET_CONSTRUCTORS:
            return True
    return False


def _open_write_mode(module: ModuleInfo, node: ast.Call) -> bool:
    """Whether the call is an ``open(...)`` with a writing mode string."""
    chain = dotted_chain(node.func)
    resolved = module.resolve(chain) if chain is not None else None
    if resolved == "open":
        mode_pos = 1
    elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
        mode_pos = 0  # Path.open(mode, ...)
    else:
        return False
    mode: ast.expr | None = None
    if len(node.args) > mode_pos:
        mode = node.args[mode_pos]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return any(flag in mode.value for flag in "wax+")


class EffectScanner(ast.NodeVisitor):
    """Collects the direct :class:`EffectSite` list of one function body.

    ``resolve_lock`` maps a dotted receiver chain (``self._condition``,
    ``_CACHE_LOCK``) to a project-wide lock identity, or ``None`` when the
    chain is not a known lock; function-local lock constructions are
    tracked by the scanner itself.
    """

    def __init__(
        self,
        info: FunctionInfo,
        resolve_lock: Callable[[str], str | None],
    ) -> None:
        self.info = info
        self.module = info.module
        self._resolve_lock = resolve_lock
        self._local_locks: dict[str, str] = {}
        self.sites: list[EffectSite] = []

    def scan(self) -> list[EffectSite]:
        """Run the pass and return the collected sites (sorted)."""
        for stmt in self.info.node.body:
            self.visit(stmt)
        return sorted(self.sites)

    def _add(self, node: ast.AST, kind: str, detail: str) -> None:
        line = getattr(node, "lineno", self.info.node.lineno)
        col = getattr(node, "col_offset", 0)
        self.sites.append(EffectSite(kind=kind, line=line, col=col, detail=detail))

    def _lock_identity(self, chain: str | None) -> str | None:
        if chain is None:
            return None
        local = self._local_locks.get(chain)
        if local is not None:
            return local
        return self._resolve_lock(chain)

    # ------------------------------ calls ------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None:
            resolved = self.module.resolve(chain)
            self._check_purity_call(node, resolved)
            if resolved in _FS_WRITE_CALLS:
                self._add(node, FS_WRITE, f"calls {resolved}")
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_WRITE_METHODS:
            self._add(node, FS_WRITE, f"calls .{node.func.attr}(...)")
        if _open_write_mode(self.module, node):
            self._add(node, FS_WRITE, "opens a file for writing")
        spawn = spawn_detail(self.module, node)
        if spawn is not None:
            self._add(node, SPAWN, f"spawns {spawn}")
        self._check_lock_call(node)
        blocking = blocking_detail(self.module, node)
        if blocking is not None:
            self._add(node, BLOCKING, blocking)
        self._check_release(node)
        reply = reply_receiver(node)
        if reply is not None:
            self._add(node, REPLY, f"reply via {reply}")
        self.generic_visit(node)

    def _check_lock_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in ("acquire", "release"):
            return
        identity = self._lock_identity(_receiver_chain(node))
        if identity is None:
            return
        kind = LOCK_ACQUIRE if node.func.attr == "acquire" else LOCK_RELEASE
        self._add(node, kind, identity)

    def _check_release(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        bounded_join = attr == "join" and bool(node.args or node.keywords)
        if attr in _RELEASE_METHODS or bounded_join:
            receiver = _receiver_chain(node) or "<expr>"
            self._add(node, RELEASE, f"{receiver}.{attr}(...)")

    def _check_purity_call(self, node: ast.Call, resolved: str) -> None:
        """The SC001 nondeterminism sources; details are the rule messages."""
        if resolved == "time" or resolved.startswith("time."):
            self._add(
                node,
                WALL_CLOCK,
                f"calls {resolved}: wall-clock reads make cell results "
                "irreproducible",
            )
        elif resolved == "random" or resolved.startswith("random."):
            self._add(
                node,
                UNSEEDED_RNG,
                f"calls {resolved}: the global random module is unseeded "
                "process state; use a seeded np.random.default_rng",
            )
        elif resolved.startswith("numpy.random."):
            api = resolved.split(".", 2)[2].partition(".")[0]
            if api not in _SEEDED_RNG_APIS:
                self._add(
                    node,
                    UNSEEDED_RNG,
                    f"calls {resolved}: legacy numpy global-state RNG; use a "
                    "seeded np.random.default_rng",
                )
        elif resolved in ("os.getenv", "os.environ.get"):
            self._add(
                node,
                ENVIRON,
                f"calls {resolved}: environment reads differ between hosts "
                "and worker processes",
            )
        if resolved in _ORDERING_CONSUMERS and node.args:
            if _is_set_display(self.module, node.args[0]):
                self._add(
                    node,
                    SET_ORDER,
                    f"{resolved}() over a set materialises salted set order "
                    "into an ordered output; wrap the set in sorted(...)",
                )

    # ------------------------ environment reads ------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = dotted_chain(node)
        if chain is not None and self.module.resolve(chain) == "os.environ":
            self._add(
                node,
                ENVIRON,
                "reads os.environ: environment state differs between hosts "
                "and worker processes",
            )
            return  # the nested Name is part of the same chain
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if self.module.resolve(node.id) == "os.environ":
                self._add(
                    node,
                    ENVIRON,
                    "reads os.environ: environment state differs between "
                    "hosts and worker processes",
                )
        self.generic_visit(node)

    # ----------------------- locks (with / local) ----------------------- #
    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call) and is_lock_constructor(
            self.module, node.value
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._local_locks[target.id] = (
                        f"{self.info.qualname}.<{target.id}>"
                    )
        self.generic_visit(node)

    def _visit_with_items(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            identity = self._lock_identity(dotted_chain(item.context_expr))
            if identity is not None:
                self._add(item.context_expr, LOCK_ACQUIRE, identity)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with_items(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with_items(node)

    # ------------------------- set iteration --------------------------- #
    def _check_iteration(self, iterable: ast.expr) -> None:
        if _is_set_display(self.module, iterable):
            self._add(
                iterable,
                SET_ORDER,
                "iterates a set into an ordered output; set order is salted "
                "per process — wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp | ast.SetComp
    ) -> None:
        for comp in node.generators:
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)
