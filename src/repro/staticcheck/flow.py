"""Shared dataflow layer: call graph, effect summaries, reply-path evaluation.

Every interprocedural rule builds on the same three artifacts, computed once
per :class:`~repro.staticcheck.project.ProjectIndex` and memoised:

* a **call graph** over every analyzed function, using one resolution
  semantics (module-level names through import tables, ``self.``/``cls.``
  methods through the ancestor walk, class constructors into
  ``__init__``/``__post_init__``, and bounded attribute-call fan-out over
  ``methods_by_name`` for receivers that cannot be typed statically);
* per-function **effect summaries** (:class:`~repro.staticcheck.effects.\
FunctionSummary`): the direct :class:`EffectSite` list from one
  :class:`~repro.staticcheck.effects.EffectScanner` pass, plus the
  transitive effect kinds and acquired-lock identities folded bottom-up
  through the call graph with worklist fixpoint iteration (the lattice is
  finite set union, so cycles converge);
* **reply counts**: for every function that can transitively emit a reply,
  the set of possible emission counts per call (capped at 2 = "two or
  more"), computed by an abstract path evaluator that tracks
  ``fall``/``break``/``continue``/``return``/``raise`` outcomes through
  ``if``/loops/``try``/``finally`` — the engine behind the SC005
  exactly-one-reply rule.

The layer is compositional in the RacerD sense: each function is summarised
once, callers consume summaries instead of re-walking callee bodies, and a
rule is an (index, summaries) -> findings function.  ``docs/staticcheck.md``
documents the semantics and how to write a new rule against this module.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple
from weakref import WeakKeyDictionary

from . import effects
from .effects import EffectScanner, EffectSite, FunctionSummary
from .project import FunctionInfo, ModuleInfo, ProjectIndex, dotted_chain

__all__ = [
    "FALL",
    "BREAK",
    "CONTINUE",
    "RETURN",
    "RAISE",
    "CallGraph",
    "FlowAnalysis",
    "LockRegistry",
    "Outcome",
    "ReplyEvaluator",
    "ReplyVal",
    "ZERO",
    "reachable",
    "resolve_call_targets",
]

#: Attribute-call fan-out: calls like ``kernel.estimate(...)`` cannot be
#: resolved to a receiver type statically, so they conservatively reach every
#: analyzed class method of that name — unless the name is so generic that it
#: is defined by more than this many classes (a dict-like ``get`` would drag
#: in the whole tree).
_FANOUT_CAP = 16


# ----------------------------- call graph ----------------------------- #
def resolve_call_targets(
    index: ProjectIndex, info: FunctionInfo, func: ast.expr
) -> list[FunctionInfo]:
    """Analyzed functions one call expression can reach (deduplicated)."""
    chain = dotted_chain(func)
    if chain is None:
        return []
    targets: list[FunctionInfo] = []
    head, _, rest = chain.partition(".")
    if head in ("self", "cls") and info.cls is not None and rest:
        method_name, _, deeper = rest.partition(".")
        target = index.resolve_method(info.cls, method_name)
        if target is not None and not deeper:
            return [target]
        # ``self.attr.method(...)``: the attribute's type is unknown, so
        # fan out over analyzed methods named like the final component.
        if deeper and isinstance(func, ast.Attribute):
            candidates = index.methods_by_name.get(func.attr, [])
            if 0 < len(candidates) <= _FANOUT_CAP:
                return list(candidates)
        return [target] if target is not None else []
    module = info.module
    resolved = module.resolve(chain)
    direct = index.functions.get(resolved)
    if direct is not None:
        return [direct]
    # A class constructor is an edge into ``__init__`` / ``__post_init__``.
    cls = index.resolve_class(module, chain)
    if cls is not None:
        for name in ("__init__", "__post_init__"):
            method = index.resolve_method(cls, name)
            if method is not None:
                targets.append(method)
        return targets
    # Unresolved attribute call: fan out over analyzed methods of that
    # name (receiver types are unknown statically).
    if isinstance(func, ast.Attribute):
        candidates = index.methods_by_name.get(func.attr, [])
        if 0 < len(candidates) <= _FANOUT_CAP:
            targets.extend(candidates)
    return targets


def _function_call_targets(
    index: ProjectIndex, info: FunctionInfo
) -> list[FunctionInfo]:
    """Every call target out of one function body, deduplicated in order."""
    seen: dict[str, FunctionInfo] = {}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            for target in resolve_call_targets(index, info, node.func):
                seen.setdefault(target.qualname, target)
    return list(seen.values())


@dataclass
class CallGraph:
    """Module-resolved call edges over every analyzed function."""

    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def callees(self, qualname: str) -> tuple[str, ...]:
        """Qualnames this function calls (empty for unknown functions)."""
        return self.edges.get(qualname, ())

    @classmethod
    def build(cls, index: ProjectIndex) -> CallGraph:
        graph = cls()
        for info in index.iter_functions():
            graph.edges[info.qualname] = tuple(
                target.qualname for target in _function_call_targets(index, info)
            )
        return graph


def reachable(
    graph: CallGraph,
    roots: Iterable[tuple[FunctionInfo, str]],
) -> dict[str, str]:
    """Qualname -> root provenance for every function reachable from roots."""
    provenance: dict[str, str] = {}
    queue: list[str] = []
    for info, origin in roots:
        if info.qualname not in provenance:
            provenance[info.qualname] = origin
            queue.append(info.qualname)
    while queue:
        qualname = queue.pop(0)
        origin = provenance[qualname]
        for callee in graph.callees(qualname):
            if callee not in provenance:
                provenance[callee] = origin
                queue.append(callee)
    return provenance


# ----------------------------- lock identity ----------------------------- #
class LockRegistry:
    """Project-wide lock identities: where every lock object is defined.

    * A module-level ``X = threading.Lock()`` has identity ``module.X``.
    * An instance attribute ``self.X = threading.Condition()`` assigned in
      any method has identity ``module.Class.X`` (the *defining* class, so
      subclasses share the parent's identity through the ancestor walk).
    * Function-local locks are tracked by the
      :class:`~repro.staticcheck.effects.EffectScanner` itself.
    """

    def __init__(self) -> None:
        self.module_locks: set[str] = set()
        #: class qualname -> attribute names holding locks.
        self.class_locks: dict[str, set[str]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> LockRegistry:
        registry = cls()
        for module in index.all_modules:
            for stmt in module.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and effects.is_lock_constructor(module, stmt.value)
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            registry.module_locks.add(f"{module.name}.{target.id}")
        for class_info in index.classes.values():
            attrs: set[str] = set()
            for method in class_info.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    if not effects.is_lock_constructor(class_info.module, node.value):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
            if attrs:
                registry.class_locks[class_info.qualname] = attrs
        return registry

    def resolve(
        self, index: ProjectIndex, info: FunctionInfo, chain: str
    ) -> str | None:
        """The lock identity a dotted chain denotes inside ``info``, if any."""
        head, _, rest = chain.partition(".")
        if head in ("self", "cls") and info.cls is not None:
            if rest and "." not in rest:
                for ancestor in index.ancestors(info.cls):
                    if rest in self.class_locks.get(ancestor.qualname, set()):
                        return f"{ancestor.qualname}.{rest}"
            return None
        resolved = info.module.resolve(chain)
        if resolved in self.module_locks:
            return resolved
        # A bare name for a lock defined in this same module resolves to
        # nothing through the import table; qualify it explicitly.
        if info.module.name:
            qualified = f"{info.module.name}.{chain}"
            if qualified in self.module_locks:
                return qualified
        return None


# --------------------------- reply evaluation --------------------------- #
FALL = "fall"
BREAK = "break"
CONTINUE = "continue"
RETURN = "return"
RAISE = "raise"


class ReplyVal(NamedTuple):
    """Replies emitted so far on one abstract path (count capped at 2)."""

    count: int
    #: Line of the first reply on the path (``None`` while count is 0).
    first: int | None
    #: Line of the reply that pushed the count to >= 2.
    second: int | None


ZERO = ReplyVal(0, None, None)


def _combine(a: ReplyVal, b: ReplyVal) -> ReplyVal:
    count = min(2, a.count + b.count)
    first = a.first if a.count > 0 else b.first
    if a.count >= 2:
        second = a.second
    elif a.count == 1 and b.count >= 1:
        second = b.first
    else:
        second = b.second
    return ReplyVal(count, first, second)


def _cross(left: set[ReplyVal], right: set[ReplyVal]) -> set[ReplyVal]:
    return {_combine(a, b) for a in left for b in right}


class Outcome(NamedTuple):
    """One way a statement block can terminate."""

    exit: str
    val: ReplyVal
    #: Line of the exiting statement (``raise``/``return``...), for anchors.
    line: int | None


#: A full-coverage exception handler drops tracked ``raise`` outcomes.
_CATCH_ALL = ("Exception", "BaseException")


class ReplyEvaluator:
    """Abstract path evaluation of reply emission over one statement block.

    ``counts_of`` supplies the fixpoint's current reply-count sets for
    analyzed callees.  With ``channel`` set (a receive-channel chain such as
    ``conn`` or ``self.rfile``), only operations on that channel count: a
    direct reply op must match the channel (``rfile`` pairs with ``wfile``)
    and a callee's counts are charged only when the call passes the channel
    along (an argument or receiver sharing the channel's head variable) —
    a helper can only answer our client if it was handed our channel.  With
    ``channel=None`` every reply op counts (summary mode).
    """

    def __init__(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        counts_of: Callable[[str], frozenset[int]],
        channel: str | None = None,
    ) -> None:
        self.index = index
        self.info = info
        self.module: ModuleInfo = info.module
        self.counts_of = counts_of
        self.channel = channel

    # -------------------------- channel matching -------------------------- #
    def _channel_heads(self) -> set[str]:
        assert self.channel is not None
        return {self.channel.partition(".")[0]}

    def _reply_matches_channel(self, receiver: str) -> bool:
        if self.channel is None:
            return True
        paired = ".".join(
            "wfile" if part == "rfile" else part for part in self.channel.split(".")
        )
        if receiver in (self.channel, paired):
            return True
        return receiver.partition(".")[0] == self.channel.partition(".")[0]

    def _call_passes_channel(self, node: ast.Call) -> bool:
        if self.channel is None:
            return True
        heads = self._channel_heads()
        exprs: list[ast.expr] = list(node.args)
        exprs.extend(kw.value for kw in node.keywords)
        if isinstance(node.func, ast.Attribute):
            exprs.append(node.func.value)
        for expr in exprs:
            chain = dotted_chain(expr)
            if chain is not None and chain.partition(".")[0] in heads:
                return True
        return False

    # ------------------------- expression values ------------------------- #
    def _call_vals(self, node: ast.Call) -> set[ReplyVal] | None:
        receiver = effects.reply_receiver(node)
        if receiver is not None:
            if self._reply_matches_channel(receiver):
                return {ReplyVal(1, node.lineno, None)}
            return None
        if not self._call_passes_channel(node):
            return None
        counts: set[int] = set()
        for target in resolve_call_targets(self.index, self.info, node.func):
            counts.update(self.counts_of(target.qualname))
        if not counts or counts == {0}:
            return None
        return {
            ReplyVal(
                count,
                node.lineno if count > 0 else None,
                node.lineno if count >= 2 else None,
            )
            for count in counts
        }

    def call_emits(self, node: ast.Call) -> bool:
        """Whether this call can emit at least one reply on our channel.

        The handler-loop detector uses it: a loop only counts as a handler
        loop when some call in its body can answer on the loop's *own*
        channel — a pool dispatch loop that receives results and resubmits
        work over other pipes is the client end, not a server.
        """
        vals = self._call_vals(node)
        return vals is not None and any(val.count > 0 for val in vals)

    def _walk_expr(self, node: ast.AST) -> Iterable[ast.Call]:
        """Calls inside one expression, not descending into lambdas."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Lambda):
                continue
            if isinstance(current, ast.Call):
                yield current
            stack.extend(ast.iter_child_nodes(current))

    def _expr_vals(self, node: ast.expr | None) -> set[ReplyVal]:
        vals = {ZERO}
        if node is None:
            return vals
        for call in self._walk_expr(node):
            contribution = self._call_vals(call)
            if contribution is not None:
                vals = _cross(vals, contribution)
        return vals

    def _stmt_expr_vals(self, stmt: ast.stmt) -> set[ReplyVal]:
        """Contributions of every expression directly under a simple stmt."""
        vals = {ZERO}
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                vals = _cross(vals, self._expr_vals(child))
        return vals

    # --------------------------- statement flow --------------------------- #
    def eval_block(
        self, stmts: list[ast.stmt], entry: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        """All outcomes of a block entered with the given path values.

        Also returns every value observable at a statement boundary inside
        the block — the ``try`` approximation uses it as the set of counts
        an exception handler may start from.
        """
        outcomes: set[Outcome] = set()
        observed: set[ReplyVal] = set(entry)
        vals = set(entry)
        for stmt in stmts:
            if not vals:
                break
            result, inner = self._eval_stmt(stmt, vals)
            observed |= inner
            vals = {o.val for o in result if o.exit == FALL}
            outcomes |= {o for o in result if o.exit != FALL}
            observed |= vals
        outcomes |= {Outcome(FALL, val, None) for val in vals}
        return outcomes, observed

    def _eval_stmt(
        self, stmt: ast.stmt, vals: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        if isinstance(stmt, ast.If):
            return self._eval_if(stmt, vals)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._eval_loop(stmt, vals)
        if isinstance(stmt, (ast.Try, ast.TryStar)):
            return self._eval_try(stmt, vals)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            item_vals = vals
            for item in stmt.items:
                item_vals = _cross(item_vals, self._expr_vals(item.context_expr))
            return self.eval_block(stmt.body, item_vals)
        if isinstance(stmt, ast.Return):
            exit_vals = _cross(vals, self._expr_vals(stmt.value))
            return {Outcome(RETURN, v, stmt.lineno) for v in exit_vals}, exit_vals
        if isinstance(stmt, ast.Raise):
            exit_vals = _cross(vals, self._stmt_expr_vals(stmt))
            return {Outcome(RAISE, v, stmt.lineno) for v in exit_vals}, exit_vals
        if isinstance(stmt, ast.Break):
            return {Outcome(BREAK, v, stmt.lineno) for v in vals}, set(vals)
        if isinstance(stmt, ast.Continue):
            return {Outcome(CONTINUE, v, stmt.lineno) for v in vals}, set(vals)
        if isinstance(stmt, ast.Match):
            return self._eval_match(stmt, vals)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return {Outcome(FALL, v, None) for v in vals}, set(vals)
        after = self._cross_observe(vals, self._stmt_expr_vals(stmt))
        return {Outcome(FALL, v, None) for v in after}, after

    @staticmethod
    def _cross_observe(vals: set[ReplyVal], more: set[ReplyVal]) -> set[ReplyVal]:
        return _cross(vals, more)

    def _eval_if(
        self, stmt: ast.If, vals: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        base = _cross(vals, self._expr_vals(stmt.test))
        body_out, body_obs = self.eval_block(stmt.body, base)
        if stmt.orelse:
            else_out, else_obs = self.eval_block(stmt.orelse, base)
        else:
            else_out = {Outcome(FALL, v, None) for v in base}
            else_obs = set(base)
        return body_out | else_out, body_obs | else_obs

    def _eval_match(
        self, stmt: ast.Match, vals: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        base = _cross(vals, self._expr_vals(stmt.subject))
        outcomes = {Outcome(FALL, v, None) for v in base}
        observed = set(base)
        for case in stmt.cases:
            case_out, case_obs = self.eval_block(case.body, base)
            outcomes |= case_out
            observed |= case_obs
        return outcomes, observed

    def _eval_loop(
        self, stmt: ast.For | ast.AsyncFor | ast.While, vals: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
        base = _cross(vals, self._expr_vals(head))
        body_out, body_obs = self.eval_block(stmt.body, {ZERO})
        per_iter = {o.val for o in body_out if o.exit in (FALL, CONTINUE)}
        totals = self._iteration_closure(per_iter)
        at_loop = _cross(base, totals)
        exit_vals = set(at_loop)
        for outcome in body_out:
            if outcome.exit == BREAK:
                exit_vals |= _cross(at_loop, {outcome.val})
        outcomes = set()
        for outcome in body_out:
            if outcome.exit in (RETURN, RAISE):
                for val in _cross(at_loop, {outcome.val}):
                    outcomes.add(Outcome(outcome.exit, val, outcome.line))
        if stmt.orelse:
            else_out, else_obs = self.eval_block(stmt.orelse, exit_vals)
            outcomes |= else_out
            observed = _cross(at_loop, body_obs) | else_obs
        else:
            outcomes |= {Outcome(FALL, v, None) for v in exit_vals}
            observed = _cross(at_loop, body_obs) | exit_vals
        return outcomes, observed

    @staticmethod
    def _iteration_closure(per_iter: set[ReplyVal]) -> set[ReplyVal]:
        """All possible accumulations over 0..n loop iterations (capped)."""
        totals = {ZERO}
        while True:
            grown = totals | {
                _combine(total, val) for total in totals for val in per_iter
            }
            if grown == totals:
                return totals
            totals = grown

    def _eval_try(
        self, stmt: ast.Try | ast.TryStar, vals: set[ReplyVal]
    ) -> tuple[set[Outcome], set[ReplyVal]]:
        body_out, body_obs = self.eval_block(stmt.body, vals)
        catch_all = False
        for handler in stmt.handlers:
            if handler.type is None:
                catch_all = True
                continue
            chain = dotted_chain(handler.type)
            if chain is not None and self.module.resolve(chain) in _CATCH_ALL:
                catch_all = True
        # Any count observable inside the body (including at an explicit
        # raise) is a count a handler may start from.
        prefix = set(body_obs) | {o.val for o in body_out if o.exit == RAISE}
        outcomes: set[Outcome] = set()
        observed = set(body_obs)
        for outcome in body_out:
            if outcome.exit == RAISE and (stmt.handlers and catch_all):
                continue  # swallowed by a catch-all handler
            if outcome.exit == FALL and stmt.orelse:
                continue  # falls into the else block instead
            outcomes.add(outcome)
        for handler in stmt.handlers:
            h_out, h_obs = self.eval_block(handler.body, prefix)
            outcomes |= h_out
            observed |= h_obs
        if stmt.orelse:
            fall_vals = {o.val for o in body_out if o.exit == FALL}
            e_out, e_obs = self.eval_block(stmt.orelse, fall_vals)
            outcomes |= e_out
            observed |= e_obs
        if stmt.finalbody:
            f_out, f_obs = self.eval_block(stmt.finalbody, {ZERO})
            final: set[Outcome] = set()
            for outcome in outcomes:
                for f_outcome in f_out:
                    val = _combine(outcome.val, f_outcome.val)
                    if f_outcome.exit == FALL:
                        final.add(Outcome(outcome.exit, val, outcome.line))
                    else:
                        final.add(Outcome(f_outcome.exit, val, f_outcome.line))
            outcomes = final
            observed |= {_combine(v, f) for v in observed for f in f_obs}
        return outcomes, observed


def _is_generator(node: ast.AST) -> bool:
    """Whether the function body yields (calls don't run generator bodies)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


# ------------------------------ the facade ------------------------------ #
@dataclass
class FlowAnalysis:
    """The computed dataflow artifacts of one project index."""

    index: ProjectIndex
    graph: CallGraph
    summaries: dict[str, FunctionSummary]
    locks: LockRegistry

    def summary(self, qualname: str) -> FunctionSummary | None:
        return self.summaries.get(qualname)

    def reply_counts(self, qualname: str) -> frozenset[int]:
        summary = self.summaries.get(qualname)
        return summary.reply_counts if summary is not None else frozenset({0})

    # ------------------------------ building ------------------------------ #
    @classmethod
    def for_index(
        cls, index: ProjectIndex, cache_dir: Path | None = None
    ) -> FlowAnalysis:
        """The (memoised) analysis of ``index``.

        The first call computes everything; rule functions hitting the memo
        afterwards share the artifacts.  With ``cache_dir`` set, finished
        summaries are persisted keyed by the content hashes of every indexed
        file, so a warm re-run over an unchanged tree skips the scanner and
        both fixpoints.
        """
        cached = _MEMO.get(index)
        if cached is not None:
            return cached
        analysis = cls._compute(index, cache_dir)
        _MEMO[index] = analysis
        return analysis

    @classmethod
    def _compute(cls, index: ProjectIndex, cache_dir: Path | None) -> FlowAnalysis:
        summary_cache = None
        if cache_dir is not None:
            from .cache import SummaryCache

            summary_cache = SummaryCache(cache_dir)
            loaded = summary_cache.load(index)
            if loaded is not None:
                summaries, edges, module_locks, class_locks = loaded
                locks = LockRegistry()
                locks.module_locks = module_locks
                locks.class_locks = class_locks
                return cls(
                    index=index,
                    graph=CallGraph(edges=edges),
                    summaries=summaries,
                    locks=locks,
                )
        graph = CallGraph.build(index)
        locks = LockRegistry.build(index)
        summaries = cls._summarise(index, graph, locks)
        if summary_cache is not None:
            summary_cache.store(
                index,
                (summaries, graph.edges, locks.module_locks, locks.class_locks),
            )
        return cls(index=index, graph=graph, summaries=summaries, locks=locks)

    @classmethod
    def _summarise(
        cls, index: ProjectIndex, graph: CallGraph, locks: LockRegistry
    ) -> dict[str, FunctionSummary]:
        sites: dict[str, list[EffectSite]] = {}
        for info in index.iter_functions():

            def resolver(chain: str, _info: FunctionInfo = info) -> str | None:
                return locks.resolve(index, _info, chain)

            sites[info.qualname] = EffectScanner(info, resolver).scan()
        direct = {
            qualname: frozenset(site.kind for site in site_list)
            for qualname, site_list in sites.items()
        }
        acquired = {
            qualname: frozenset(
                site.detail
                for site in site_list
                if site.kind == effects.LOCK_ACQUIRE
            )
            for qualname, site_list in sites.items()
        }
        transitive = cls._propagate(graph, direct)
        acquires = cls._propagate(graph, acquired)
        counts = cls._reply_fixpoint(index, graph, transitive)
        return {
            qualname: FunctionSummary(
                qualname=qualname,
                sites=tuple(sites[qualname]),
                direct=direct[qualname],
                effects=transitive[qualname],
                reply_counts=counts.get(qualname, frozenset({0})),
                acquires=acquires[qualname],
            )
            for qualname in sites
        }

    @staticmethod
    def _propagate(
        graph: CallGraph, direct: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        """Bottom-up set-union fixpoint of per-function facts over the graph."""
        merged = dict(direct)
        callers: dict[str, list[str]] = {}
        for caller, callees in graph.edges.items():
            for callee in callees:
                callers.setdefault(callee, []).append(caller)
        worklist = list(merged)
        pending = set(worklist)
        while worklist:
            qualname = worklist.pop()
            pending.discard(qualname)
            combined = merged.get(qualname, frozenset())
            for callee in graph.callees(qualname):
                combined |= merged.get(callee, frozenset())
            if combined != merged.get(qualname, frozenset()):
                merged[qualname] = combined
                for caller in callers.get(qualname, ()):
                    if caller not in pending:
                        pending.add(caller)
                        worklist.append(caller)
        return merged

    @staticmethod
    def _reply_fixpoint(
        index: ProjectIndex,
        graph: CallGraph,
        transitive: dict[str, frozenset[str]],
    ) -> dict[str, frozenset[int]]:
        """Per-call reply-count sets for every reply-relevant function."""
        relevant = [
            qualname
            for qualname, kinds in transitive.items()
            if effects.REPLY in kinds and qualname in index.functions
        ]
        counts: dict[str, frozenset[int]] = {q: frozenset({0}) for q in relevant}

        def counts_of(qualname: str) -> frozenset[int]:
            return counts.get(qualname, frozenset({0}))

        changed = True
        while changed:
            changed = False
            for qualname in relevant:
                info = index.functions[qualname]
                if _is_generator(info.node):
                    continue
                evaluator = ReplyEvaluator(index, info, counts_of, channel=None)
                outcomes, _ = evaluator.eval_block(list(info.node.body), {ZERO})
                new = frozenset(o.val.count for o in outcomes) or frozenset({0})
                if new != counts[qualname]:
                    counts[qualname] = new
                    changed = True
        return counts


_MEMO: WeakKeyDictionary[ProjectIndex, FlowAnalysis] = WeakKeyDictionary()
