"""AST project index: the shared substrate every contract rule queries.

One :class:`ProjectIndex` parses a set of Python files once and exposes the
structural views the rules need:

* modules by dotted name (derived from the ``__init__.py`` package chain, so
  ``src/repro/eval/runner.py`` indexes as ``repro.eval.runner`` regardless of
  the path the CLI was invoked with),
* top-level functions, classes and methods by qualified name,
* per-module import tables that resolve local aliases to canonical dotted
  targets (``np.random.rand`` -> ``numpy.random.rand``; ``from os import
  environ`` makes a bare ``environ`` resolve to ``os.environ``),
* class ancestry restricted to the analyzed tree (enough to walk kernel
  hierarchies and resolve inherited methods/attributes),
* per-file suppression indexes for ``# staticcheck: ignore[...]`` comments.

The index is purely syntactic — nothing is imported or executed — so the
checker can run on broken working trees and on test fixtures alike.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .suppressions import Suppressions

if TYPE_CHECKING:
    from .cache import ParseCache

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "dotted_chain",
    "module_name_for",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from its package chain.

    Walks parent directories upward while they contain an ``__init__.py``;
    the dotted name starts at the topmost package.  A free-standing file
    (no package parent) is just its stem.
    """
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.name == "__init__.py":
        # The package itself: drop the ``__init__`` stem.
        parts = parts[1:]
    return ".".join(reversed(parts))


def dotted_chain(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    module: ModuleInfo
    node: FunctionNode
    cls: ClassInfo | None = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def decorator_names(self) -> set[str]:
        """Trailing names of the decorators (``staticmethod``, ``classmethod``...)."""
        names: set[str] = set()
        for deco in self.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = dotted_chain(target)
            if chain is not None:
                names.add(chain.rsplit(".", 1)[-1])
        return names


@dataclass
class ClassInfo:
    """One class definition with its directly declared methods and bases."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base expressions resolved to dotted names where possible (module-local
    #: resolution happens lazily in :meth:`ProjectIndex.ancestors`).
    base_chains: list[str] = field(default_factory=list)

    def decorator_names(self) -> set[str]:
        names: set[str] = set()
        for deco in self.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = dotted_chain(target)
            if chain is not None:
                names.add(chain.rsplit(".", 1)[-1])
        return names

    def class_attr(self, name: str) -> ast.expr | None:
        """The value expression of a class-level ``name = ...`` assignment."""
        for stmt in self.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == name
                    and stmt.value is not None
                ):
                    return stmt.value
        return None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    display_path: str
    tree: ast.Module
    source: str
    suppressions: Suppressions
    #: Local alias -> canonical dotted target (``np`` -> ``numpy``,
    #: ``CellTask`` -> ``repro.eval.runner.CellTask``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: blake2b digest of the source bytes (the parse/summary cache key).
    content_hash: str = ""

    @property
    def package(self) -> str:
        """The package this module lives in (itself, for ``__init__`` modules)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def resolve(self, chain: str) -> str:
        """Canonicalise a dotted chain through this module's import table.

        The leading component is replaced by its import target when aliased;
        a chain naming a module-level definition resolves to its qualified
        name.  Unresolvable chains are returned unchanged (callers match on
        canonical prefixes like ``numpy.random.`` either way).
        """
        head, _, rest = chain.partition(".")
        if head in self.functions or head in self.classes:
            qual = f"{self.name}.{head}"
            return f"{qual}.{rest}" if rest else qual
        target = self.imports.get(head)
        if target is None:
            return chain
        return f"{target}.{rest}" if rest else target


class ProjectIndex:
    """Parsed view of a whole source tree, queried by the rules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: Every parsed file, in add order — ``modules`` is keyed by dotted
        #: name and free-standing files can collide on their stem (two
        #: ``conftest.py``), so reporting iterates this list instead.
        self.all_modules: list[ModuleInfo] = []
        #: Every function and method, by qualified name.
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Methods grouped by bare name (for attribute-call fan-out).
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.parse_errors: list[tuple[str, str]] = []

    # ------------------------------ loading ------------------------------ #
    @classmethod
    def from_files(
        cls, paths: Iterable[Path], cache: ParseCache | None = None
    ) -> ProjectIndex:
        index = cls()
        for path in paths:
            index.add_file(path, cache=cache)
        return index

    def add_file(self, path: Path, cache: ParseCache | None = None) -> None:
        display = str(path)
        try:
            raw = path.read_bytes()
            source = raw.decode("utf-8")
        except (OSError, ValueError) as exc:
            self.parse_errors.append((display, str(exc)))
            return
        digest = hashlib.blake2b(raw, digest_size=16).hexdigest()
        if cache is not None:
            module = cache.load(display, digest)
            if module is not None:
                self._register(module)
                return
        try:
            tree = ast.parse(source, filename=display)
        except (SyntaxError, ValueError) as exc:
            self.parse_errors.append((display, str(exc)))
            return
        module = ModuleInfo(
            name=module_name_for(path),
            path=path,
            display_path=display,
            tree=tree,
            source=source,
            suppressions=Suppressions(source),
            content_hash=digest,
        )
        self._index_imports(module)
        self._index_definitions(module)
        if cache is not None:
            cache.store(display, digest, module)
        self._register(module)

    def _register(self, module: ModuleInfo) -> None:
        """Fold one (freshly parsed or cache-loaded) module into the maps."""
        self.all_modules.append(module)
        self.modules[module.name] = module
        for info in module.functions.values():
            self.functions[info.qualname] = info
        for cls_info in module.classes.values():
            self.classes[cls_info.qualname] = cls_info
            for method in cls_info.methods.values():
                self.functions[method.qualname] = method
                self.methods_by_name.setdefault(method.name, []).append(method)

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> str | None:
        """The absolute dotted prefix of one ``from ... import`` statement."""
        if node.level == 0:
            return node.module or ""
        package_parts = module.package.split(".") if module.package else []
        drop = node.level - 1
        if drop > len(package_parts):
            return None
        base_parts = package_parts[: len(package_parts) - drop]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    @staticmethod
    def _index_definitions(module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, FunctionNode):
                info = FunctionInfo(
                    qualname=f"{module.name}.{stmt.name}",
                    name=stmt.name,
                    module=module,
                    node=stmt,
                )
                module.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{module.name}.{stmt.name}",
                    name=stmt.name,
                    module=module,
                    node=stmt,
                )
                for base in stmt.bases:
                    chain = dotted_chain(base)
                    if chain is not None:
                        cls_info.base_chains.append(chain)
                for sub in stmt.body:
                    if isinstance(sub, FunctionNode):
                        method = FunctionInfo(
                            qualname=f"{cls_info.qualname}.{sub.name}",
                            name=sub.name,
                            module=module,
                            node=sub,
                            cls=cls_info,
                        )
                        cls_info.methods[sub.name] = method
                module.classes[stmt.name] = cls_info

    # ----------------------------- resolution ----------------------------- #
    def resolve_class(self, module: ModuleInfo, chain: str) -> ClassInfo | None:
        """The analyzed class a dotted chain refers to, if any."""
        resolved = module.resolve(chain)
        found = self.classes.get(resolved)
        if found is not None:
            return found
        # ``module.Class`` chains where the trailing component is the class.
        if "." in resolved:
            prefix, _, last = resolved.rpartition(".")
            owner = self.modules.get(prefix)
            if owner is not None:
                return owner.classes.get(last)
        return None

    def ancestors(self, cls: ClassInfo) -> list[ClassInfo]:
        """MRO-ish ancestor walk restricted to analyzed classes (self first)."""
        seen: dict[str, ClassInfo] = {}
        stack = [cls]
        order: list[ClassInfo] = []
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen[current.qualname] = current
            order.append(current)
            for chain in current.base_chains:
                base = self.resolve_class(current.module, chain)
                if base is not None:
                    stack.append(base)
        return order

    def resolve_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """The definition of ``name`` found first along the ancestor walk."""
        for ancestor in self.ancestors(cls):
            method = ancestor.methods.get(name)
            if method is not None:
                return method
        return None

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """All analyzed classes transitively inheriting a class named
        ``base_name`` (the base itself excluded), in deterministic order."""
        result = [
            cls
            for cls in self.classes.values()
            if cls.name != base_name
            and any(a.name == base_name for a in self.ancestors(cls)[1:])
        ]
        return sorted(result, key=lambda c: c.qualname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
