"""repro.staticcheck — AST contract linter for the repro codebase.

The sweep cache, the bit-identity oracle nets and the batched timing engine
all rest on conventions the type system cannot see: cells must be pure,
oracles must mirror engine signatures, ``config_hash`` must cover every
result-affecting field, and kernels must keep their scalar and batched
launch paths in lock-step.  This package checks those conventions
statically — pure ``ast`` analysis, nothing imported or executed — and is
wired into CI next to the style lint.

Run it with ``python -m repro.staticcheck [paths] [--format text|json]``;
suppress a finding inline with ``# staticcheck: ignore[SC001]``.
"""

from __future__ import annotations

from .cli import main
from .findings import Finding
from .project import ProjectIndex
from .registry import Rule, UnknownRuleError, all_rules, get_rules, rule

__all__ = [
    "Finding",
    "ProjectIndex",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "get_rules",
    "main",
    "rule",
]
