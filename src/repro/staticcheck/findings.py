"""Structured findings emitted by the static contract rules.

A :class:`Finding` pins one rule violation to a ``file:line:col`` location
plus the symbol (function, class or field) it concerns.  Findings are frozen,
totally ordered (path, line, column, rule) and JSON-serialisable, so the CLI
can render them as stable text lines or as a machine-readable findings file
for the CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file (as given to the checker).
    path: str
    #: 1-indexed source line of the violation.
    line: int
    #: 0-indexed column offset (the ``ast`` convention).
    col: int
    #: Rule identifier, e.g. ``"SC001"``.
    rule: str
    #: Qualified name of the symbol the finding concerns.
    symbol: str
    #: Human-readable description of the violation.
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible form (one row of the findings file)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format_text(self) -> str:
        """The one-line text rendering: ``path:line:col: RULE symbol: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.symbol}: {self.message}"
