"""Content-addressed persistence for parsed modules and effect summaries.

Three caches back the ``--cache-dir`` CLI flag, all keyed by source content
hashes so stale entries are impossible by construction (an edited file has
a new digest and simply misses):

* :class:`ParseCache` — one pickled
  :class:`~repro.staticcheck.project.ModuleInfo` per (display path, source
  digest), skipping the parse and the import/definition indexing of
  unchanged files;
* :class:`SummaryCache` — the whole dataflow artifact set of one project
  (the :class:`~repro.staticcheck.effects.FunctionSummary` map, the call
  graph edges and the lock registry), keyed by the digest of every indexed
  file's (path, hash) pair, skipping the call-graph build, the effect
  scanner and both fixpoints on a warm full-repo run;
* :class:`FindingsCache` — the raw (pre-suppression) findings of the
  ordinary rules, keyed by the same project digest plus the executed rule
  ids.  Rules are pure functions of the index, so a warm unchanged run can
  skip them wholesale; post rules (SC008) re-run every time — they are
  cheap and depend only on cached inputs.

Every key is salted with a cache schema version and the running Python
minor version (AST shapes differ across versions), and writes go through a
unique temp file plus :func:`os.replace` — the same atomic, multi-writer
safe discipline as :mod:`repro.eval.store`.  A corrupt or unreadable entry
is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from pathlib import Path

from .effects import FunctionSummary
from .findings import Finding
from .project import ModuleInfo, ProjectIndex

__all__ = ["CACHE_VERSION", "FindingsCache", "ParseCache", "SummaryCache"]

#: Bumped whenever the pickled shapes (ModuleInfo/FunctionSummary fields,
#: scanner semantics baked into summaries) change.
CACHE_VERSION = 1


def _salt() -> bytes:
    return (
        f"staticcheck-cache-v{CACHE_VERSION}"
        f"-py{sys.version_info[0]}.{sys.version_info[1]}"
    ).encode()


def _key(*parts: str) -> str:
    digest = hashlib.blake2b(_salt(), digest_size=16)
    for part in parts:
        digest.update(b"\x00")
        digest.update(part.encode())
    return digest.hexdigest()


class _PickleStore:
    """A directory of atomically written pickle blobs keyed by digest."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.root.mkdir(parents=True, exist_ok=True)

    def load(self, key: str) -> object | None:
        try:
            return pickle.loads((self.root / f"{key}.pkl").read_bytes())
        except Exception:
            return None  # a miss, a corrupt entry, or an unreadable one

    def store(self, key: str, value: object) -> None:
        final = self.root / f"{key}.pkl"
        tmp = self.root / f".tmp-{os.getpid()}-{key}.pkl"
        try:
            tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, final)
        except OSError:
            tmp.unlink(missing_ok=True)  # caching is best-effort


class ParseCache:
    """Per-file cache of parsed+indexed :class:`ModuleInfo` records."""

    def __init__(self, cache_dir: Path) -> None:
        self._store = _PickleStore(Path(cache_dir) / "modules")

    def load(self, display_path: str, content_hash: str) -> ModuleInfo | None:
        value = self._store.load(_key(display_path, content_hash))
        return value if isinstance(value, ModuleInfo) else None

    def store(self, display_path: str, content_hash: str, module: ModuleInfo) -> None:
        self._store.store(_key(display_path, content_hash), module)


#: (summaries, call-graph edges, module-level locks, per-class lock attrs).
FlowArtifacts = tuple[
    dict[str, FunctionSummary],
    dict[str, tuple[str, ...]],
    set[str],
    dict[str, set[str]],
]


class SummaryCache:
    """Whole-project cache of the dataflow artifacts."""

    def __init__(self, cache_dir: Path) -> None:
        self._store = _PickleStore(Path(cache_dir) / "summaries")

    def load(self, index: ProjectIndex) -> FlowArtifacts | None:
        value = self._store.load(project_key(index))
        if not isinstance(value, tuple) or len(value) != 4:
            return None
        summaries, edges, module_locks, class_locks = value
        if not (
            isinstance(summaries, dict)
            and isinstance(edges, dict)
            and isinstance(module_locks, set)
            and isinstance(class_locks, dict)
        ):
            return None
        for key, summary in summaries.items():
            if not isinstance(key, str) or not isinstance(summary, FunctionSummary):
                return None
        return summaries, edges, module_locks, class_locks

    def store(self, index: ProjectIndex, artifacts: FlowArtifacts) -> None:
        self._store.store(project_key(index), artifacts)


def project_key(index: ProjectIndex) -> str:
    """Digest over every indexed file's (display path, content hash) pair."""
    items = sorted(
        (module.display_path, module.content_hash) for module in index.all_modules
    )
    return _key(*(part for item in items for part in item))


class FindingsCache:
    """Whole-project cache of the ordinary rules' raw findings."""

    def __init__(self, cache_dir: Path) -> None:
        self._store = _PickleStore(Path(cache_dir) / "findings")

    @staticmethod
    def _run_key(index: ProjectIndex, rule_ids: frozenset[str]) -> str:
        return _key(project_key(index), *sorted(rule_ids))

    def load(
        self, index: ProjectIndex, rule_ids: frozenset[str]
    ) -> list[Finding] | None:
        value = self._store.load(self._run_key(index, rule_ids))
        if not isinstance(value, list):
            return None
        for finding in value:
            if not isinstance(finding, Finding):
                return None
        return value

    def store(
        self, index: ProjectIndex, rule_ids: frozenset[str], findings: list[Finding]
    ) -> None:
        self._store.store(self._run_key(index, rule_ids), findings)
