"""Rule registry: the catalogue of contract checks the CLI can run.

Rules register themselves with the :func:`rule` decorator at import time
(importing :mod:`repro.staticcheck.rules` loads every built-in rule); the
CLI selects them by id.  A rule is a pure function from a parsed
:class:`~repro.staticcheck.project.ProjectIndex` to a list of
:class:`~repro.staticcheck.findings.Finding` records — registration carries
the id, a short name and the one-line description shown by ``--list-rules``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from .findings import Finding
from .project import ProjectIndex

__all__ = [
    "PostCheck",
    "Rule",
    "RuleCheck",
    "UnknownRuleError",
    "all_rules",
    "get_rules",
    "post_rule",
    "rule",
]

RuleCheck = Callable[[ProjectIndex], list[Finding]]
#: A post rule sees the raw (pre-suppression) findings of every ordinary
#: rule that ran, plus the set of rule ids that were executed — the shape
#: the SC008 suppression-hygiene check needs.
PostCheck = Callable[[ProjectIndex, "list[Finding]", frozenset[str]], "list[Finding]"]


class UnknownRuleError(KeyError):
    """Raised when a rule id is selected that no rule registered."""


@dataclass(frozen=True)
class Rule:
    """One registered contract check.

    Exactly one of ``check`` (an ordinary rule over the index) and
    ``post_check`` (a meta rule over the other rules' raw findings) is set.
    Post-rule findings are exempt from inline suppression — a hygiene
    violation cannot be ignored away by the mechanism it polices.
    """

    rule_id: str
    name: str
    description: str
    check: RuleCheck | None = None
    post_check: PostCheck | None = None

    @property
    def is_post(self) -> bool:
        return self.post_check is not None

    def run(self, index: ProjectIndex) -> list[Finding]:
        if self.check is None:
            return []
        return sorted(self.check(index))

    def run_post(
        self, index: ProjectIndex, findings: list[Finding], executed: frozenset[str]
    ) -> list[Finding]:
        if self.post_check is None:
            return []
        return sorted(self.post_check(index, findings, executed))


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, name: str, description: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register a check function under ``rule_id`` (decorator)."""

    def register(check: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = Rule(
            rule_id=rule_id, name=name, description=description, check=check
        )
        return check

    return register


def post_rule(
    rule_id: str, name: str, description: str
) -> Callable[[PostCheck], PostCheck]:
    """Register a post check (runs after ordinary rules, over their findings)."""

    def register(check: PostCheck) -> PostCheck:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = Rule(
            rule_id=rule_id, name=name, description=description, post_check=check
        )
        return check

    return register


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """The selected rules (all of them for ``None``), ordered by id.

    Raises :class:`UnknownRuleError` naming the first unknown id.
    """
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {r.rule_id: r for r in rules}
    for rule_id in wanted:
        if rule_id not in known:
            raise UnknownRuleError(rule_id)
    return [known[rule_id] for rule_id in sorted(set(wanted))]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry module itself stays import-cycle free
    # (rule modules import the registry to self-register).
    from . import rules  # noqa: F401
