"""Rule registry: the catalogue of contract checks the CLI can run.

Rules register themselves with the :func:`rule` decorator at import time
(importing :mod:`repro.staticcheck.rules` loads every built-in rule); the
CLI selects them by id.  A rule is a pure function from a parsed
:class:`~repro.staticcheck.project.ProjectIndex` to a list of
:class:`~repro.staticcheck.findings.Finding` records — registration carries
the id, a short name and the one-line description shown by ``--list-rules``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from .findings import Finding
from .project import ProjectIndex

__all__ = ["Rule", "UnknownRuleError", "all_rules", "get_rules", "rule"]

RuleCheck = Callable[[ProjectIndex], list[Finding]]


class UnknownRuleError(KeyError):
    """Raised when a rule id is selected that no rule registered."""


@dataclass(frozen=True)
class Rule:
    """One registered contract check."""

    rule_id: str
    name: str
    description: str
    check: RuleCheck

    def run(self, index: ProjectIndex) -> list[Finding]:
        return sorted(self.check(index))


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, name: str, description: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register a check function under ``rule_id`` (decorator)."""

    def register(check: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = Rule(
            rule_id=rule_id, name=name, description=description, check=check
        )
        return check

    return register


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """The selected rules (all of them for ``None``), ordered by id.

    Raises :class:`UnknownRuleError` naming the first unknown id.
    """
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {r.rule_id: r for r in rules}
    for rule_id in wanted:
        if rule_id not in known:
            raise UnknownRuleError(rule_id)
    return [known[rule_id] for rule_id in sorted(set(wanted))]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry module itself stays import-cycle free
    # (rule modules import the registry to self-register).
    from . import rules  # noqa: F401
