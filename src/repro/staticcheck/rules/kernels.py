"""SC004 — kernel conformance: the scalar and batched timing paths of every
kernel must be declared as one unit.

The batched estimation engine only reproduces the scalar timing model
bit-for-bit because every kernel that customises its scalar launch
construction also ships the matching vectorized builder, and because the
sweep executor's cross-GPU batch reuse trusts the ``launch_arch_agnostic``
declaration.  Three statically checkable contracts follow:

* **pair rule** — a ``SpMMKernel`` subclass that defines ``build_launch``
  (or a custom scalar ``estimate``) must define ``build_launch_batch`` in
  the same class, and vice versa.  Overriding one half leaves the other
  half inherited from a parent whose launch semantics the override just
  changed — the batched sweep then silently diverges from the scalar
  oracle.
* **arch-agnosticism** — a kernel whose effective ``launch_arch_agnostic``
  is ``True`` must not consult the ``arch`` parameter inside
  ``build_launch`` / ``build_launch_batch`` (forwarding it to
  ``super().build_launch*`` is fine).  A violation means the executor
  reuses one GPU's launch batch for a different GPU.
* **registry completeness** — every kernel named in the registry's
  ``_FACTORIES`` table must resolve, via its analyzed ancestry, to concrete
  ``prepare`` / ``run`` / ``build_launch`` implementations below the
  abstract base.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..project import ClassInfo, ModuleInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_kernel_conformance"]

RULE_ID = "SC004"

_BASE_CLASS = "SpMMKernel"
_SCALAR_METHODS = ("build_launch", "estimate")
_BATCH_METHOD = "build_launch_batch"
_REQUIRED_CONCRETE = ("prepare", "run", "build_launch")
_AGNOSTIC_ATTR = "launch_arch_agnostic"


def _finding(cls: ClassInfo, node: ast.AST, symbol: str, message: str) -> Finding:
    return Finding(
        path=cls.module.display_path,
        line=getattr(node, "lineno", cls.node.lineno),
        col=getattr(node, "col_offset", cls.node.col_offset),
        rule=RULE_ID,
        symbol=symbol,
        message=message,
    )


def _effective_arch_agnostic(index: ProjectIndex, cls: ClassInfo) -> bool:
    """The most-derived ``launch_arch_agnostic`` literal along the ancestry."""
    for ancestor in index.ancestors(cls):
        value = ancestor.class_attr(_AGNOSTIC_ATTR)
        if isinstance(value, ast.Constant) and isinstance(value.value, bool):
            return value.value
    return False


class _ArchUseScanner(ast.NodeVisitor):
    """Finds reads of the ``arch`` parameter outside super() forwarding."""

    def __init__(self) -> None:
        self.offending: list[ast.Name] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr.startswith("build_launch")
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            # ``super().build_launch*(arch, ...)``: forwarding is sanctioned —
            # skip the argument expressions, but still scan nested calls that
            # are not plain names.
            for arg in node.args:
                if not isinstance(arg, ast.Name):
                    self.visit(arg)
            for keyword in node.keywords:
                if not isinstance(keyword.value, ast.Name):
                    self.visit(keyword.value)
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "arch" and isinstance(node.ctx, ast.Load):
            self.offending.append(node)


def _check_arch_agnosticism(
    index: ProjectIndex, cls: ClassInfo, findings: list[Finding]
) -> None:
    if not _effective_arch_agnostic(index, cls):
        return
    for method_name in ("build_launch", _BATCH_METHOD):
        method = cls.methods.get(method_name)
        if method is None:
            continue
        scanner = _ArchUseScanner()
        for stmt in method.node.body:
            scanner.visit(stmt)
        for name in scanner.offending:
            findings.append(
                _finding(
                    cls,
                    name,
                    method.qualname,
                    f"declares {_AGNOSTIC_ATTR}=True but {method_name} reads "
                    "the arch parameter; cross-GPU batch reuse would apply "
                    "one GPU's launch description to another",
                )
            )


def _check_pairing(cls: ClassInfo, findings: list[Finding]) -> None:
    scalar = [name for name in _SCALAR_METHODS if name in cls.methods]
    has_batch = _BATCH_METHOD in cls.methods
    if scalar and not has_batch:
        findings.append(
            _finding(
                cls,
                cls.methods[scalar[0]].node,
                cls.qualname,
                f"overrides {'/'.join(scalar)} without {_BATCH_METHOD}: the "
                "inherited batched builder no longer matches the scalar "
                "timing path",
            )
        )
    elif has_batch and not scalar:
        findings.append(
            _finding(
                cls,
                cls.methods[_BATCH_METHOD].node,
                cls.qualname,
                f"overrides {_BATCH_METHOD} without build_launch: the batched "
                "builder has no scalar twin to stay bit-identical with",
            )
        )


def _registered_classes(
    index: ProjectIndex,
) -> list[tuple[str, ClassInfo | None, ModuleInfo, ast.AST]]:
    """``(name, class-or-None, registry-module, node)`` per registration.

    One entry per value of a module-level ``_FACTORIES`` dict literal (the
    kernel registry's factory table).
    """
    entries: list[tuple[str, ClassInfo | None, ModuleInfo, ast.AST]] = []
    for module in index.modules.values():
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            named_factories = any(
                isinstance(t, ast.Name) and t.id == "_FACTORIES" for t in targets
            )
            if not named_factories or not isinstance(value, ast.Dict):
                continue
            for key, factory in zip(value.keys, value.values, strict=True):
                label = (
                    str(key.value)
                    if isinstance(key, ast.Constant)
                    else ast.unparse(key)
                    if key is not None
                    else "**"
                )
                chain = dotted_chain(factory)
                resolved = (
                    index.resolve_class(module, chain) if chain is not None else None
                )
                entries.append((label, resolved, module, factory))
    return entries


def _is_kernel_class(index: ProjectIndex, cls: ClassInfo) -> bool:
    return any(a.name == _BASE_CLASS for a in index.ancestors(cls)[1:])


@rule(
    RULE_ID,
    "kernel-conformance",
    "SpMMKernel subclasses must override build_launch/build_launch_batch as "
    "a pair, honour launch_arch_agnostic, and registered kernels must be "
    "concrete",
)
def check_kernel_conformance(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for cls in index.subclasses_of(_BASE_CLASS):
        _check_pairing(cls, findings)
        _check_arch_agnosticism(index, cls, findings)

    for label, resolved, context, node in _registered_classes(index):
        if resolved is None:
            # Factories that are not plain class names (lambdas, partials)
            # cannot be checked statically; only flag resolvable ones.
            continue
        if not _is_kernel_class(index, resolved):
            findings.append(
                Finding(
                    path=context.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    rule=RULE_ID,
                    symbol=resolved.qualname,
                    message=(
                        f"registered under {label!r} but does not inherit "
                        f"from {_BASE_CLASS}"
                    ),
                )
            )
            continue
        missing = [
            name
            for name in _REQUIRED_CONCRETE
            if (
                (found := index.resolve_method(resolved, name)) is None
                or (found.cls is not None and found.cls.name == _BASE_CLASS)
            )
        ]
        if missing:
            findings.append(
                Finding(
                    path=context.display_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    rule=RULE_ID,
                    symbol=resolved.qualname,
                    message=(
                        f"registered under {label!r} without concrete "
                        f"{'/'.join(missing)} implementation(s) below the "
                        "abstract base"
                    ),
                )
            )
    return findings
