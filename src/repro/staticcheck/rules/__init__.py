"""Built-in contract rules.

Importing this package registers every rule with the registry; the modules
self-register via the :func:`repro.staticcheck.registry.rule` (or
:func:`~repro.staticcheck.registry.post_rule`) decorator.
"""

from __future__ import annotations

from . import (
    cachekey,
    hygiene,
    kernels,
    lifecycle,
    locks,
    parity,
    purity,
    replies,
)

__all__ = [
    "cachekey",
    "hygiene",
    "kernels",
    "lifecycle",
    "locks",
    "parity",
    "purity",
    "replies",
]
