"""Built-in contract rules.

Importing this package registers every rule with the registry; the modules
self-register via the :func:`repro.staticcheck.registry.rule` decorator.
"""

from __future__ import annotations

from . import cachekey, kernels, parity, purity

__all__ = ["cachekey", "kernels", "parity", "purity"]
