"""SC007 — lock discipline: bounded critical sections, one global lock order.

Two families of deadlock the serving stack must stay free of:

* **blocking under a lock** — a critical section that performs a blocking
  queue/pipe operation, joins a process, sleeps, or calls a helper whose
  effect summary says it (transitively) blocks or spawns.  A worker stall
  then wedges every thread contending for that lock; the repo's own
  discipline (see ``repro.serve.service``) is to drain queues and join
  workers strictly *outside* ``with self._condition:`` blocks.
  ``Condition.wait`` on the *held* lock is exempt — waiting releases it.

* **lock-order inversion** — two locks acquired in opposite orders on two
  code paths.  The rule collects every nested acquisition (``with a:`` then
  ``with b:``, direct ``.acquire()`` calls, and lock sets acquired
  transitively by callees, via the summaries' ``acquires``) into one
  project-global order graph over resolved lock identities and flags every
  strongly connected component of two or more locks.

Lock identities come from :class:`repro.staticcheck.flow.LockRegistry`
(module-level locks, ``self.attr`` locks resolved to their defining class)
plus function-local constructions tracked here; re-acquiring the lock
already held is *not* recorded as an order edge (``RLock`` re-entry is
legitimate).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .. import effects
from ..findings import Finding
from ..flow import FlowAnalysis, resolve_call_targets
from ..project import FunctionInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_lock_discipline"]

RULE_ID = "SC007"

#: Effect kinds a callee summary may not contain when called under a lock.
_HAZARD_KINDS = (effects.BLOCKING, effects.SPAWN)


@dataclass(frozen=True)
class _EdgeSite:
    """First witness of one ``outer -> inner`` acquisition order."""

    path: str
    line: int
    col: int
    symbol: str


class _HeldScan:
    """One function pass: blocking-under-lock findings plus order edges."""

    def __init__(
        self, index: ProjectIndex, flow: FlowAnalysis, info: FunctionInfo
    ) -> None:
        self.index = index
        self.flow = flow
        self.info = info
        self.module = info.module
        self._local_locks: dict[str, str] = {}
        self.held: list[str] = []
        self.findings: list[Finding] = []
        #: (outer, inner) -> witness, first one wins.
        self.edges: dict[tuple[str, str], _EdgeSite] = {}

    # ------------------------------ identity ------------------------------ #
    def _lock_identity(self, chain: str | None) -> str | None:
        if chain is None:
            return None
        local = self._local_locks.get(chain)
        if local is not None:
            return local
        return self.flow.locks.resolve(self.index, self.info, chain)

    def _site(self, node: ast.AST) -> _EdgeSite:
        return _EdgeSite(
            path=self.module.display_path,
            line=getattr(node, "lineno", self.info.node.lineno),
            col=getattr(node, "col_offset", 0),
            symbol=self.info.qualname,
        )

    def _record_acquire(self, identity: str, node: ast.AST) -> None:
        for outer in self.held:
            if outer == identity:
                continue  # RLock re-entry, not an ordering fact
            self.edges.setdefault((outer, identity), self._site(node))

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.display_path,
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0),
                rule=RULE_ID,
                symbol=self.info.qualname,
                message=message,
            )
        )

    # ------------------------------ walking ------------------------------ #
    def run(self) -> None:
        self._walk_block(self.info.node.body)

    def _walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run in their own dynamic context
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            if effects.is_lock_constructor(self.module, stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._local_locks[target.id] = (
                            f"{self.info.qualname}.<{target.id}>"
                        )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._walk_expr(child)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._walk_expr(sub)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in stmt.items:
            self._walk_expr(item.context_expr)
            identity = self._lock_identity(dotted_chain(item.context_expr))
            if identity is not None:
                self._record_acquire(identity, item.context_expr)
                self.held.append(identity)
                pushed += 1
        self._walk_block(stmt.body)
        for _ in range(pushed):
            self.held.pop()

    def _walk_expr(self, node: ast.expr) -> None:
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Lambda):
                continue
            if isinstance(current, ast.Call):
                self._check_call(current)
            stack.extend(ast.iter_child_nodes(current))

    # ------------------------------- calls ------------------------------- #
    def _check_call(self, node: ast.Call) -> None:
        receiver = (
            dotted_chain(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else None
        )
        receiver_lock = self._lock_identity(receiver)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
            if receiver_lock is not None:
                self._record_acquire(receiver_lock, node)
                return
        if receiver_lock is not None and receiver_lock in self.held:
            # Operations on the held lock itself: ``cond.wait()`` releases
            # it while waiting, ``notify``/``release`` are non-blocking.
            return
        if not self.held:
            return
        held = self.held[-1]
        blocking = effects.blocking_detail(self.module, node)
        if blocking is not None:
            self._flag(
                node,
                f"blocking operation {blocking} while holding {held}; a "
                "stalled peer wedges every thread contending for the lock — "
                "move the blocking call outside the critical section",
            )
            return
        spawn = effects.spawn_detail(self.module, node)
        if spawn is not None:
            self._flag(
                node,
                f"spawns {spawn} while holding {held}; process/thread "
                "startup is unbounded work inside a critical section",
            )
            return
        for target in resolve_call_targets(self.index, self.info, node.func):
            summary = self.flow.summary(target.qualname)
            if summary is None:
                continue
            for identity in sorted(summary.acquires):
                if identity != held:
                    self.edges.setdefault(
                        (held, identity), self._site(node)
                    )
            hazards = [k for k in _HAZARD_KINDS if k in summary.effects]
            if hazards:
                self._flag(
                    node,
                    f"calls {target.qualname} (transitively "
                    f"{' and '.join(sorted(hazards))}) while holding {held}; "
                    "move the call outside the critical section or split "
                    "the helper",
                )
                return


def _strongly_connected(nodes: set[str], succ: dict[str, set[str]]) -> list[list[str]]:
    """SCCs of two or more locks, each sorted, in deterministic order."""
    reach: dict[str, set[str]] = {}
    for start in nodes:
        seen: set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in succ.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        reach[start] = seen
    groups: dict[frozenset[str], None] = {}
    for a in nodes:
        component = frozenset(
            {a} | {b for b in reach[a] if a in reach.get(b, set())} & reach[a]
        )
        if len(component) >= 2:
            groups.setdefault(component)
    return sorted(sorted(group) for group in groups)


@rule(
    RULE_ID,
    "lock-discipline",
    "critical sections must stay bounded — no blocking queue/pipe ops, "
    "process joins, spawns, or calls to transitively blocking helpers while "
    "holding a lock — and all nested acquisitions must follow one global "
    "lock order (the acquisition graph must be acyclic)",
)
def check_lock_discipline(index: ProjectIndex) -> list[Finding]:
    flow = FlowAnalysis.for_index(index)
    findings: list[Finding] = []
    edges: dict[tuple[str, str], _EdgeSite] = {}
    for info in sorted(index.iter_functions(), key=lambda f: f.qualname):
        summary = flow.summary(info.qualname)
        if summary is not None and effects.LOCK_ACQUIRE not in summary.direct:
            # Nothing is ever held here (``with lock:`` and ``.acquire()``
            # both leave a direct site), so neither finding kind can fire.
            continue
        scan = _HeldScan(index, flow, info)
        scan.run()
        findings.extend(scan.findings)
        for edge, site in scan.edges.items():
            edges.setdefault(edge, site)
    succ: dict[str, set[str]] = {}
    nodes: set[str] = set()
    for outer, inner in edges:
        succ.setdefault(outer, set()).add(inner)
        nodes.update((outer, inner))
    for component in _strongly_connected(nodes, succ):
        members = set(component)
        witnesses = sorted(
            (edge, site)
            for edge, site in edges.items()
            if edge[0] in members and edge[1] in members
        )
        anchor = witnesses[0][1]
        detail = "; ".join(
            f"{outer} -> {inner} at {site.path}:{site.line}"
            for (outer, inner), site in witnesses
        )
        findings.append(
            Finding(
                path=anchor.path,
                line=anchor.line,
                col=anchor.col,
                rule=RULE_ID,
                symbol=anchor.symbol,
                message=(
                    "lock-order cycle among {"
                    + ", ".join(component)
                    + "}: these locks are acquired in conflicting orders "
                    "(" + detail + "); pick one global order"
                ),
            )
        )
    return findings
