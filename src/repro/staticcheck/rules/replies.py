"""SC005 — reply protocol: handler loops answer every request exactly once.

PR 9's serving stack guarantees *exactly one response per accepted
request* dynamically (chaos-tested under worker kills, hangs and pipe
corruption); this rule mirrors the guarantee statically over every
**handler loop** in the tree — a ``for``/``while`` loop that both receives
messages from a channel (``.recv()``/``.recv_bytes()``/``.readline()``
calls, or iterating an ``rfile``) and emits replies on it (``.send*``
calls, ``wfile`` writes, or helper calls that were handed the channel).

Each loop iteration handles one received request, so the abstract path
evaluator (:class:`repro.staticcheck.flow.ReplyEvaluator`) checks every
normal, exception and ``finally`` path through one iteration:

* a path that **falls through** to the next iteration without emitting a
  reply silently drops a request — intentional no-reply paths (a shutdown
  sentinel, an empty line) must exit via explicit ``continue``, ``break``
  or ``return`` so the decision is visible;
* a path that emits **two or more** replies for one request corrupts the
  stream framing;
* a path that **raises** out of the loop (uncaught by a catch-all handler)
  before replying tears down the transport with the request unanswered.

Reply counting is channel-aware and interprocedural: a helper's summary
reply counts are charged only when the loop passes its channel to the
helper, so serving work (``service.predict(...)``) submitted over *other*
pipes never miscounts as a client reply.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .. import effects
from ..findings import Finding
from ..flow import FALL, RAISE, ZERO, FlowAnalysis, ReplyEvaluator
from ..project import FunctionInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_reply_protocol"]

RULE_ID = "SC005"

_LOOP = (ast.For, ast.AsyncFor, ast.While)


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk without descending into nested loops or function definitions.

    A receive op inside a nested loop anchors *that* loop, not this one.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, _LOOP + (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _deep_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk the whole loop body, skipping only nested function definitions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _loop_channel(loop: ast.For | ast.AsyncFor | ast.While) -> str | None:
    """The receive channel of a handler loop, or None for ordinary loops."""
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        chain = dotted_chain(loop.iter)
        if chain is not None and chain.split(".")[-1] == "rfile":
            return chain
    for node in _shallow_walk(loop):
        if isinstance(node, ast.Call):
            receiver = effects.receive_receiver(node)
            if receiver is not None:
                return receiver
    return None


def _loop_replies(
    evaluator: ReplyEvaluator, loop: ast.For | ast.AsyncFor | ast.While
) -> bool:
    """Whether the loop body can reply *on its own channel*.

    Channel-aware on purpose: a loop that receives on one pipe and sends
    on others (the pool's ``collect`` dispatching work to workers) is the
    client end of those pipes, not a request handler.
    """
    for node in _deep_walk(loop):
        if isinstance(node, ast.Call) and evaluator.call_emits(node):
            return True
    return False


def _handler_loops(
    index: ProjectIndex, info: FunctionInfo, flow: FlowAnalysis
) -> Iterator[tuple[ast.For | ast.AsyncFor | ast.While, str, ReplyEvaluator]]:
    for node in _deep_walk(info.node):
        if isinstance(node, _LOOP):
            channel = _loop_channel(node)
            if channel is None:
                continue
            evaluator = ReplyEvaluator(
                index, info, flow.reply_counts, channel=channel
            )
            if _loop_replies(evaluator, node):
                yield node, channel, evaluator


@rule(
    RULE_ID,
    "reply-protocol",
    "every path through a serve handler loop (normal, exception, finally) "
    "must emit exactly one reply per received request — no silent drops, "
    "no double replies, no raising out before answering",
)
def check_reply_protocol(index: ProjectIndex) -> list[Finding]:
    flow = FlowAnalysis.for_index(index)
    findings: list[Finding] = []
    for info in sorted(index.iter_functions(), key=lambda f: f.qualname):
        summary = flow.summary(info.qualname)
        if summary is not None and (
            effects.BLOCKING not in summary.direct
            and effects.REPLY not in summary.effects
        ):
            # A handler loop needs a receive op here (a direct blocking
            # site) or a reachable reply op; neither exists, so skip the
            # body walk entirely.
            continue
        for loop, channel, evaluator in _handler_loops(index, info, flow):
            outcomes, _ = evaluator.eval_block(list(loop.body), {ZERO})
            seen: set[tuple[int, str]] = set()

            def flag(line: int, message: str) -> None:
                if (line, message) in seen:
                    return
                seen.add((line, message))
                findings.append(
                    Finding(
                        path=info.module.display_path,
                        line=line,
                        col=loop.col_offset,
                        rule=RULE_ID,
                        symbol=info.qualname,
                        message=message,
                    )
                )

            ordered = sorted(
                outcomes,
                key=lambda o: (
                    o.exit,
                    o.val.count,
                    o.val.first or 0,
                    o.val.second or 0,
                    o.line or 0,
                ),
            )
            for outcome in ordered:
                if outcome.val.count >= 2:
                    flag(
                        outcome.val.second or loop.lineno,
                        "a path through this handler loop emits two or more "
                        f"replies on {channel} for one received request; "
                        "exactly one reply per request",
                    )
                elif outcome.exit == FALL and outcome.val.count == 0:
                    flag(
                        loop.lineno,
                        "a path through this handler loop falls through "
                        "without emitting a reply, silently dropping the "
                        "received request; reply on every path (or make an "
                        "intentional skip explicit with continue)",
                    )
                elif outcome.exit == RAISE and outcome.val.count == 0:
                    flag(
                        outcome.line or loop.lineno,
                        "a path through this handler loop raises before any "
                        "reply is emitted, tearing down the transport with "
                        "the request unanswered; answer with a structured "
                        "error reply instead",
                    )
    return findings
