"""SC003 — cache-key coverage: hashable cells must hash every field that
affects their result.

Every sweep-cell family keys its persistent cache with
``canonical_config_hash(self.to_dict(), salt=...)``.  The cache can only be
trusted if ``to_dict()`` routes *every* result-affecting field into the
digest: a field that changes the computation without changing the hash makes
the cache serve stale cells — the exact failure mode the Table 1 / Figure 6
reproductions cannot detect after the fact.

For every dataclass that exposes a ``config_hash`` method the rule checks:

* every declared field flows through ``to_dict()`` (a ``self.<field>``
  reference inside the method body), **except** fields declared with
  ``field(..., compare=False)`` — the repo's documented convention for
  cosmetic display-only fields (labels), which are excluded from equality
  and must stay excluded from the hash;
* conversely, a ``compare=False`` field that *is* referenced in
  ``to_dict()`` is flagged — a cosmetic field flowing into the digest forks
  the cache on display strings;
* ``config_hash`` itself routes through ``to_dict`` (hand-rolled payload
  dicts bypass the coverage the first check just established).
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..project import ClassInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_cache_key_coverage"]

RULE_ID = "SC003"


def _is_dataclass(cls: ClassInfo) -> bool:
    return "dataclass" in cls.decorator_names()


def _is_classvar(annotation: ast.expr) -> bool:
    rendered = ast.unparse(annotation)
    return "ClassVar" in rendered


def _field_compare_flag(value: ast.expr | None) -> bool:
    """The effective ``compare=`` flag of a field declaration (default True)."""
    if not isinstance(value, ast.Call):
        return True
    chain = dotted_chain(value.func)
    if chain is None or chain.rsplit(".", 1)[-1] != "field":
        return True
    for keyword in value.keywords:
        if keyword.arg == "compare" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return True


def _declared_fields(cls: ClassInfo) -> list[tuple[str, int, bool]]:
    """``(name, lineno, compare)`` for every dataclass field declaration."""
    fields: list[tuple[str, int, bool]] = []
    for stmt in cls.node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        if _is_classvar(stmt.annotation):
            continue
        fields.append((target.id, stmt.lineno, _field_compare_flag(stmt.value)))
    return fields


def _self_attributes(node: ast.AST) -> set[str]:
    """Every ``self.<attr>`` read inside a method body."""
    attrs: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            attrs.add(sub.attr)
    return attrs


@rule(
    RULE_ID,
    "cache-key-coverage",
    "dataclasses exposing config_hash() must route every non-cosmetic field "
    "through to_dict(), and cosmetic (compare=False) fields must stay out",
)
def check_cache_key_coverage(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for cls in sorted(index.classes.values(), key=lambda c: c.qualname):
        if "config_hash" not in cls.methods or not _is_dataclass(cls):
            continue
        config_hash = cls.methods["config_hash"]
        to_dict = cls.methods.get("to_dict")
        if to_dict is None:
            findings.append(
                Finding(
                    path=cls.module.display_path,
                    line=cls.node.lineno,
                    col=cls.node.col_offset,
                    rule=RULE_ID,
                    symbol=cls.qualname,
                    message=(
                        "exposes config_hash() without a to_dict() canonical "
                        "form; the cache key has no auditable field coverage"
                    ),
                )
            )
            continue
        if "to_dict" not in _self_attributes(config_hash.node):
            findings.append(
                Finding(
                    path=cls.module.display_path,
                    line=config_hash.node.lineno,
                    col=config_hash.node.col_offset,
                    rule=RULE_ID,
                    symbol=config_hash.qualname,
                    message=(
                        "config_hash() does not route through self.to_dict(); "
                        "hand-rolled payloads bypass the canonical field "
                        "coverage"
                    ),
                )
            )
        hashed = _self_attributes(to_dict.node)
        for name, lineno, compare in _declared_fields(cls):
            if compare and name not in hashed:
                findings.append(
                    Finding(
                        path=cls.module.display_path,
                        line=lineno,
                        col=cls.node.col_offset,
                        rule=RULE_ID,
                        symbol=f"{cls.qualname}.{name}",
                        message=(
                            f"field {name!r} does not flow through to_dict(): "
                            "it can change results without changing the cache "
                            "key (mark it field(compare=False) if it is "
                            "purely cosmetic)"
                        ),
                    )
                )
            elif not compare and name in hashed:
                findings.append(
                    Finding(
                        path=cls.module.display_path,
                        line=lineno,
                        col=cls.node.col_offset,
                        rule=RULE_ID,
                        symbol=f"{cls.qualname}.{name}",
                        message=(
                            f"cosmetic field {name!r} (compare=False) flows "
                            "through to_dict(): display strings fork the "
                            "cache key"
                        ),
                    )
                )
    return findings
