"""SC001 — cell purity: sweep-cell code must be deterministic.

The repo's central cache contract is that every sweep cell is a *pure*
function of its hashable config: serial and parallel runs must produce
byte-identical records, and a cached record must stay valid forever (until
the ``MODEL_VERSION`` salt is bumped).  Any nondeterminism inside a cell
executor silently breaks both.

The rule roots a reachability walk over the shared
:mod:`repro.staticcheck.flow` call graph at the cell-execution entry
points:

* every function passed as the ``execute=`` argument of a ``CellTask(...)``
  construction, and
* every module-level function whose name ends in ``_executor`` defined in a
  module that also defines the ``SweepRunner`` class (the runner's injectable
  executor surface).

Every reachable function's effect summary is then filtered for the
nondeterminism kinds that would break the serial == parallel byte-identity
contract — wall-clock reads, legacy global-state RNG, environment reads,
and set-order-dependent outputs (see
:data:`repro.staticcheck.effects.PURITY_KINDS`); the sanctioned fixes are
seeded ``np.random.default_rng`` generators and ``sorted(...)`` around set
iteration.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..effects import PURITY_KINDS
from ..findings import Finding
from ..flow import FlowAnalysis, reachable
from ..project import FunctionInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_cell_purity"]

RULE_ID = "SC001"


def _celltask_execute_roots(index: ProjectIndex) -> Iterator[tuple[FunctionInfo, str]]:
    """Functions passed as ``execute=`` to ``CellTask(...)`` constructions."""
    for module in index.all_modules:
        if "CellTask" not in module.source:
            continue  # cheap prefilter before the full tree walk
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None or module.resolve(chain).rsplit(".", 1)[-1] != "CellTask":
                continue
            for keyword in node.keywords:
                if keyword.arg != "execute":
                    continue
                target = dotted_chain(keyword.value)
                if target is None:
                    continue
                resolved = module.resolve(target)
                info = index.functions.get(resolved)
                if info is not None:
                    yield info, f"CellTask execute ({module.name})"


def _executor_roots(index: ProjectIndex) -> Iterator[tuple[FunctionInfo, str]]:
    """Module-level ``*_executor`` functions next to the ``SweepRunner``."""
    for module in index.all_modules:
        if "SweepRunner" not in module.classes:
            continue
        for name, info in module.functions.items():
            if name.endswith("_executor"):
                yield info, f"SweepRunner executor ({module.name})"


@rule(
    RULE_ID,
    "cell-purity",
    "functions reachable from CellTask bodies and SweepRunner executors must "
    "be deterministic (no wall clock, unseeded RNG, environment reads, or "
    "set-order-dependent outputs)",
)
def check_cell_purity(index: ProjectIndex) -> list[Finding]:
    flow = FlowAnalysis.for_index(index)
    roots = list(_celltask_execute_roots(index)) + list(_executor_roots(index))
    findings: list[Finding] = []
    for qualname, origin in sorted(reachable(flow.graph, roots).items()):
        summary = flow.summary(qualname)
        if summary is None:
            continue
        info = index.functions[qualname]
        for site in summary.sites:
            if site.kind not in PURITY_KINDS:
                continue
            findings.append(
                Finding(
                    path=info.module.display_path,
                    line=site.line,
                    col=site.col,
                    rule=RULE_ID,
                    symbol=qualname,
                    message=f"{site.detail} (reachable from {origin})",
                )
            )
    return findings
