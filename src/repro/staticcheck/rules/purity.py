"""SC001 — cell purity: sweep-cell code must be deterministic.

The repo's central cache contract is that every sweep cell is a *pure*
function of its hashable config: serial and parallel runs must produce
byte-identical records, and a cached record must stay valid forever (until
the ``MODEL_VERSION`` salt is bumped).  Any nondeterminism inside a cell
executor silently breaks both.

The rule roots a call-graph walk at the cell-execution entry points:

* every function passed as the ``execute=`` argument of a ``CellTask(...)``
  construction, and
* every module-level function whose name ends in ``_executor`` defined in a
  module that also defines the ``SweepRunner`` class (the runner's injectable
  executor surface).

Every project function reachable from those roots (through module-level
calls, imported names, ``self.``/``cls.`` methods, and attribute-call
fan-out over method names defined by analyzed classes) is then scanned for
the nondeterminism sources that would break the serial == parallel
byte-identity contract:

* wall-clock reads (any call into the ``time`` module),
* legacy global-state RNG APIs (``random.*`` and ``numpy.random.*`` other
  than the explicitly seeded generator constructors),
* environment reads (``os.environ`` / ``os.getenv``), whose values differ
  between hosts and worker processes,
* iterating ``set``/``frozenset`` displays or constructor calls into ordered
  outputs (``for`` targets, comprehensions and ``list``/``tuple``/
  ``enumerate`` conversions) — set order is salted per process, so any
  ordered output derived from it is nondeterministic.  Wrapping the set in
  ``sorted(...)`` is the sanctioned fix.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding
from ..project import FunctionInfo, ModuleInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_cell_purity"]

RULE_ID = "SC001"

#: ``numpy.random`` attributes that are deterministic-by-construction entry
#: points (explicitly seeded generators), not legacy global-state APIs.
_SEEDED_RNG_APIS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Attribute-call fan-out: calls like ``kernel.estimate(...)`` cannot be
#: resolved to a receiver type statically, so they conservatively reach every
#: analyzed class method of that name — unless the name is so generic that it
#: is defined by more than this many classes (a dict-like ``get`` would drag
#: in the whole tree).
_FANOUT_CAP = 16

#: Builtins that construct sets, and builtins that materialise an iterable
#: into an *ordered* output (the combination is the set-order hazard).
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


def _celltask_execute_roots(index: ProjectIndex) -> Iterator[tuple[FunctionInfo, str]]:
    """Functions passed as ``execute=`` to ``CellTask(...)`` constructions."""
    for module in index.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None or module.resolve(chain).rsplit(".", 1)[-1] != "CellTask":
                continue
            for keyword in node.keywords:
                if keyword.arg != "execute":
                    continue
                target = dotted_chain(keyword.value)
                if target is None:
                    continue
                resolved = module.resolve(target)
                info = index.functions.get(resolved)
                if info is not None:
                    yield info, f"CellTask execute ({module.name})"


def _executor_roots(index: ProjectIndex) -> Iterator[tuple[FunctionInfo, str]]:
    """Module-level ``*_executor`` functions next to the ``SweepRunner``."""
    for module in index.modules.values():
        if "SweepRunner" not in module.classes:
            continue
        for name, info in module.functions.items():
            if name.endswith("_executor"):
                yield info, f"SweepRunner executor ({module.name})"


class _CallCollector(ast.NodeVisitor):
    """Collects resolvable call edges out of one function body."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.module: ModuleInfo = info.module
        self.targets: list[FunctionInfo] = []

    def visit_Call(self, node: ast.Call) -> None:
        self._collect(node.func)
        self.generic_visit(node)

    def _collect(self, func: ast.expr) -> None:
        chain = dotted_chain(func)
        if chain is None:
            return
        head, _, rest = chain.partition(".")
        if head in ("self", "cls") and self.info.cls is not None and rest:
            method_name = rest.partition(".")[0]
            target = self.index.resolve_method(self.info.cls, method_name)
            if target is not None:
                self.targets.append(target)
            return
        resolved = self.module.resolve(chain)
        direct = self.index.functions.get(resolved)
        if direct is not None:
            self.targets.append(direct)
            return
        # A class constructor is an edge into ``__init__`` / ``__post_init__``.
        cls = self.index.resolve_class(self.module, chain)
        if cls is not None:
            for name in ("__init__", "__post_init__"):
                method = self.index.resolve_method(cls, name)
                if method is not None:
                    self.targets.append(method)
            return
        # Unresolved attribute call: fan out over analyzed methods of that
        # name (receiver types are unknown statically).
        if isinstance(func, ast.Attribute):
            candidates = self.index.methods_by_name.get(func.attr, [])
            if 0 < len(candidates) <= _FANOUT_CAP:
                self.targets.extend(candidates)


def _reachable(index: ProjectIndex) -> dict[str, str]:
    """Qualname -> root provenance for every function reachable from the
    cell-execution roots."""
    provenance: dict[str, str] = {}
    queue: list[FunctionInfo] = []
    for info, origin in list(_celltask_execute_roots(index)) + list(
        _executor_roots(index)
    ):
        if info.qualname not in provenance:
            provenance[info.qualname] = origin
            queue.append(info)
    while queue:
        info = queue.pop(0)
        collector = _CallCollector(index, info)
        collector.visit(info.node)
        origin = provenance[info.qualname]
        for target in collector.targets:
            if target.qualname not in provenance:
                provenance[target.qualname] = origin
                queue.append(target)
    return provenance


def _is_set_display(module: ModuleInfo, node: ast.expr) -> bool:
    """Whether the expression is syntactically a set: a ``{...}`` display, a
    set comprehension, or a direct ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if chain is not None and module.resolve(chain) in _SET_CONSTRUCTORS:
            return True
    return False


class _PurityScanner(ast.NodeVisitor):
    """Flags nondeterminism sources inside one reachable function."""

    def __init__(self, info: FunctionInfo, origin: str) -> None:
        self.info = info
        self.module = info.module
        self.origin = origin
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.info.node.lineno)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                path=self.module.display_path,
                line=line,
                col=col,
                rule=RULE_ID,
                symbol=self.info.qualname,
                message=f"{message} (reachable from {self.origin})",
            )
        )

    # ------------------------- forbidden calls ------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None:
            resolved = self.module.resolve(chain)
            self._check_call_target(node, resolved)
            if resolved in _ORDERING_CONSUMERS and node.args:
                if _is_set_display(self.module, node.args[0]):
                    self._flag(
                        node,
                        f"{resolved}() over a set materialises salted set order "
                        "into an ordered output; wrap the set in sorted(...)",
                    )
        self.generic_visit(node)

    def _check_call_target(self, node: ast.Call, resolved: str) -> None:
        if resolved == "time" or resolved.startswith("time."):
            self._flag(
                node,
                f"calls {resolved}: wall-clock reads make cell results "
                "irreproducible",
            )
        elif resolved == "random" or resolved.startswith("random."):
            self._flag(
                node,
                f"calls {resolved}: the global random module is unseeded "
                "process state; use a seeded np.random.default_rng",
            )
        elif resolved.startswith("numpy.random."):
            api = resolved.split(".", 2)[2].partition(".")[0]
            if api not in _SEEDED_RNG_APIS:
                self._flag(
                    node,
                    f"calls {resolved}: legacy numpy global-state RNG; use a "
                    "seeded np.random.default_rng",
                )
        elif resolved in ("os.getenv", "os.environ.get"):
            self._flag(
                node,
                f"calls {resolved}: environment reads differ between hosts "
                "and worker processes",
            )

    # ------------------------ environment reads ------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = dotted_chain(node)
        if chain is not None and self.module.resolve(chain) == "os.environ":
            self._flag(
                node,
                "reads os.environ: environment state differs between hosts "
                "and worker processes",
            )
            return  # the nested Name is part of the same chain
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if self.module.resolve(node.id) == "os.environ":
                self._flag(
                    node,
                    "reads os.environ: environment state differs between "
                    "hosts and worker processes",
                )
        self.generic_visit(node)

    # ------------------------- set iteration --------------------------- #
    def _check_iteration(self, iterable: ast.expr) -> None:
        if _is_set_display(self.module, iterable):
            self._flag(
                iterable,
                "iterates a set into an ordered output; set order is salted "
                "per process — wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp | ast.SetComp
    ) -> None:
        for comp in node.generators:
            self._check_iteration(comp.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)


@rule(
    RULE_ID,
    "cell-purity",
    "functions reachable from CellTask bodies and SweepRunner executors must "
    "be deterministic (no wall clock, unseeded RNG, environment reads, or "
    "set-order-dependent outputs)",
)
def check_cell_purity(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for qualname, origin in sorted(_reachable(index).items()):
        info = index.functions[qualname]
        scanner = _PurityScanner(info, origin)
        scanner.visit(info.node)
        findings.extend(scanner.findings)
    return findings
