"""SC002 — oracle parity: seed oracles and vectorized engines must agree on
their call surface.

Every vectorized subsystem in this repo keeps its original scalar loops
alive as *oracles* (``repro.core.reference``, ``repro.sparse.spmm_reference``)
and property-tests the fast path bit-for-bit against them.  That net only
means something while the two sides expose the same surface: if a parameter
is added to the engine but not the oracle (or a default drifts), the
hypothesis nets keep passing while silently testing a stale contract.

The rule pairs functions by the repo's naming convention — a public
``<name>_loop`` function in a module named ``reference`` / ``*_reference``
pairs with ``<name>`` (or ``_<name>``) in a sibling module of the same
package, or with a ``<prefix>_<method>`` -> ``Class.<method>`` counterpart
for format conversions (``csr_from_dense_loop`` -> ``CSRMatrix.from_dense``)
— and then compares the two AST signatures: parameter names, order and
kinds, default values, annotations, and ``*args`` / ``**kwargs`` presence.
A missing counterpart is itself a finding (an oracle testing nothing).
"""

from __future__ import annotations

import ast
import itertools

from ..findings import Finding
from ..project import FunctionInfo, ModuleInfo, ProjectIndex
from ..registry import rule

__all__ = ["check_oracle_parity"]

RULE_ID = "SC002"

_ORACLE_SUFFIX = "_loop"


def _is_reference_module(module: ModuleInfo) -> bool:
    last = module.name.rsplit(".", 1)[-1]
    return last == "reference" or last.endswith("_reference")


def _sibling_modules(index: ProjectIndex, oracle: ModuleInfo) -> list[ModuleInfo]:
    """Same-package modules the counterpart may live in (references excluded)."""
    return [
        module
        for module in index.modules.values()
        if module.package == oracle.package
        and module.name != oracle.name
        and not _is_reference_module(module)
    ]


def _find_counterpart(
    index: ProjectIndex, oracle: ModuleInfo, base: str
) -> FunctionInfo | None:
    siblings = _sibling_modules(index, oracle)
    for module in siblings:
        for name in (base, f"_{base}"):
            info = module.functions.get(name)
            if info is not None:
                return info
    # ``<prefix>_<method>`` -> method ``<method>`` on a class whose name
    # starts with ``<prefix>`` (e.g. ``csr_from_dense`` -> CSRMatrix.from_dense).
    for module in siblings:
        for cls in module.classes.values():
            for method_name, method in cls.methods.items():
                if not base.endswith(f"_{method_name}"):
                    continue
                prefix = base[: -(len(method_name) + 1)].replace("_", "")
                if prefix and cls.name.lower().startswith(prefix):
                    return method
    return None


def _receiver_free_params(info: FunctionInfo, *, drop_first: bool) -> ast.arguments:
    """The signature with the receiver parameter stripped.

    For methods the implicit ``self``/``cls`` is dropped (not for
    staticmethods); for oracle functions pairing with *instance* methods the
    explicit receiver argument (the matrix being converted) is dropped when
    ``drop_first`` is set.
    """
    args = info.node.args
    posonly = list(args.posonlyargs)
    normal = list(args.args)
    if drop_first:
        if posonly:
            posonly = posonly[1:]
        elif normal:
            normal = normal[1:]
    return ast.arguments(
        posonlyargs=posonly,
        args=normal,
        vararg=args.vararg,
        kwonlyargs=list(args.kwonlyargs),
        kw_defaults=list(args.kw_defaults),
        kwarg=args.kwarg,
        defaults=list(args.defaults),
    )


def _annotation_repr(node: ast.expr | None) -> str | None:
    return None if node is None else ast.unparse(node)


def _default_repr(node: ast.expr | None) -> str | None:
    return None if node is None else ast.unparse(node)


def _signature_summary(args: ast.arguments) -> list[tuple[str, ...]]:
    """Flat, comparable rendering of one signature."""
    summary: list[tuple[str, ...]] = []
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, defaults, strict=True):
        summary.append(
            (
                "positional",
                arg.arg,
                str(_annotation_repr(arg.annotation)),
                str(_default_repr(default)),
            )
        )
    if args.vararg is not None:
        summary.append(("vararg", args.vararg.arg, "", ""))
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults, strict=True):
        summary.append(
            (
                "keyword",
                arg.arg,
                str(_annotation_repr(arg.annotation)),
                str(_default_repr(kw_default)),
            )
        )
    if args.kwarg is not None:
        summary.append(("kwarg", args.kwarg.arg, "", ""))
    return summary


def _describe(summary: list[tuple[str, ...]]) -> str:
    parts: list[str] = []
    for kind, name, _, default in summary:
        rendered = name
        if kind == "vararg":
            rendered = f"*{name}"
        elif kind == "kwarg":
            rendered = f"**{name}"
        elif default != "None" and default != "":
            rendered = f"{name}={default}"
        parts.append(rendered)
    return f"({', '.join(parts)})"


def _compare_pair(
    oracle: FunctionInfo, counterpart: FunctionInfo
) -> list[str]:
    """Human-readable mismatch descriptions between the two signatures."""
    is_instance_method = (
        counterpart.is_method
        and "staticmethod" not in counterpart.decorator_names()
        and "classmethod" not in counterpart.decorator_names()
    )
    is_classmethod = (
        counterpart.is_method and "classmethod" in counterpart.decorator_names()
    )
    oracle_args = _receiver_free_params(oracle, drop_first=is_instance_method)
    counter_args = _receiver_free_params(
        counterpart, drop_first=is_instance_method or is_classmethod
    )
    left = _signature_summary(oracle_args)
    right = _signature_summary(counter_args)
    if left == right:
        return []
    mismatches: list[str] = []
    for ours, theirs in itertools.zip_longest(left, right):
        if ours == theirs:
            continue
        if ours is None:
            mismatches.append(f"counterpart adds {theirs[0]} parameter {theirs[1]!r}")
        elif theirs is None:
            mismatches.append(f"counterpart drops {ours[0]} parameter {ours[1]!r}")
        else:
            mismatches.append(
                f"parameter {ours[1]!r} differs "
                f"(oracle {ours[0]} ann={ours[2]} default={ours[3]}; "
                f"counterpart {theirs[1]!r} {theirs[0]} ann={theirs[2]} "
                f"default={theirs[3]})"
            )
    summary = (
        f"signature drift vs {counterpart.qualname}: oracle {_describe(left)} != "
        f"counterpart {_describe(right)}"
    )
    return [summary + " — " + "; ".join(mismatches)]


@rule(
    RULE_ID,
    "oracle-parity",
    "every public *_loop oracle in a reference module must have a "
    "signature-compatible counterpart in its sibling engine modules",
)
def check_oracle_parity(index: ProjectIndex) -> list[Finding]:
    findings: list[Finding] = []
    for module in index.modules.values():
        if not _is_reference_module(module):
            continue
        for name, info in module.functions.items():
            if name.startswith("_") or not name.endswith(_ORACLE_SUFFIX):
                continue
            base = name[: -len(_ORACLE_SUFFIX)]
            counterpart = _find_counterpart(index, module, base)
            if counterpart is None:
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=info.node.lineno,
                        col=info.node.col_offset,
                        rule=RULE_ID,
                        symbol=info.qualname,
                        message=(
                            f"oracle has no engine counterpart named {base!r} "
                            f"(or _{base} / a matching class method) in package "
                            f"{module.package!r}; the bit-identity net is "
                            "testing nothing"
                        ),
                    )
                )
                continue
            for mismatch in _compare_pair(info, counterpart):
                findings.append(
                    Finding(
                        path=module.display_path,
                        line=info.node.lineno,
                        col=info.node.col_offset,
                        rule=RULE_ID,
                        symbol=info.qualname,
                        message=mismatch,
                    )
                )
    return findings
