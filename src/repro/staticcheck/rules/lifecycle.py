"""SC006 — resource lifecycle: spawned/opened resources reach a bounded end.

Serving survives worker faults only because every resource the stack
creates — worker processes, duplex pipes, queues, sockets, opened files,
executors — is *owned* by something that releases it in bounded time
(``close``/``terminate``/``kill``/``shutdown`` or ``join`` **with a
timeout**).  This rule makes that ownership structural:

* a resource constructed in a function must be (a) managed by a ``with``
  statement, (b) released in the same function, (c) handed off — returned,
  yielded, passed to a call, or stored into a container/attribute (the new
  owner is then checked at its own scope), or (d) bound to ``self.attr``,
  in which case *some* method of the class must release that attribute;
* both ends of a ``Pipe()`` pair are tracked separately;
* a constructed resource discarded as a bare expression statement can never
  be released and is always flagged;
* every **bare ``join()``** (no timeout) anywhere in the tree is an
  unbounded-shutdown hazard: a wedged worker blocks it forever.  The
  serving contract is ``join(timeout=...)`` with terminate/kill
  escalation, as :meth:`repro.serve.pool.WorkerPool.close` does.

The analysis is presence-based per scope (release *somewhere* in the
owning function/class counts); ``with`` and ``finally`` remain the only
forms the rule can prove correct on every path, and the docs recommend
them.  Each function is scanned in one pass into a :class:`_Facts` record;
per-class release sets are shared across that class's methods.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .. import effects
from ..findings import Finding
from ..project import ClassInfo, FunctionInfo, ProjectIndex, dotted_chain
from ..registry import rule

__all__ = ["check_resource_lifecycle"]

RULE_ID = "SC006"

_RELEASE_ATTRS = frozenset(
    {"close", "terminate", "kill", "shutdown", "release", "cancel", "unlink"}
)


def _walk_no_nested_defs(node: ast.AST) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


@dataclass
class _Facts:
    """Everything one pass over a function body collects for this rule."""

    #: Resource ctor discarded as a bare expression statement: unfixable.
    drops: list[tuple[ast.Call, str]] = field(default_factory=list)
    #: Resource ctor bound by a plain assignment: (call, kind, names, attrs).
    binds: list[tuple[ast.Call, str, list[str], list[str]]] = field(
        default_factory=list
    )
    #: Receiver chains of close/terminate/.../join(timeout) calls.
    release_chains: list[str] = field(default_factory=list)
    #: Full dotted chains handed to other calls as arguments.
    arg_chains: set[str] = field(default_factory=set)
    #: Head variables that escape (returned, yielded, stored, with-managed).
    escape_heads: set[str] = field(default_factory=set)
    bare_joins: list[ast.Call] = field(default_factory=list)


def _is_release_attr_call(node: ast.Call) -> str | None:
    """Receiver chain when the call is a bounded release, else ``None``."""
    if not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in _RELEASE_ATTRS and not (
        node.func.attr == "join" and (node.args or node.keywords)
    ):
        return None
    return dotted_chain(node.func.value)


def _assigned_names(assign: ast.Assign) -> tuple[list[str], list[str]]:
    """Local names and ``self.<attr>`` attrs bound by one assignment."""
    names: list[str] = []
    attrs: list[str] = []
    for target in assign.targets:
        elements = (
            list(target.elts) if isinstance(target, (ast.Tuple, ast.List)) else [target]
        )
        for element in elements:
            if isinstance(element, ast.Name):
                names.append(element.id)
            elif (
                isinstance(element, ast.Attribute)
                and isinstance(element.value, ast.Name)
                and element.value.id == "self"
            ):
                attrs.append(element.attr)
    return names, attrs


def _add_head(chains: set[str], node: ast.expr) -> None:
    chain = dotted_chain(node)
    if chain is not None:
        chains.add(chain.partition(".")[0])


def _scan(info: FunctionInfo) -> _Facts:
    facts = _Facts()
    module = info.module
    for node in _walk_no_nested_defs(info.node):
        if isinstance(node, ast.Call):
            if effects.is_bare_join(node):
                facts.bare_joins.append(node)
            receiver = _is_release_attr_call(node)
            if receiver is not None:
                facts.release_chains.append(receiver)
            for arg in node.args:
                chain = dotted_chain(arg)
                if chain is not None:
                    facts.arg_chains.add(chain)
            for kw in node.keywords:
                chain = dotted_chain(kw.value)
                if chain is not None:
                    facts.arg_chains.add(chain)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is None:
                continue
            elements = (
                list(value.elts)
                if isinstance(value, (ast.Tuple, ast.List))
                else [value]
            )
            for element in elements:
                _add_head(facts.escape_heads, element)
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call):
                kind = effects.resource_kind(module, node.value)
                if kind is not None:
                    names, attrs = _assigned_names(node)
                    facts.binds.append((node.value, kind, names, attrs))
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    _add_head(facts.escape_heads, node.value)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            kind = effects.resource_kind(module, node.value)
            if kind is not None:
                facts.drops.append((node.value, kind))
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                _add_head(facts.escape_heads, element)
        elif isinstance(node, ast.Dict):
            for element in node.values:
                _add_head(facts.escape_heads, element)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                _add_head(facts.escape_heads, item.context_expr)
    return facts


def _name_handled(facts: _Facts, name: str) -> bool:
    if name in facts.escape_heads:
        return True
    prefix = name + "."
    for chain in facts.arg_chains:
        if chain.partition(".")[0] == name:
            return True
    return any(
        chain == name or chain.startswith(prefix) for chain in facts.release_chains
    )


class _Checker:
    """Runs the rule over the index, sharing per-function/per-class facts."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._facts: dict[str, _Facts] = {}
        self._class_released: dict[str, set[str]] = {}
        self.findings: list[Finding] = []

    def facts(self, info: FunctionInfo) -> _Facts:
        cached = self._facts.get(info.qualname)
        if cached is None:
            cached = _scan(info)
            self._facts[info.qualname] = cached
        return cached

    def _released_attrs(self, cls: ClassInfo) -> set[str]:
        """``self.<attr>`` names some method releases or hands off."""
        cached = self._class_released.get(cls.qualname)
        if cached is not None:
            return cached
        released: set[str] = set()
        for method in cls.methods.values():
            facts = self.facts(method)
            for chain in list(facts.release_chains) + sorted(facts.arg_chains):
                parts = chain.split(".")
                if parts[0] == "self" and len(parts) >= 2:
                    released.add(parts[1])
        self._class_released[cls.qualname] = released
        return released

    def _flag(self, info: FunctionInfo, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=info.module.display_path,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", 0),
                rule=RULE_ID,
                symbol=info.qualname,
                message=message,
            )
        )

    def check(self, info: FunctionInfo) -> None:
        facts = self.facts(info)
        for call, kind in facts.drops:
            self._flag(
                info,
                call,
                f"{kind} constructed and discarded: the result is never "
                "released; bind it and close/terminate it, or manage it "
                "with a with statement",
            )
        for call, kind, names, attrs in facts.binds:
            for name in names:
                if _name_handled(facts, name):
                    continue
                self._flag(
                    info,
                    call,
                    f"{kind} bound to {name!r} is never released in this "
                    "function and never handed off; close/terminate/"
                    "join(timeout=...) it on every path (a with statement "
                    "or finally block is the provable form)",
                )
            for attr in attrs:
                cls = info.cls
                if cls is None or attr in self._released_attrs(cls):
                    continue
                self._flag(
                    info,
                    call,
                    f"{kind} stored on self.{attr} but no method of "
                    f"{cls.name} releases it; add a close()/stop() path "
                    "with a bounded join",
                )
        for join in facts.bare_joins:
            receiver = (
                dotted_chain(join.func.value)
                if isinstance(join.func, ast.Attribute)
                else None
            )
            shown = receiver or "<expr>"
            self._flag(
                info,
                join,
                f"bare {shown}.join() waits forever on a wedged "
                "process/thread; pass a timeout and escalate to "
                "terminate()/kill() like WorkerPool.close does",
            )


@rule(
    RULE_ID,
    "resource-lifecycle",
    "every spawned process/thread, queue/pipe/socket and opened file must "
    "reach a bounded release (with-managed, closed/terminated locally, or "
    "owned by a class that releases it); bare join() without a timeout is "
    "an unbounded-shutdown hazard",
)
def check_resource_lifecycle(index: ProjectIndex) -> list[Finding]:
    checker = _Checker(index)
    for info in sorted(index.iter_functions(), key=lambda f: f.qualname):
        checker.check(info)
    return checker.findings
