"""SC008 — suppression hygiene: every ignore earns its keep.

An inline ``# staticcheck: ignore[...]`` comment is a debt marker: it
silences a real rule at a real line for a stated reason.  This meta rule
(a *post* rule — it runs after the ordinary rules, over their raw,
pre-suppression findings) keeps that debt honest:

* a suppression **without a ``-- reason`` trailer** is flagged — the next
  reader must not have to re-derive why the violation is acceptable;
* a suppression that **matches no finding** is flagged (the RUF100 idea):
  either the code was fixed and the comment is stale, or the rule list is
  wrong and the comment never protected anything — including the malformed
  empty list ``ignore[]``, which suppresses nothing by definition.

Unused-ness is only decided for rule ids that actually executed in this
run (a ``--rules SC001`` invocation cannot prove an ``ignore[SC006]``
stale), and blanket ignores are only checked when every ordinary rule ran.
SC008 findings are themselves exempt from suppression — the hygiene rule
cannot be ignored away by the mechanism it polices.
"""

from __future__ import annotations

from ..findings import Finding
from ..project import ProjectIndex
from ..registry import post_rule

__all__ = ["check_suppression_hygiene"]

RULE_ID = "SC008"


def _format_rules(rules: frozenset[str]) -> str:
    return ", ".join(sorted(rules))


@post_rule(
    RULE_ID,
    "suppression-hygiene",
    "every inline suppression must carry a '-- reason' trailer and must "
    "still match a real finding; stale and reason-less ignores are flagged "
    "(and SC008 itself cannot be suppressed)",
)
def check_suppression_hygiene(
    index: ProjectIndex, findings: list[Finding], executed: frozenset[str]
) -> list[Finding]:
    out: list[Finding] = []
    by_path_line: dict[tuple[str, int], set[str]] = {}
    for finding in findings:
        by_path_line.setdefault((finding.path, finding.line), set()).add(finding.rule)
    for module in index.all_modules:
        for entry in module.suppressions.entries():
            if entry.reason is None:
                out.append(
                    Finding(
                        path=module.display_path,
                        line=entry.line,
                        col=entry.col,
                        rule=RULE_ID,
                        symbol="<suppression>",
                        message=(
                            "suppression without a reason; append "
                            "'-- <why this violation is acceptable>'"
                        ),
                    )
                )
            hit_rules = by_path_line.get((module.display_path, entry.line), set())
            if entry.rules is None:
                # Blanket ignore: only a full-rule run can prove it unused.
                if executed >= _ordinary_rule_ids() and not hit_rules:
                    out.append(
                        Finding(
                            path=module.display_path,
                            line=entry.line,
                            col=entry.col,
                            rule=RULE_ID,
                            symbol="<suppression>",
                            message=(
                                "blanket suppression matches no finding; "
                                "remove it (and prefer naming the rule: "
                                "ignore[SCnnn] -- reason)"
                            ),
                        )
                    )
                continue
            if not entry.rules:
                out.append(
                    Finding(
                        path=module.display_path,
                        line=entry.line,
                        col=entry.col,
                        rule=RULE_ID,
                        symbol="<suppression>",
                        message=(
                            "malformed suppression 'ignore[]' suppresses "
                            "nothing; name the rule ids"
                        ),
                    )
                )
                continue
            unused = (entry.rules & executed) - hit_rules
            if unused:
                out.append(
                    Finding(
                        path=module.display_path,
                        line=entry.line,
                        col=entry.col,
                        rule=RULE_ID,
                        symbol="<suppression>",
                        message=(
                            f"unused suppression of {_format_rules(unused)}: "
                            "no matching finding on this line; remove the "
                            "stale ignore"
                        ),
                    )
                )
    return out


def _ordinary_rule_ids() -> frozenset[str]:
    from ..registry import all_rules

    return frozenset(r.rule_id for r in all_rules() if not r.is_post)
