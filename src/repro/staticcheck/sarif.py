"""SARIF 2.1.0 rendering of a staticcheck report.

``--format sarif`` converts the native JSON report (see
:func:`repro.staticcheck.cli._report`) into a minimal, schema-valid SARIF
log: one run, one driver carrying the executed rule metadata, one result
per active finding and one per parse error.  Columns are converted from the
``ast`` 0-indexed convention to SARIF's 1-indexed one.  GitHub code
scanning and most SARIF viewers ingest this shape directly; the CI lint job
uploads it as an artifact next to the JSON report.
"""

from __future__ import annotations

from typing import Any

__all__ = ["to_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(report: dict[str, Any]) -> dict[str, Any]:
    """The SARIF 2.1.0 log equivalent to one native JSON report."""
    driver_rules = [
        {
            "id": entry["id"],
            "name": entry["name"],
            "shortDescription": {"text": entry["description"]},
            "defaultConfiguration": {"level": "error"},
        }
        for entry in report["rules"]
    ]
    rule_index = {entry["id"]: pos for pos, entry in enumerate(driver_rules)}
    results: list[dict[str, Any]] = []
    for finding in report["findings"]:
        result: dict[str, Any] = {
            "ruleId": finding["rule"],
            "level": "error",
            "message": {"text": f"{finding['symbol']}: {finding['message']}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding["path"]},
                        "region": {
                            "startLine": finding["line"],
                            "startColumn": finding["col"] + 1,
                        },
                    }
                }
            ],
        }
        if finding["rule"] in rule_index:
            result["ruleIndex"] = rule_index[finding["rule"]]
        results.append(result)
    for error in report["parse_errors"]:
        results.append(
            {
                "ruleId": "parse-error",
                "level": "error",
                "message": {"text": error["error"]},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": error["path"]},
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": report["tool"],
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
