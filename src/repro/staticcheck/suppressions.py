"""Inline suppression comments: ``# staticcheck: ignore[RULE, ...]``.

A finding is suppressed when the physical line it points at carries an
ignore comment naming its rule (``# staticcheck: ignore[SC001]``, with a
comma-separated list for several rules) or a blanket ignore with no rule
list (``# staticcheck: ignore``).  Suppressions are per-line — there is no
file- or block-level form — so every silenced violation stays visible next
to the code it excuses.
"""

from __future__ import annotations

import re

__all__ = ["Suppressions"]

_IGNORE_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


class Suppressions:
    """Per-line suppression index of one source file."""

    def __init__(self, source: str) -> None:
        # line number (1-indexed) -> frozenset of rule ids, or None for a
        # blanket ignore that silences every rule on that line.
        self._by_line: dict[int, frozenset[str] | None] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = None
                continue
            ids = frozenset(part.strip() for part in rules.split(",") if part.strip())
            # ``ignore[]`` with an empty list suppresses nothing (it is a
            # malformed comment, not a blanket ignore).
            self._by_line[lineno] = ids if ids else frozenset()

    def __len__(self) -> int:
        return len(self._by_line)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is silenced on the given 1-indexed line."""
        entry = self._by_line.get(line, frozenset())
        if entry is None:
            return True
        return rule in entry
