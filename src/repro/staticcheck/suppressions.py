"""Inline suppression comments: ``# staticcheck: ignore[RULE, ...] -- why``.

A finding is suppressed when the physical line it points at carries an
ignore comment naming its rule (``# staticcheck: ignore[SC001] -- seeded
upstream``, with a comma-separated list for several rules) or a blanket
ignore with no rule list.  Suppressions are per-line — there is no file- or
block-level form — so every silenced violation stays visible next to the
code it excuses.

Only real ``#`` comment tokens count: the source is tokenized, so the
ignore syntax quoted inside a docstring or a test fixture string is never
mistaken for a live suppression.

The ``-- reason`` trailer is part of the contract: the SC008 hygiene rule
flags every suppression without one, and flags suppressions that no longer
match any finding (so stale ignores cannot rot in place).  The parsed
:class:`SuppressionEntry` records feed that rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["SuppressionEntry", "Suppressions"]

_IGNORE_RE = re.compile(
    r"#\s*staticcheck:\s*ignore"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*?)\s*$)?"
)


@dataclass(frozen=True)
class SuppressionEntry:
    """One parsed ignore comment."""

    line: int
    col: int
    #: ``None`` for a blanket ignore; a (possibly empty) id set otherwise.
    rules: frozenset[str] | None
    #: The ``-- ...`` trailer, or ``None`` when the comment has no reason.
    reason: str | None


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) of every comment token; best-effort on bad input."""
    comments: list[tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # an unparsable file produces no findings to suppress anyway
    return comments


class Suppressions:
    """Per-line suppression index of one source file."""

    def __init__(self, source: str) -> None:
        self._entries: list[SuppressionEntry] = []
        # line number (1-indexed) -> frozenset of rule ids, or None for a
        # blanket ignore that silences every rule on that line.
        self._by_line: dict[int, frozenset[str] | None] = {}
        for lineno, col, text in _comment_tokens(source):
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                ids: frozenset[str] | None = None
            else:
                # ``ignore[]`` with an empty list suppresses nothing (it is
                # a malformed comment, not a blanket ignore).
                ids = frozenset(
                    part.strip() for part in rules.split(",") if part.strip()
                )
            self._entries.append(
                SuppressionEntry(
                    line=lineno,
                    col=col + match.start(),
                    rules=ids,
                    reason=match.group("reason"),
                )
            )
            self._by_line[lineno] = ids

    def __len__(self) -> int:
        return len(self._by_line)

    def entries(self) -> list[SuppressionEntry]:
        """Every parsed ignore comment, in line order."""
        return list(self._entries)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is silenced on the given 1-indexed line."""
        entry = self._by_line.get(line, frozenset())
        if entry is None:
            return True
        return rule in entry
