"""Command-line front-end: ``python -m repro.staticcheck [paths] ...``.

Exit codes follow the usual linter contract:

* ``0`` — every selected rule ran and produced no (unsuppressed) findings;
* ``1`` — findings were reported (or files failed to parse);
* ``2`` — usage error: unknown rule id, or a path that does not exist.

``--format json`` (and ``--output FILE``, which always writes JSON) emit a
machine-readable report; ``--format sarif`` emits a SARIF 2.1.0 log for
code-scanning ingestion.  ``--cache-dir DIR`` persists parsed modules and
effect summaries keyed by source content hashes, making warm re-runs over
an unchanged tree nearly parse-free.  ``--paths PREFIX[,PREFIX...]``
restricts *reporting* to files under the given prefixes while the whole
positional tree is still indexed — the call graph stays complete, so
interprocedural findings in the filtered files remain correct.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, TextIO

from .cache import FindingsCache, ParseCache
from .findings import Finding
from .flow import FlowAnalysis
from .project import ProjectIndex
from .registry import Rule, UnknownRuleError, get_rules
from .sarif import to_sarif

__all__ = ["main"]

#: Bumped when the JSON report schema changes shape.
REPORT_VERSION = 2

_DEFAULT_PATHS = ("src",)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST contract linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--paths",
        dest="report_paths",
        metavar="PREFIX[,PREFIX...]",
        help=(
            "only report findings for files under these path prefixes "
            "(the full positional tree is still indexed for the call graph)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        metavar="DIR",
        help="persist parse/summary caches under DIR (content-hash keyed)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _collect_files(paths: list[str]) -> tuple[list[Path], list[str]]:
    """Python files under the given paths, plus the paths that don't exist."""
    files: list[Path] = []
    missing: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            missing.append(raw)
    return files, missing


def _split_findings(
    index: ProjectIndex, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (active, suppressed) via inline ignore comments."""
    by_path = {module.display_path: module.suppressions for module in index.all_modules}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        marks = by_path.get(finding.path)
        if marks is not None and marks.is_suppressed(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def _path_filter(prefixes: list[str]) -> Any:
    normalised = [prefix.rstrip("/") for prefix in prefixes if prefix.strip()]

    def matches(finding: Finding) -> bool:
        return any(
            finding.path == prefix or finding.path.startswith(prefix + "/")
            for prefix in normalised
        )

    return matches


def _report(
    *,
    rules: list[Rule],
    paths: list[str],
    index: ProjectIndex,
    active: list[Finding],
    suppressed: list[Finding],
) -> dict[str, Any]:
    counts: dict[str, int] = {rule.rule_id: 0 for rule in rules}
    for finding in active:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "repro.staticcheck",
        "rules": [
            {"id": rule.rule_id, "name": rule.name, "description": rule.description}
            for rule in rules
        ],
        "paths": list(paths),
        "files_scanned": len(index.all_modules) + len(index.parse_errors),
        "findings": [finding.to_dict() for finding in active],
        "suppressed": len(suppressed),
        "parse_errors": [
            {"path": path, "error": error} for path, error in index.parse_errors
        ],
        "counts": counts,
    }


def _print_text(report: dict[str, Any], active: list[Finding], out: TextIO) -> None:
    for path, error in sorted(
        (entry["path"], entry["error"]) for entry in report["parse_errors"]
    ):
        print(f"{path}: parse error: {error}", file=out)
    for finding in active:
        print(finding.format_text(), file=out)
    total = len(active) + len(report["parse_errors"])
    scanned = report["files_scanned"]
    suppressed = report["suppressed"]
    tail = f" ({suppressed} suppressed)" if suppressed else ""
    if total:
        print(f"{total} finding(s) in {scanned} file(s){tail}", file=out)
    else:
        print(f"clean: 0 findings in {scanned} file(s){tail}", file=out)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        rule_ids = None if args.rules is None else [
            part.strip() for part in args.rules.split(",") if part.strip()
        ]
        rules = get_rules(rule_ids)
    except UnknownRuleError as exc:
        print(f"error: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    files, missing = _collect_files(args.paths)
    if missing:
        for raw in missing:
            print(f"error: no such file or directory: {raw}", file=sys.stderr)
        return 2
    if not files:
        print("error: no Python files found under the given paths", file=sys.stderr)
        return 2

    cache = ParseCache(args.cache_dir) if args.cache_dir is not None else None
    index = ProjectIndex.from_files(files, cache=cache)

    ordinary = [rule for rule in rules if not rule.is_post]
    post = [rule for rule in rules if rule.is_post]
    ordinary_ids = frozenset(rule.rule_id for rule in ordinary)
    findings_cache = (
        FindingsCache(args.cache_dir) if args.cache_dir is not None else None
    )
    raw = (
        findings_cache.load(index, ordinary_ids)
        if findings_cache is not None
        else None
    )
    if raw is None:
        # Precompute (and with --cache-dir, persist) the shared dataflow
        # layer so every interprocedural rule hits the memo instead of
        # re-deriving it.
        FlowAnalysis.for_index(index, cache_dir=args.cache_dir)
        raw = []
        for rule in ordinary:
            raw.extend(rule.run(index))
        raw.sort()
        if findings_cache is not None:
            findings_cache.store(index, ordinary_ids, raw)
    active, suppressed = _split_findings(index, raw)
    # Post rules see the raw findings (a suppressed finding still *matches*
    # its suppression) and their own findings cannot be suppressed.
    for rule in post:
        active.extend(rule.run_post(index, raw, ordinary_ids))
    active.sort()

    if args.report_paths is not None:
        matches = _path_filter(args.report_paths.split(","))
        active = [finding for finding in active if matches(finding)]
        suppressed = [finding for finding in suppressed if matches(finding)]

    report = _report(
        rules=rules,
        paths=args.paths,
        index=index,
        active=active,
        suppressed=suppressed,
    )
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(report), indent=2))
    else:
        _print_text(report, active, sys.stdout)

    return 1 if active or index.parse_errors else 0
