"""Command-line front-end: ``python -m repro.staticcheck [paths] ...``.

Exit codes follow the usual linter contract:

* ``0`` — every selected rule ran and produced no (unsuppressed) findings;
* ``1`` — findings were reported (or files failed to parse);
* ``2`` — usage error: unknown rule id, or a path that does not exist.

``--format json`` (and ``--output FILE``, which always writes JSON) emit a
machine-readable report; CI uploads it as an artifact when the gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, TextIO

from .findings import Finding
from .project import ProjectIndex
from .registry import Rule, UnknownRuleError, get_rules

__all__ = ["main"]

#: Bumped when the JSON report schema changes shape.
REPORT_VERSION = 1

_DEFAULT_PATHS = ("src",)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST contract linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _collect_files(paths: list[str]) -> tuple[list[Path], list[str]]:
    """Python files under the given paths, plus the paths that don't exist."""
    files: list[Path] = []
    missing: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            missing.append(raw)
    return files, missing


def _split_findings(
    index: ProjectIndex, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (active, suppressed) via inline ignore comments."""
    by_path = {module.display_path: module.suppressions for module in index.modules.values()}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        marks = by_path.get(finding.path)
        if marks is not None and marks.is_suppressed(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def _report(
    *,
    rules: list[Rule],
    paths: list[str],
    index: ProjectIndex,
    active: list[Finding],
    suppressed: list[Finding],
) -> dict[str, Any]:
    counts: dict[str, int] = {rule.rule_id: 0 for rule in rules}
    for finding in active:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "repro.staticcheck",
        "rules": [
            {"id": rule.rule_id, "name": rule.name, "description": rule.description}
            for rule in rules
        ],
        "paths": list(paths),
        "files_scanned": len(index.modules) + len(index.parse_errors),
        "findings": [finding.to_dict() for finding in active],
        "suppressed": len(suppressed),
        "parse_errors": [
            {"path": path, "error": error} for path, error in index.parse_errors
        ],
        "counts": counts,
    }


def _print_text(report: dict[str, Any], active: list[Finding], out: TextIO) -> None:
    for path, error in sorted(
        (entry["path"], entry["error"]) for entry in report["parse_errors"]
    ):
        print(f"{path}: parse error: {error}", file=out)
    for finding in active:
        print(finding.format_text(), file=out)
    total = len(active) + len(report["parse_errors"])
    scanned = report["files_scanned"]
    suppressed = report["suppressed"]
    tail = f" ({suppressed} suppressed)" if suppressed else ""
    if total:
        print(f"{total} finding(s) in {scanned} file(s){tail}", file=out)
    else:
        print(f"clean: 0 findings in {scanned} file(s){tail}", file=out)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        rule_ids = None if args.rules is None else [
            part.strip() for part in args.rules.split(",") if part.strip()
        ]
        rules = get_rules(rule_ids)
    except UnknownRuleError as exc:
        print(f"error: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    files, missing = _collect_files(args.paths)
    if missing:
        for raw in missing:
            print(f"error: no such file or directory: {raw}", file=sys.stderr)
        return 2
    if not files:
        print("error: no Python files found under the given paths", file=sys.stderr)
        return 2

    index = ProjectIndex.from_files(files)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.run(index))
    active, suppressed = _split_findings(index, sorted(findings))

    report = _report(
        rules=rules,
        paths=args.paths,
        index=index,
        active=active,
        suppressed=suppressed,
    )
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        _print_text(report, active, sys.stdout)

    return 1 if active or index.parse_errors else 0
