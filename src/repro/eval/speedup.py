"""Kernel-speedup experiments (Figure 1, Figure 6 and the Section 6.2
headline numbers).

Everything here runs on the GPU timing model with the real layer shapes of
the three workloads; no model training is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.arch import GPUArch, get_gpu
from ..kernels.base import GEMMShape, KernelNotApplicableError, SpMMKernel
from ..kernels.registry import make_kernel, paper_baselines
from ..models.shapes import LayerShape, model_layers

__all__ = [
    "SpeedupPoint",
    "kernel_time",
    "layer_time",
    "model_time",
    "model_speedup",
    "spmm_throughput_sweep",
    "figure6_sweep",
    "headline_speedups",
    "PAPER_SPARSITIES",
    "PAPER_GPUS",
]

#: The sparsity grid of Figure 6.
PAPER_SPARSITIES = (0.50, 0.75, 0.85, 0.95)
#: The GPUs of the evaluation (Section 6.1).
PAPER_GPUS = ("V100", "T4", "A100")


@dataclass(frozen=True)
class SpeedupPoint:
    """One kernel at one operating point, relative to the dense baseline."""

    kernel: str
    arch: str
    sparsity: float
    time_s: float
    dense_time_s: float

    @property
    def speedup(self) -> float:
        if self.time_s <= 0:
            return float("inf")
        return self.dense_time_s / self.time_s


def kernel_time(kernel: SpMMKernel, arch: GPUArch, shape: GEMMShape, density: float) -> float:
    """Estimated execution time of one kernel on one GEMM shape."""
    return kernel.estimate(arch, shape, density).total_time_s


def layer_time(kernel: SpMMKernel, arch: GPUArch, layer: LayerShape, density: float) -> float:
    """Estimated execution time of one kernel on one layer occurrence.

    Convolution layers are routed through the kernel's ``estimate_conv``
    (implicit GEMM plus the unfolding overhead); whether the kernel supports
    convolutions at all is decided there, in one place — a kernel without a
    convolution implementation raises :class:`KernelNotApplicableError`.
    """
    if layer.kind == "conv":
        timing = kernel.estimate_conv(
            arch,
            layer.conv,
            density,
            batch=layer.batch,
            height=layer.height,
            width=layer.width,
        )
        return timing.total_time_s
    return kernel_time(kernel, arch, layer.gemm, density)


def model_time(
    kernel: SpMMKernel, arch: GPUArch, layers: list[LayerShape], density: float
) -> float:
    """Total time over all (weighted) layers of a workload.

    Raises :class:`KernelNotApplicableError` if the kernel cannot run any of
    the layers (e.g. balanced 2:4 at a density other than 0.5, or a baseline
    without a convolution implementation).
    """
    return sum(
        layer_time(kernel, arch, layer, density) * layer.count for layer in layers
    )


def model_speedup(
    kernel: SpMMKernel,
    dense_kernel: SpMMKernel,
    arch: GPUArch,
    layers: list[LayerShape],
    sparsity: float,
    *,
    dense_time: float | None = None,
) -> SpeedupPoint | None:
    """Speedup of a sparse kernel over the dense baseline on a workload.

    Returns ``None`` when the kernel is not applicable at this operating
    point (mirroring the missing bars in Figure 6).  ``dense_time`` lets
    sweeps pass the dense baseline computed once per (model, GPU) pair
    instead of re-simulating it for every kernel x sparsity cell.
    """
    density = 1.0 - sparsity
    try:
        sparse_time = model_time(kernel, arch, layers, density)
    except (KernelNotApplicableError, ValueError):
        return None
    if dense_time is None:
        dense_time = model_time(dense_kernel, arch, layers, 1.0)
    return SpeedupPoint(
        kernel=kernel.name,
        arch=arch.name,
        sparsity=sparsity,
        time_s=sparse_time,
        dense_time_s=dense_time,
    )


def spmm_throughput_sweep(
    gpu: str = "V100",
    *,
    m: int = 2048,
    n: int = 128,
    k: int = 2048,
    densities: tuple[float, ...] = (0.02, 0.05, 0.10, 0.15, 0.25, 0.35, 0.50),
    vector_size: int = 64,
) -> dict[str, dict[float, float]]:
    """Figure 1: SpMM throughput vs density, normalised to CUDA-core dense.

    Returns ``{curve_name: {density: normalised_throughput}}`` with the four
    curves of the figure: tensor-core dense, CUDA-core dense, CUDA-core
    sparse (Sputnik) and tensor-core sparse (Shfl-BW, ours).
    """
    arch = get_gpu(gpu)
    shape = GEMMShape(m=m, n=n, k=k)
    dense_tc = make_kernel("dense")
    dense_cc = make_kernel("dense-cudacore")
    sparse_cc = make_kernel("sputnik")
    sparse_tc = make_kernel("shfl-bw", vector_size=vector_size)

    cc_time = kernel_time(dense_cc, arch, shape, 1.0)
    tc_time = kernel_time(dense_tc, arch, shape, 1.0)

    curves: dict[str, dict[float, float]] = {
        "Cuda-Core": {d: 1.0 for d in densities},
        "Tensor-Core": {d: cc_time / tc_time for d in densities},
        "Cuda-Core Sparse": {},
        "Tensor-Core Sparse (Ours)": {},
    }
    for density in densities:
        curves["Cuda-Core Sparse"][density] = cc_time / kernel_time(
            sparse_cc, arch, shape, density
        )
        curves["Tensor-Core Sparse (Ours)"][density] = cc_time / kernel_time(
            sparse_tc, arch, shape, density
        )
    return curves


def figure6_sweep(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    gpus: tuple[str, ...] = PAPER_GPUS,
    sparsities: tuple[float, ...] = PAPER_SPARSITIES,
    vector_sizes: tuple[int, ...] = (32, 64),
) -> dict[tuple[str, str], dict[str, dict[float, float | None]]]:
    """Figure 6: speedup over the dense baseline for every kernel line-up.

    Returns ``{(model, gpu): {kernel_label: {sparsity: speedup_or_None}}}``.
    Kernels that are not applicable (wrong GPU, fixed-density patterns,
    missing convolution support) report ``None``, matching the bars missing
    from the paper's figure.
    """
    dense_kernel = make_kernel("dense")
    # The line-up is identical for every (model, gpu) cell; build it once.
    kernel_lineup = paper_baselines(vector_sizes)
    results: dict[tuple[str, str], dict[str, dict[float, float | None]]] = {}
    for model in models:
        layers = model_layers(model)
        for gpu in gpus:
            arch = get_gpu(gpu)
            # The dense baseline depends only on (model, gpu): simulate it
            # once instead of once per kernel x sparsity cell.
            dense_time = model_time(dense_kernel, arch, layers, 1.0)
            per_kernel: dict[str, dict[float, float | None]] = {}
            for label, kernel in kernel_lineup.items():
                if label == "Dense (tensor-core)":
                    continue
                supported = getattr(kernel, "supported_archs", None)
                per_kernel[label] = {}
                for sparsity in sparsities:
                    if supported is not None and arch.name not in supported:
                        per_kernel[label][sparsity] = None
                        continue
                    point = model_speedup(
                        kernel, dense_kernel, arch, layers, sparsity, dense_time=dense_time
                    )
                    per_kernel[label][sparsity] = None if point is None else point.speedup
            results[(model, gpu)] = per_kernel
    return results


def headline_speedups(
    sparsity: float = 0.75, vector_size: int = 64, model: str = "transformer"
) -> dict[str, float]:
    """Section 6.2 headline: Shfl-BW speedup on the Transformer GEMM layers at
    75 % sparsity on each GPU (paper: 1.81x / 4.18x / 1.90x)."""
    layers = model_layers(model)
    dense_kernel = make_kernel("dense")
    kernel = make_kernel("shfl-bw", vector_size=vector_size)
    out: dict[str, float] = {}
    for gpu in PAPER_GPUS:
        arch = get_gpu(gpu)
        point = model_speedup(kernel, dense_kernel, arch, layers, sparsity)
        out[gpu] = point.speedup if point is not None else float("nan")
    return out
