"""Kernel-speedup experiments (Figure 1, Figure 6 and the Section 6.2
headline numbers).

Everything here runs on the GPU timing model with the real layer shapes of
the three workloads; no model training is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.arch import GPUArch
from ..kernels.base import (
    GEMMShape,
    KernelNotApplicableError,
    SpMMKernel,
    conv_unfold_factor,
    no_conv_support_detail,
)
from ..kernels.registry import (
    DENSE_BASELINE_LABEL,
    paper_baseline_specs,
)
from ..models.shapes import LayerShape
from .runner import KernelSpec, SweepResult, SweepRunner, SweepSpec

__all__ = [
    "SpeedupPoint",
    "kernel_time",
    "layer_time",
    "layer_times_grid",
    "model_time",
    "model_time_grid",
    "model_speedup",
    "spmm_throughput_sweep",
    "figure6_sweep",
    "figure6_spec",
    "collate_figure6",
    "figure1_spec",
    "collate_figure1",
    "headline_speedups",
    "headline_spec",
    "collate_headline",
    "PAPER_SPARSITIES",
    "PAPER_GPUS",
    "FIGURE1_DENSITIES",
]

#: The sparsity grid of Figure 6.
PAPER_SPARSITIES = (0.50, 0.75, 0.85, 0.95)
#: The GPUs of the evaluation (Section 6.1).
PAPER_GPUS = ("V100", "T4", "A100")
#: The density grid of Figure 1.
FIGURE1_DENSITIES = (0.02, 0.05, 0.10, 0.15, 0.25, 0.35, 0.50)


@dataclass(frozen=True)
class SpeedupPoint:
    """One kernel at one operating point, relative to the dense baseline."""

    kernel: str
    arch: str
    sparsity: float
    time_s: float
    dense_time_s: float

    @property
    def speedup(self) -> float:
        if self.time_s <= 0:
            return float("inf")
        return self.dense_time_s / self.time_s


def kernel_time(kernel: SpMMKernel, arch: GPUArch, shape: GEMMShape, density: float) -> float:
    """Estimated execution time of one kernel on one GEMM shape."""
    return kernel.estimate(arch, shape, density).total_time_s


def layer_time(kernel: SpMMKernel, arch: GPUArch, layer: LayerShape, density: float) -> float:
    """Estimated execution time of one kernel on one layer occurrence.

    Convolution layers are routed through the kernel's ``estimate_conv``
    (implicit GEMM plus the unfolding overhead); whether the kernel supports
    convolutions at all is decided there, in one place — a kernel without a
    convolution implementation raises :class:`KernelNotApplicableError`.
    """
    if layer.kind == "conv":
        timing = kernel.estimate_conv(
            arch,
            layer.conv,
            density,
            batch=layer.batch,
            height=layer.height,
            width=layer.width,
        )
        return timing.total_time_s
    return kernel_time(kernel, arch, layer.gemm, density)


def model_time(
    kernel: SpMMKernel, arch: GPUArch, layers: list[LayerShape], density: float
) -> float:
    """Total time over all (weighted) layers of a workload.

    Raises :class:`KernelNotApplicableError` if the kernel cannot run any of
    the layers (e.g. balanced 2:4 at a density other than 0.5, or a baseline
    without a convolution implementation).
    """
    return sum(
        layer_time(kernel, arch, layer, density) * layer.count for layer in layers
    )


def _layer_grid(
    kernel: SpMMKernel, arch: GPUArch, layers: list[LayerShape], densities: np.ndarray
) -> np.ndarray:
    """Per-occurrence layer times over a ``densities x layers`` grid.

    The batched twin of looping :func:`layer_time`: one
    :meth:`~repro.kernels.base.SpMMKernel.estimate_grid` call covers every
    ``(density, layer)`` cell, and the convolution unfolding overhead is
    applied to the conv columns with exactly the scalar
    ``estimate_conv`` expression.  Raises
    :class:`~repro.kernels.base.KernelNotApplicableError` /
    :class:`ValueError` exactly when the scalar loop would on any cell.
    """
    for layer in layers:
        if layer.kind == "conv" and not kernel.supports_conv:
            raise KernelNotApplicableError(no_conv_support_detail(kernel.name))
    densities = np.asarray(densities, dtype=np.float64)
    shapes = [layer.gemm for layer in layers] * len(densities)
    cell_densities = np.repeat(densities, len(layers))
    timing = kernel.estimate_grid(arch, shapes, cell_densities)
    totals = timing.total_time_s.reshape(len(densities), len(layers))
    # Unfold overhead per conv column, scaled by the shared
    # conv_unfold_factor — the exact expression of SpMMKernel.estimate_conv
    # (linear layers and 1x1 convs carry factor 0.0 and add an exact 0.0).
    factors = np.array(
        [
            conv_unfold_factor(layer.conv.kernel_size)
            if layer.kind == "conv"
            else 0.0
            for layer in layers
        ]
    )
    if np.any(factors > 0.0):
        totals = totals + totals * kernel.conv_unfold_overhead * factors[None, :]
    return totals


def layer_times_grid(
    kernel: SpMMKernel, arch: GPUArch, layers: list[LayerShape], density: float
) -> np.ndarray:
    """Per-occurrence time of every layer at one density, in one batched call
    (the autotuner's candidate-scoring fast path)."""
    return _layer_grid(kernel, arch, layers, np.array([density]))[0]


def model_time_grid(
    kernel: SpMMKernel, arch: GPUArch, layers: list[LayerShape], densities: np.ndarray
) -> np.ndarray:
    """Whole-workload time at every density in one batched call.

    The batched twin of :func:`model_time`: entry ``i`` is bit-identical to
    ``model_time(kernel, arch, layers, densities[i])`` (the per-layer
    accumulation runs in the same order as the scalar sum).
    """
    densities = np.asarray(densities, dtype=np.float64)
    times = _layer_grid(kernel, arch, layers, densities)
    totals = np.zeros(len(densities))
    for column, layer in enumerate(layers):
        totals += times[:, column] * layer.count
    return totals


def model_speedup(
    kernel: SpMMKernel,
    dense_kernel: SpMMKernel,
    arch: GPUArch,
    layers: list[LayerShape],
    sparsity: float,
    *,
    dense_time: float | None = None,
) -> SpeedupPoint | None:
    """Speedup of a sparse kernel over the dense baseline on a workload.

    Returns ``None`` when the kernel is not applicable at this operating
    point (mirroring the missing bars in Figure 6).  ``dense_time`` lets
    sweeps pass the dense baseline computed once per (model, GPU) pair
    instead of re-simulating it for every kernel x sparsity cell.
    """
    density = 1.0 - sparsity
    try:
        sparse_time = model_time(kernel, arch, layers, density)
    except (KernelNotApplicableError, ValueError):
        return None
    if dense_time is None:
        dense_time = model_time(dense_kernel, arch, layers, 1.0)
    return SpeedupPoint(
        kernel=kernel.name,
        arch=arch.name,
        sparsity=sparsity,
        time_s=sparse_time,
        dense_time_s=dense_time,
    )


def figure1_spec(
    gpu: str = "V100",
    *,
    m: int = 2048,
    n: int = 128,
    k: int = 2048,
    densities: tuple[float, ...] = FIGURE1_DENSITIES,
    vector_size: int = 64,
) -> SweepSpec:
    """The Figure 1 grid: four curves over one GEMM shape on one GPU."""
    kernels = (
        KernelSpec("dense-cudacore", label="Cuda-Core", sparsities=(0.0,)),
        KernelSpec("sputnik", label="Cuda-Core Sparse"),
        KernelSpec(
            "shfl-bw",
            kwargs={"vector_size": vector_size},
            label="Tensor-Core Sparse (Ours)",
        ),
    )
    return SweepSpec(
        kernels=kernels,
        gpus=(gpu,),
        sparsities=tuple(1.0 - d for d in densities),
        gemm=(m, n, k),
    )


def collate_figure1(
    result: SweepResult, densities: tuple[float, ...]
) -> dict[str, dict[float, float]]:
    """Fold Figure 1 records back into ``{curve: {density: throughput}}``."""
    spec = result.spec
    lookup = result.by_config()
    (gpu,) = spec.gpus
    cc_spec, sputnik_spec, shflbw_spec = spec.kernels
    cc_time = lookup[spec.config(cc_spec, None, gpu, 0.0)].time_s
    tc_time = lookup[spec.dense_config(None, gpu)].time_s
    curves: dict[str, dict[float, float]] = {
        "Cuda-Core": {d: 1.0 for d in densities},
        "Tensor-Core": {d: cc_time / tc_time for d in densities},
        "Cuda-Core Sparse": {},
        "Tensor-Core Sparse (Ours)": {},
    }
    for density in densities:
        sparsity = 1.0 - density
        cc_sparse = lookup[spec.config(sputnik_spec, None, gpu, sparsity)]
        tc_sparse = lookup[spec.config(shflbw_spec, None, gpu, sparsity)]
        curves["Cuda-Core Sparse"][density] = cc_time / cc_sparse.time_s
        curves["Tensor-Core Sparse (Ours)"][density] = cc_time / tc_sparse.time_s
    return curves


def spmm_throughput_sweep(
    gpu: str = "V100",
    *,
    m: int = 2048,
    n: int = 128,
    k: int = 2048,
    densities: tuple[float, ...] = FIGURE1_DENSITIES,
    vector_size: int = 64,
    runner: SweepRunner | None = None,
) -> dict[str, dict[float, float]]:
    """Figure 1: SpMM throughput vs density, normalised to CUDA-core dense.

    Returns ``{curve_name: {density: normalised_throughput}}`` with the four
    curves of the figure: tensor-core dense, CUDA-core dense, CUDA-core
    sparse (Sputnik) and tensor-core sparse (Shfl-BW, ours).
    """
    spec = figure1_spec(
        gpu, m=m, n=n, k=k, densities=densities, vector_size=vector_size
    )
    result = (runner or SweepRunner()).run(spec)
    return collate_figure1(result, tuple(densities))


def figure6_spec(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    gpus: tuple[str, ...] = PAPER_GPUS,
    sparsities: tuple[float, ...] = PAPER_SPARSITIES,
    vector_sizes: tuple[int, ...] = (32, 64),
) -> SweepSpec:
    """The Figure 6 grid: the paper's kernel line-up over models x GPUs x
    sparsities, plus one dense-baseline cell per (model, GPU)."""
    kernels = tuple(
        KernelSpec(name=name, kwargs=kwargs, label=label)
        for label, (name, kwargs) in paper_baseline_specs(tuple(vector_sizes)).items()
        if label != DENSE_BASELINE_LABEL
    )
    return SweepSpec(
        kernels=kernels,
        gpus=tuple(gpus),
        sparsities=tuple(sparsities),
        models=tuple(models),
    )


def collate_figure6(
    result: SweepResult,
) -> dict[tuple[str, str], dict[str, dict[float, float | None]]]:
    """Fold Figure 6 records back into the nested speedup dict."""
    spec = result.spec
    lookup = result.by_config()
    results: dict[tuple[str, str], dict[str, dict[float, float | None]]] = {}
    for model in spec.models:
        for gpu in spec.gpus:
            dense_time = lookup[spec.dense_config(model, gpu)].time_s
            per_kernel: dict[str, dict[float, float | None]] = {}
            for kernel in spec.kernels:
                by_sparsity: dict[float, float | None] = {}
                for sparsity in spec.sparsities:
                    record = lookup[spec.config(kernel, model, gpu, sparsity)]
                    by_sparsity[sparsity] = (
                        dense_time / record.time_s if record.ok else None
                    )
                per_kernel[kernel.display_label] = by_sparsity
            results[(model, gpu)] = per_kernel
    return results


def figure6_sweep(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    gpus: tuple[str, ...] = PAPER_GPUS,
    sparsities: tuple[float, ...] = PAPER_SPARSITIES,
    vector_sizes: tuple[int, ...] = (32, 64),
    *,
    runner: SweepRunner | None = None,
) -> dict[tuple[str, str], dict[str, dict[float, float | None]]]:
    """Figure 6: speedup over the dense baseline for every kernel line-up.

    Returns ``{(model, gpu): {kernel_label: {sparsity: speedup_or_None}}}``.
    Kernels that are not applicable (wrong GPU, fixed-density patterns,
    missing convolution support) report ``None``, matching the bars missing
    from the paper's figure.
    """
    spec = figure6_spec(models, gpus, sparsities, vector_sizes)
    result = (runner or SweepRunner()).run(spec)
    return collate_figure6(result)


def headline_spec(
    sparsity: float = 0.75, vector_size: int = 64, model: str = "transformer"
) -> SweepSpec:
    """The Section 6.2 headline grid: Shfl-BW on one model across the GPUs."""
    return SweepSpec(
        kernels=(
            KernelSpec(
                "shfl-bw",
                kwargs={"vector_size": vector_size},
                label=f"Shfl-BW,V={vector_size}",
            ),
        ),
        gpus=PAPER_GPUS,
        sparsities=(sparsity,),
        models=(model,),
    )


def collate_headline(result: SweepResult) -> dict[str, float]:
    """Fold headline records into ``{gpu: speedup}``."""
    spec = result.spec
    lookup = result.by_config()
    (model,) = spec.models
    (kernel,) = spec.kernels
    (sparsity,) = spec.sparsities
    out: dict[str, float] = {}
    for gpu in spec.gpus:
        dense_time = lookup[spec.dense_config(model, gpu)].time_s
        record = lookup[spec.config(kernel, model, gpu, sparsity)]
        out[gpu] = dense_time / record.time_s if record.ok else float("nan")
    return out


def headline_speedups(
    sparsity: float = 0.75,
    vector_size: int = 64,
    model: str = "transformer",
    *,
    runner: SweepRunner | None = None,
) -> dict[str, float]:
    """Section 6.2 headline: Shfl-BW speedup on the Transformer GEMM layers at
    75 % sparsity on each GPU (paper: 1.81x / 4.18x / 1.90x)."""
    spec = headline_spec(sparsity, vector_size, model)
    result = (runner or SweepRunner()).run(spec)
    return collate_headline(result)
