"""Accuracy-speedup trade-off (Figure 2 of the paper).

Figure 2 plots, for GNMT on V100, the BLEU score against the kernel speedup
over the tensor-core dense baseline for several sparsity patterns and vector
sizes at 80 % and 90 % sparsity.  The reproduction combines:

* the kernel-speedup side from the GPU timing model on the *real* GNMT layer
  shapes (:func:`repro.eval.speedup.model_speedup`), and
* the accuracy side from the proxy-GNMT protocol of
  :mod:`repro.eval.accuracy`.

The paper's qualitative claims to check: unstructured sparsity sits below
1x speedup (no tensor cores) despite the best accuracy; Shfl-BW reaches real
speedup at small accuracy cost and dominates vector-wise; larger V trades a
little accuracy for more speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.arch import get_gpu
from ..kernels.registry import make_kernel
from ..models.shapes import gnmt_layers
from .accuracy import AccuracyConfig, PatternSpec, evaluate_model_accuracy
from .runner import SweepRunner
from .speedup import model_speedup, model_time

__all__ = ["TradeoffPoint", "figure2_pattern_specs", "figure2_sweep"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Figure 2 scatter: a pattern at a sparsity level."""

    label: str
    sparsity: float
    accuracy: float
    speedup: float


def figure2_pattern_specs() -> list[PatternSpec]:
    """The pattern line-up of Figure 2 (GNMT on V100)."""
    return [
        PatternSpec("Unstructured", "unstructured"),
        PatternSpec("VW, V=32", "vectorwise", 32),
        PatternSpec("Shfl-BW, V=32", "shflbw", 32),
        PatternSpec("Shfl-BW, V=64", "shflbw", 64),
        PatternSpec("Shfl-BW, V=128", "shflbw", 128),
    ]


def _kernel_for_spec(spec: PatternSpec):
    if spec.pattern == "unstructured":
        return make_kernel("sputnik")
    if spec.pattern == "vectorwise":
        return make_kernel("vector-wise", vector_size=spec.paper_vector_size)
    if spec.pattern == "shflbw":
        return make_kernel("shfl-bw", vector_size=spec.paper_vector_size)
    if spec.pattern == "blockwise":
        return make_kernel("cusparse-bsr", block_size=spec.paper_vector_size)
    raise ValueError(f"no kernel mapping for pattern {spec.pattern!r}")


def figure2_sweep(
    gpu: str = "V100",
    sparsities: tuple[float, ...] = (0.80, 0.90),
    config: AccuracyConfig | None = None,
    specs: list[PatternSpec] | None = None,
    *,
    runner: SweepRunner | None = None,
) -> list[TradeoffPoint]:
    """Compute the accuracy-speedup points of Figure 2.

    Speedups use the real GNMT layer shapes on the requested GPU; accuracies
    come from the proxy-GNMT pruning protocol, whose (pattern, sparsity)
    cells run through ``runner`` (process-pool parallelism + persistent
    caching) exactly like the timing sweeps.
    """
    config = config or AccuracyConfig()
    specs = specs if specs is not None else figure2_pattern_specs()
    arch = get_gpu(gpu)
    layers = gnmt_layers()
    dense_kernel = make_kernel("dense")

    accuracy = evaluate_model_accuracy("gnmt", sparsities, specs, config, runner=runner)
    # One dense baseline per sweep; every point reuses it.
    dense_time = model_time(dense_kernel, arch, layers, 1.0)

    points: list[TradeoffPoint] = []
    for spec in specs:
        kernel = _kernel_for_spec(spec)
        for sparsity in sparsities:
            metric = accuracy.metric(spec.label, sparsity)
            if metric is None:
                continue
            point = model_speedup(
                kernel, dense_kernel, arch, layers, sparsity, dense_time=dense_time
            )
            if point is None:
                continue
            points.append(
                TradeoffPoint(
                    label=spec.label,
                    sparsity=sparsity,
                    accuracy=metric,
                    speedup=point.speedup,
                )
            )
    return points
