"""Experiment harness regenerating every table and figure of the paper."""

from .accuracy import (
    AccuracyConfig,
    AccuracyResult,
    PatternSpec,
    evaluate_model_accuracy,
    table1_pattern_specs,
    table1_sweep,
)
from .experiments import available_experiments, run_experiment
from .report import Report, Table
from .speedup import (
    PAPER_GPUS,
    PAPER_SPARSITIES,
    SpeedupPoint,
    figure6_sweep,
    headline_speedups,
    kernel_time,
    layer_time,
    model_speedup,
    model_time,
    spmm_throughput_sweep,
)
from .tradeoff import TradeoffPoint, figure2_pattern_specs, figure2_sweep

__all__ = [
    "AccuracyConfig",
    "AccuracyResult",
    "PatternSpec",
    "evaluate_model_accuracy",
    "table1_pattern_specs",
    "table1_sweep",
    "available_experiments",
    "run_experiment",
    "Report",
    "Table",
    "PAPER_GPUS",
    "PAPER_SPARSITIES",
    "SpeedupPoint",
    "figure6_sweep",
    "headline_speedups",
    "kernel_time",
    "layer_time",
    "model_speedup",
    "model_time",
    "spmm_throughput_sweep",
    "TradeoffPoint",
    "figure2_pattern_specs",
    "figure2_sweep",
]
