"""Report containers and plain-text rendering for the experiment harness.

Every experiment in :mod:`repro.eval.experiments` returns a :class:`Report`
— a titled collection of tables (rows of labelled values) — which renders to
aligned plain text for the console and to Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "Report", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> "Table":
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))
        return self

    def to_text(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
        return "\n".join(lines)


@dataclass
class Report:
    """A titled collection of tables plus free-form notes."""

    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(self, table: Table) -> "Report":
        self.tables.append(table)
        return self

    def add_note(self, note: str) -> "Report":
        self.notes.append(note)
        return self

    def to_text(self) -> str:
        parts = [f"=== {self.title} ==="]
        for table in self.tables:
            parts.append(table.to_text())
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"## {self.title}"]
        for table in self.tables:
            parts.append(table.to_markdown())
        if self.notes:
            parts.append("\n".join(f"- {note}" for note in self.notes))
        return "\n\n".join(parts)
