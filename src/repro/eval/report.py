"""Report containers and plain-text rendering for the experiment harness.

Every experiment in :mod:`repro.eval.experiments` returns a :class:`Report`
— a titled collection of tables (rows of labelled values) — which renders to
aligned plain text for the console and to Markdown for EXPERIMENTS.md.

Reports also carry machine-readable payloads: ``records`` (flat dicts, one
per sweep-runner :class:`~repro.eval.runner.RunRecord`) and ``metadata``
(structured facts such as the Figure 1 region thresholds).  :meth:`Report.
to_json` serialises everything deterministically (sorted keys, exact float
``repr``), so two runs that computed the same numbers produce byte-identical
files regardless of parallelism or caching; :meth:`Report.to_csv` emits the
records as CSV rows (falling back to the tables when a report has none).
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = ["Table", "Report", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> "Table":
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))
        return self

    def to_text(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths, strict=True))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
        return "\n".join(lines)


@dataclass
class Report:
    """A titled collection of tables plus free-form notes, structured
    metadata and flat result records."""

    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    records: list[dict] = field(default_factory=list)

    def add_table(self, table: Table) -> "Report":
        self.tables.append(table)
        return self

    def add_note(self, note: str) -> "Report":
        self.notes.append(note)
        return self

    def add_metadata(self, key: str, value) -> "Report":
        self.metadata[key] = value
        return self

    def add_records(self, records: Iterable[dict]) -> "Report":
        self.records.extend(records)
        return self

    def to_text(self) -> str:
        parts = [f"=== {self.title} ==="]
        for table in self.tables:
            parts.append(table.to_text())
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"## {self.title}"]
        for table in self.tables:
            parts.append(table.to_markdown())
        if self.notes:
            parts.append("\n".join(f"- {note}" for note in self.notes))
        return "\n\n".join(parts)

    def to_json(self, *, indent: int = 1) -> str:
        """Deterministic JSON serialisation of the full report."""
        payload = {
            "title": self.title,
            "tables": [
                {"title": t.title, "columns": t.columns, "rows": t.rows}
                for t in self.tables
            ],
            "notes": self.notes,
            "metadata": self.metadata,
            "records": self.records,
        }
        return json.dumps(payload, sort_keys=True, indent=indent)

    def to_csv(self) -> str:
        """CSV rows of the records (or of the tables for record-less
        reports, prefixed with the table title)."""
        out = io.StringIO()
        if self.records:
            fields: list[str] = []
            for record in self.records:
                for key in record:
                    if key not in fields:
                        fields.append(key)
            writer = csv.DictWriter(out, fieldnames=fields, lineterminator="\n")
            writer.writeheader()
            for record in self.records:
                writer.writerow(
                    {
                        k: json.dumps(v) if isinstance(v, (dict, list)) else v
                        for k, v in record.items()
                    }
                )
        else:
            writer = csv.writer(out, lineterminator="\n")
            for table in self.tables:
                writer.writerow(["table"] + table.columns)
                for row in table.rows:
                    writer.writerow([table.title] + row)
        return out.getvalue()
