"""Pruned-model accuracy experiments (Table 1 of the paper).

The paper reports BLEU (Transformer, GNMT) and ImageNet top-1 (ResNet50) for
block-wise, vector-wise and Shfl-BW pruning at 80 % and 90 % sparsity.  The
datasets and model scale are not reproducible offline, so the experiment runs
the same protocol on the proxy models of :mod:`repro.models`:

1. train a dense proxy on its synthetic task,
2. for every pattern configuration, prune the trained weights and fine-tune
   with the masks held fixed,
3. report the task metric per configuration.

Because the proxy layers are 8-16x narrower than the real models, the paper's
vector sizes are scaled down by ``vector_scale`` (default 4: paper V=32/64 ->
proxy V=8/16) so the *relative* granularity of the patterns is preserved.
What the experiment is expected to reproduce is the ordering — Shfl-BW >=
vector-wise >= block-wise at equal sparsity, and Shfl-BW at the larger V
competitive with vector-wise at the smaller V — not the absolute BLEU /
accuracy values of the paper.

Execution is structured like the timing sweeps: the grid expands into
hashable :class:`AccuracyCell` configs, and :func:`execute_accuracy_cell` is
a module-level pure function of its cell, so :class:`repro.eval.runner.
SweepRunner` can fan the (model, pattern, sparsity) cells over a process
pool and cache finished :class:`AccuracyRecord` results on disk (canonical-
JSON config hashes, salted like every sweep cache).  Every cell deriving
from the same (model, scale, seed) trains the identical dense proxy; the
dense run is memoised per process so a serial sweep trains it once per
model, exactly like the seed protocol did.
"""

from __future__ import annotations

import copy
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..models.gnmt import GNMTConfig, GNMTProxy
from ..models.resnet import ResNetConfig, ResNetProxy
from ..models.transformer import TransformerConfig, TransformerProxy
from ..nn.data import SyntheticClassificationTask, SyntheticTranslationTask
from ..nn.train import TrainConfig, build_masks, train_model
from ..pruning.patterns import make_pruner
from .runner import MODEL_VERSION, CellTask, SweepRunner, canonical_config_hash

__all__ = [
    "AccuracyConfig",
    "PatternSpec",
    "AccuracyResult",
    "AccuracyCell",
    "AccuracyRecord",
    "ACCURACY_CACHE_FILENAME",
    "ACCURACY_TASK",
    "accuracy_cells",
    "collate_accuracy",
    "execute_accuracy_cell",
    "run_accuracy_cells",
    "table1_pattern_specs",
    "evaluate_model_accuracy",
    "table1_records",
    "table1_sweep",
]

#: File the accuracy sweep keeps inside a runner's cache directory (its own
#: store: accuracy records and timing records have different schemas).
ACCURACY_CACHE_FILENAME = "accuracy-cache.json"


@dataclass(frozen=True)
class PatternSpec:
    """One row configuration of Table 1."""

    label: str
    pattern: str
    paper_vector_size: int | None = None

    def proxy_vector_size(self, vector_scale: int) -> int | None:
        if self.paper_vector_size is None:
            return None
        return max(4, self.paper_vector_size // vector_scale)


@dataclass(frozen=True)
class AccuracyConfig:
    """Scale of the proxy accuracy experiments.

    ``quick`` keeps runtimes in the tens of seconds for the evaluation CLI;
    the full setting trains longer for smoother numbers.  ``tiny`` shrinks
    both the tasks and the training budget to a few seconds per configuration
    and exists for the automated test/benchmark suites (the resulting metrics
    are noisy and only good for smoke-checking the protocol).
    """

    quick: bool = True
    tiny: bool = False
    vector_scale: int = 4
    seed: int = 0

    @property
    def train_config(self) -> TrainConfig:
        if self.tiny:
            return TrainConfig(epochs=2, batch_size=64, learning_rate=3.0e-3, seed=self.seed)
        if self.quick:
            return TrainConfig(epochs=6, batch_size=64, learning_rate=3.0e-3, seed=self.seed)
        return TrainConfig(epochs=16, batch_size=64, learning_rate=3.0e-3, seed=self.seed)

    @property
    def finetune_config(self) -> TrainConfig:
        if self.tiny:
            return TrainConfig(epochs=1, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)
        if self.quick:
            return TrainConfig(epochs=3, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)
        return TrainConfig(epochs=8, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)

    @property
    def resnet_train_config(self) -> TrainConfig:
        epochs = 1 if self.tiny else (4 if self.quick else 10)
        return TrainConfig(epochs=epochs, batch_size=32, learning_rate=2.0e-3, seed=self.seed)

    @property
    def resnet_finetune_config(self) -> TrainConfig:
        epochs = 1 if self.tiny else (2 if self.quick else 6)
        return TrainConfig(epochs=epochs, batch_size=32, learning_rate=1.0e-3, seed=self.seed + 1)


@dataclass
class AccuracyResult:
    """Metrics of one model across pattern configurations."""

    model: str
    metric_name: str
    dense_metric: float
    results: dict[tuple[str, float], float] = field(default_factory=dict)

    def metric(self, label: str, sparsity: float) -> float | None:
        return self.results.get((label, sparsity))


@dataclass(frozen=True)
class AccuracyCell:
    """One hashable (model, pattern, sparsity) cell of an accuracy sweep.

    ``vector_size`` is the *proxy* (already scaled-down) vector size, so the
    cache key reflects the computation actually performed.  ``quick`` /
    ``tiny`` / ``seed`` pin the training scale; two cells that differ only
    in those fields never share a cache entry.  ``label`` is the display
    name (the Table 1 row label) and is cosmetic: excluded from equality
    and from the hash, exactly like :class:`~repro.eval.runner.RunConfig`.
    """

    model: str
    pattern: str
    sparsity: float
    vector_size: int | None = None
    quick: bool = True
    tiny: bool = False
    seed: int = 0
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.pattern

    def to_dict(self) -> dict:
        """Canonical JSON-compatible form (used for hashing and export)."""
        return {
            "model": self.model,
            "pattern": self.pattern,
            "sparsity": self.sparsity,
            "vector_size": self.vector_size,
            "quick": self.quick,
            "tiny": self.tiny,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AccuracyCell":
        return cls(
            model=data["model"],
            pattern=data["pattern"],
            sparsity=data["sparsity"],
            vector_size=data.get("vector_size"),
            quick=data.get("quick", True),
            tiny=data.get("tiny", False),
            seed=data.get("seed", 0),
            label=data.get("label"),
        )

    def config_hash(self, *, salt: str = MODEL_VERSION) -> str:
        """Stable hex digest (shared keying scheme of every cell family)."""
        return canonical_config_hash(self.to_dict(), salt=salt)

    def scale_config(self) -> AccuracyConfig:
        """The training-scale knobs this cell pins."""
        return AccuracyConfig(quick=self.quick, tiny=self.tiny, seed=self.seed)


@dataclass(frozen=True)
class AccuracyRecord:
    """Result of evaluating one :class:`AccuracyCell`.

    ``status`` is ``"ok"`` (with ``metric`` set) or ``"not-applicable"``
    (``detail`` names the reason — e.g. no prunable layer fits the pattern).
    ``dense_metric`` and ``metric_name`` describe the shared dense proxy the
    cell fine-tuned from, so collation needs no extra dense cells.
    """

    config: AccuracyCell
    status: str
    metric: float | None = None
    metric_name: str | None = None
    dense_metric: float | None = None
    detail: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Flat JSON/CSV-friendly form (one row per record)."""
        return {
            **self.config.to_dict(),
            "label": self.config.display_label,
            "status": self.status,
            "metric": self.metric,
            "metric_name": self.metric_name,
            "dense_metric": self.dense_metric,
            "detail": self.detail,
        }


def table1_pattern_specs() -> list[PatternSpec]:
    """The pattern configurations of Table 1 (plus the unstructured reference
    used by Figure 2)."""
    return [
        PatternSpec("Unstructured", "unstructured"),
        PatternSpec("BW, V=32", "blockwise", 32),
        PatternSpec("VW, V=32", "vectorwise", 32),
        PatternSpec("Shfl-BW, V=32", "shflbw", 32),
        PatternSpec("Shfl-BW, V=64", "shflbw", 64),
    ]


def _build_model_and_task(model_name: str, config: AccuracyConfig):
    """Fresh proxy model + synthetic task + train/finetune configs."""
    seed = config.seed
    num_train = 256 if config.tiny else 1024
    if model_name == "transformer":
        task = SyntheticTranslationTask(seed=seed, num_train=num_train)
        model = TransformerProxy(TransformerConfig(vocab_size=task.vocab_size, seed=seed))
        return model, task, config.train_config, config.finetune_config
    if model_name == "gnmt":
        task = SyntheticTranslationTask(seed=seed, num_train=num_train)
        model = GNMTProxy(GNMTConfig(vocab_size=task.vocab_size, seed=seed))
        return model, task, config.train_config, config.finetune_config
    if model_name in ("resnet", "resnet50"):
        task = SyntheticClassificationTask(
            seed=seed, num_train=128 if config.tiny else 256, num_valid=128
        )
        model = ResNetProxy(ResNetConfig(width=32, num_blocks=1, seed=seed))
        return model, task, config.resnet_train_config, config.resnet_finetune_config
    raise ValueError(f"unknown model {model_name!r}")


def _make_cell_pruner(cell: AccuracyCell):
    v = cell.vector_size
    if cell.pattern == "unstructured":
        return make_pruner("unstructured")
    if cell.pattern == "blockwise":
        return make_pruner("blockwise", block_size=v)
    if cell.pattern == "vectorwise":
        return make_pruner("vectorwise", vector_size=v)
    if cell.pattern == "shflbw":
        return make_pruner("shflbw", vector_size=v, seed=cell.seed)
    raise ValueError(f"unsupported pattern {cell.pattern!r}")


def _buffer_state(model) -> list[tuple]:
    """Snapshot of every non-parameter module state.

    ``state_dict`` only covers parameters, but fine-tuning also mutates
    batch-norm running mean/variance and (for modules with dropout) the
    module-held random generator; without restoring those, each cell's
    evaluation would depend on which cells ran before it in the same
    process (and serial and parallel sweeps would disagree).
    """
    buffers: list[tuple] = []
    for module in model.modules():
        if hasattr(module, "running_mean") and hasattr(module, "running_var"):
            buffers.append(
                ("norm", module, module.running_mean.copy(), module.running_var.copy())
            )
        rng = getattr(module, "_rng", None)
        if isinstance(rng, np.random.Generator):
            buffers.append(("rng", module, copy.deepcopy(rng.bit_generator.state)))
    return buffers


def _restore_buffers(buffers) -> None:
    for kind, module, *state in buffers:
        if kind == "norm":
            mean, var = state
            module.running_mean = mean.copy()
            module.running_var = var.copy()
        else:
            (rng_state,) = state
            module._rng.bit_generator.state = copy.deepcopy(rng_state)


#: Per-process memo of trained dense proxies, keyed by everything the dense
#: run depends on.  Training is deterministic given the key, so workers that
#: retrain it reach bit-identical states; within a process every cell of the
#: same model reuses one dense run, like the seed protocol.
_DENSE_PROXIES: dict[tuple, tuple] = {}


def _dense_proxy(cell: AccuracyCell):
    """The trained dense proxy shared by every cell of (model, scale, seed).

    Returns ``(model, task, finetune_cfg, dense_state, buffers,
    dense_metric)``; the caller must restore both ``dense_state`` and the
    buffer snapshot before using the model, so every cell starts from the
    identical post-dense-training state regardless of execution order.
    """
    key = (cell.model, cell.quick, cell.tiny, cell.seed)
    entry = _DENSE_PROXIES.get(key)
    if entry is None:
        config = cell.scale_config()
        model, task, train_cfg, finetune_cfg = _build_model_and_task(cell.model, config)
        dense_result = train_model(model, task, train_cfg)
        entry = _DENSE_PROXIES.setdefault(
            key,
            (
                model,
                task,
                finetune_cfg,
                model.state_dict(),
                _buffer_state(model),
                dense_result.final_metric,
            ),
        )
    return entry


def execute_accuracy_cell(cell: AccuracyCell) -> AccuracyRecord:
    """Run the prune + fine-tune protocol for one cell.

    Pure function of ``cell`` (module-level, so it pickles into process-pool
    workers): the dense proxy is trained deterministically from the cell's
    scale/seed fields, pruned with the cell's pattern and fine-tuned with
    the masks held fixed.  A pattern no prunable layer can hold is data, not
    an exception — it returns a ``"not-applicable"`` record.
    """
    model, task, finetune_cfg, dense_state, buffers, dense_metric = _dense_proxy(cell)
    model.load_state_dict(dense_state)
    _restore_buffers(buffers)
    pruner = _make_cell_pruner(cell)
    # Only mask construction may legitimately declare inapplicability; an
    # error raised by the fine-tune itself is a real bug and must propagate
    # (a swallowed one would be cached as a bogus "not-applicable" record).
    try:
        masks, _ = build_masks(model, pruner, cell.sparsity)
        if not masks:
            raise ValueError(
                f"no prunable layer of {cell.model!r} fits pattern {cell.pattern!r}"
            )
    except ValueError as exc:
        model.load_state_dict(dense_state)
        _restore_buffers(buffers)
        return AccuracyRecord(
            cell,
            status="not-applicable",
            metric_name=model.metric_name,
            dense_metric=dense_metric,
            detail=str(exc),
        )
    finetuned = train_model(model, task, finetune_cfg, masks=masks)
    # Restore the dense weights so the memoised proxy stays reusable.
    model.load_state_dict(dense_state)
    _restore_buffers(buffers)
    return AccuracyRecord(
        cell,
        status="ok",
        metric=finetuned.final_metric,
        metric_name=model.metric_name,
        dense_metric=dense_metric,
    )


def _execute_accuracy_cells(cells: list[AccuracyCell]) -> list[AccuracyRecord]:
    """Serial batch executor (the :class:`CellTask` entry point)."""
    return [execute_accuracy_cell(cell) for cell in cells]


def _encode_accuracy_record(record: AccuracyRecord) -> dict:
    return {
        "config": record.config.to_dict(),
        "status": record.status,
        "metric": record.metric,
        "metric_name": record.metric_name,
        "dense_metric": record.dense_metric,
        "detail": record.detail,
    }


def _decode_accuracy_record(cell: AccuracyCell, entry: Mapping) -> AccuracyRecord | None:
    if "status" not in entry:
        return None
    return AccuracyRecord(
        config=cell,
        status=entry["status"],
        metric=entry.get("metric"),
        metric_name=entry.get("metric_name"),
        dense_metric=entry.get("dense_metric"),
        detail=entry.get("detail"),
    )


#: The accuracy protocol as a sweep-runner cell family.  Contiguous
#: chunking keeps each worker's cells on as few models as possible, so the
#: per-process dense-proxy memo retrains each model's (expensive) dense run
#: once per boundary rather than once per worker per model.
ACCURACY_TASK = CellTask(
    name="accuracy",
    execute=_execute_accuracy_cells,
    cache_filename=ACCURACY_CACHE_FILENAME,
    encode=_encode_accuracy_record,
    decode=_decode_accuracy_record,
    chunking="contiguous",
)


def accuracy_cells(
    models: tuple[str, ...],
    sparsities: tuple[float, ...],
    specs: list[PatternSpec],
    config: AccuracyConfig,
) -> list[AccuracyCell]:
    """Expand a Table 1 grid into cells, model-major, in deterministic order."""
    return [
        AccuracyCell(
            model=model,
            pattern=spec.pattern,
            sparsity=sparsity,
            vector_size=spec.proxy_vector_size(config.vector_scale),
            quick=config.quick,
            tiny=config.tiny,
            seed=config.seed,
            label=spec.label,
        )
        for model in models
        for spec in specs
        for sparsity in sparsities
    ]


def collate_accuracy(records: list[AccuracyRecord]) -> dict[str, AccuracyResult]:
    """Fold records back into per-model :class:`AccuracyResult` tables.

    Not-applicable cells are simply absent from the results dict (their
    metric reads as ``None``), mirroring the bars missing from the paper's
    tables.
    """
    out: dict[str, AccuracyResult] = {}
    for record in records:
        model = record.config.model
        result = out.get(model)
        if result is None:
            result = out.setdefault(
                model,
                AccuracyResult(
                    model=model,
                    metric_name=record.metric_name or "",
                    dense_metric=record.dense_metric or 0.0,
                ),
            )
        if record.ok and record.metric is not None:
            result.results[(record.config.display_label, record.config.sparsity)] = (
                record.metric
            )
    return out


def run_accuracy_cells(
    cells: list[AccuracyCell], *, runner: SweepRunner | None = None
) -> list[AccuracyRecord]:
    """Evaluate cells through a sweep runner (parallelism + caching)."""
    runner = runner if runner is not None else SweepRunner()
    return runner.run_cells(cells, ACCURACY_TASK).records


def evaluate_model_accuracy(
    model_name: str,
    sparsities: tuple[float, ...] = (0.80, 0.90),
    specs: list[PatternSpec] | None = None,
    config: AccuracyConfig | None = None,
    *,
    runner: SweepRunner | None = None,
) -> AccuracyResult:
    """Run the Table 1 protocol for one model.

    The dense proxy is trained once (per process) and every (pattern,
    sparsity) cell prunes + fine-tunes a copy of it; ``runner`` adds
    process-pool parallelism and persistent caching across the cells.
    """
    config = config or AccuracyConfig()
    specs = specs if specs is not None else table1_pattern_specs()
    cells = accuracy_cells((model_name,), sparsities, specs, config)
    records = run_accuracy_cells(cells, runner=runner)
    return collate_accuracy(records)[model_name]


def table1_records(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    sparsities: tuple[float, ...] = (0.80, 0.90),
    config: AccuracyConfig | None = None,
    specs: list[PatternSpec] | None = None,
    *,
    runner: SweepRunner | None = None,
) -> list[AccuracyRecord]:
    """The Table 1 grid as raw records, in grid order.

    The single place the Table 1 defaults live (the paper's three models,
    80/90 % sparsity, the pattern line-up minus the unstructured reference
    Figure 2 adds): both :func:`table1_sweep` and the ``table1`` experiment
    expand and execute through here.
    """
    config = config or AccuracyConfig()
    if specs is None:
        specs = [s for s in table1_pattern_specs() if s.label != "Unstructured"]
    cells = accuracy_cells(tuple(models), tuple(sparsities), specs, config)
    return run_accuracy_cells(cells, runner=runner)


def table1_sweep(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    sparsities: tuple[float, ...] = (0.80, 0.90),
    config: AccuracyConfig | None = None,
    specs: list[PatternSpec] | None = None,
    *,
    runner: SweepRunner | None = None,
) -> dict[str, AccuracyResult]:
    """Table 1: every model x pattern x sparsity configuration.

    The grid expands into :class:`AccuracyCell` cells executed through the
    sweep runner: ``SweepRunner(jobs=N)`` fans the cells over a process
    pool, ``cache_dir`` persists finished records so a re-run only computes
    the delta — exactly like the Figure 1/6 timing sweeps.
    """
    records = table1_records(models, sparsities, config, specs, runner=runner)
    collated = collate_accuracy(records)
    # Preserve the requested model order (collation is record-ordered).
    return {model: collated[model] for model in models if model in collated}
