"""Pruned-model accuracy experiments (Table 1 of the paper).

The paper reports BLEU (Transformer, GNMT) and ImageNet top-1 (ResNet50) for
block-wise, vector-wise and Shfl-BW pruning at 80 % and 90 % sparsity.  The
datasets and model scale are not reproducible offline, so the experiment runs
the same protocol on the proxy models of :mod:`repro.models`:

1. train a dense proxy on its synthetic task,
2. for every pattern configuration, prune the trained weights and fine-tune
   with the masks held fixed,
3. report the task metric per configuration.

Because the proxy layers are 8-16x narrower than the real models, the paper's
vector sizes are scaled down by ``vector_scale`` (default 4: paper V=32/64 ->
proxy V=8/16) so the *relative* granularity of the patterns is preserved.
What the experiment is expected to reproduce is the ordering — Shfl-BW >=
vector-wise >= block-wise at equal sparsity, and Shfl-BW at the larger V
competitive with vector-wise at the smaller V — not the absolute BLEU /
accuracy values of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..models.gnmt import GNMTConfig, GNMTProxy
from ..models.resnet import ResNetConfig, ResNetProxy
from ..models.transformer import TransformerConfig, TransformerProxy
from ..nn.data import SyntheticClassificationTask, SyntheticTranslationTask
from ..nn.train import TrainConfig, build_masks, train_model
from ..pruning.patterns import make_pruner

__all__ = [
    "AccuracyConfig",
    "PatternSpec",
    "AccuracyResult",
    "table1_pattern_specs",
    "evaluate_model_accuracy",
    "table1_sweep",
]


@dataclass(frozen=True)
class PatternSpec:
    """One row configuration of Table 1."""

    label: str
    pattern: str
    paper_vector_size: int | None = None

    def proxy_vector_size(self, vector_scale: int) -> int | None:
        if self.paper_vector_size is None:
            return None
        return max(4, self.paper_vector_size // vector_scale)


@dataclass(frozen=True)
class AccuracyConfig:
    """Scale of the proxy accuracy experiments.

    ``quick`` keeps runtimes in the tens of seconds for the evaluation CLI;
    the full setting trains longer for smoother numbers.  ``tiny`` shrinks
    both the tasks and the training budget to a few seconds per configuration
    and exists for the automated test/benchmark suites (the resulting metrics
    are noisy and only good for smoke-checking the protocol).
    """

    quick: bool = True
    tiny: bool = False
    vector_scale: int = 4
    seed: int = 0

    @property
    def train_config(self) -> TrainConfig:
        if self.tiny:
            return TrainConfig(epochs=2, batch_size=64, learning_rate=3.0e-3, seed=self.seed)
        if self.quick:
            return TrainConfig(epochs=6, batch_size=64, learning_rate=3.0e-3, seed=self.seed)
        return TrainConfig(epochs=16, batch_size=64, learning_rate=3.0e-3, seed=self.seed)

    @property
    def finetune_config(self) -> TrainConfig:
        if self.tiny:
            return TrainConfig(epochs=1, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)
        if self.quick:
            return TrainConfig(epochs=3, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)
        return TrainConfig(epochs=8, batch_size=64, learning_rate=1.5e-3, seed=self.seed + 1)

    @property
    def resnet_train_config(self) -> TrainConfig:
        epochs = 1 if self.tiny else (4 if self.quick else 10)
        return TrainConfig(epochs=epochs, batch_size=32, learning_rate=2.0e-3, seed=self.seed)

    @property
    def resnet_finetune_config(self) -> TrainConfig:
        epochs = 1 if self.tiny else (2 if self.quick else 6)
        return TrainConfig(epochs=epochs, batch_size=32, learning_rate=1.0e-3, seed=self.seed + 1)


@dataclass
class AccuracyResult:
    """Metrics of one model across pattern configurations."""

    model: str
    metric_name: str
    dense_metric: float
    results: dict[tuple[str, float], float] = field(default_factory=dict)

    def metric(self, label: str, sparsity: float) -> float | None:
        return self.results.get((label, sparsity))


def table1_pattern_specs() -> list[PatternSpec]:
    """The pattern configurations of Table 1 (plus the unstructured reference
    used by Figure 2)."""
    return [
        PatternSpec("Unstructured", "unstructured"),
        PatternSpec("BW, V=32", "blockwise", 32),
        PatternSpec("VW, V=32", "vectorwise", 32),
        PatternSpec("Shfl-BW, V=32", "shflbw", 32),
        PatternSpec("Shfl-BW, V=64", "shflbw", 64),
    ]


def _build_model_and_task(model_name: str, config: AccuracyConfig):
    """Fresh proxy model + synthetic task + train/finetune configs."""
    seed = config.seed
    num_train = 256 if config.tiny else 1024
    if model_name == "transformer":
        task = SyntheticTranslationTask(seed=seed, num_train=num_train)
        model = TransformerProxy(TransformerConfig(vocab_size=task.vocab_size, seed=seed))
        return model, task, config.train_config, config.finetune_config
    if model_name == "gnmt":
        task = SyntheticTranslationTask(seed=seed, num_train=num_train)
        model = GNMTProxy(GNMTConfig(vocab_size=task.vocab_size, seed=seed))
        return model, task, config.train_config, config.finetune_config
    if model_name in ("resnet", "resnet50"):
        task = SyntheticClassificationTask(
            seed=seed, num_train=128 if config.tiny else 256, num_valid=128
        )
        model = ResNetProxy(ResNetConfig(width=32, num_blocks=1, seed=seed))
        return model, task, config.resnet_train_config, config.resnet_finetune_config
    raise ValueError(f"unknown model {model_name!r}")


def _make_pruner_for(spec: PatternSpec, config: AccuracyConfig, seed: int):
    v = spec.proxy_vector_size(config.vector_scale)
    if spec.pattern == "unstructured":
        return make_pruner("unstructured")
    if spec.pattern == "blockwise":
        return make_pruner("blockwise", block_size=v)
    if spec.pattern == "vectorwise":
        return make_pruner("vectorwise", vector_size=v)
    if spec.pattern == "shflbw":
        return make_pruner("shflbw", vector_size=v, seed=seed)
    raise ValueError(f"unsupported pattern {spec.pattern!r}")


def evaluate_model_accuracy(
    model_name: str,
    sparsities: tuple[float, ...] = (0.80, 0.90),
    specs: list[PatternSpec] | None = None,
    config: AccuracyConfig | None = None,
) -> AccuracyResult:
    """Run the Table 1 protocol for one model.

    Trains a dense proxy once, then prunes + fine-tunes a copy per
    (pattern, sparsity) configuration.
    """
    config = config or AccuracyConfig()
    specs = specs if specs is not None else table1_pattern_specs()

    model, task, train_cfg, finetune_cfg = _build_model_and_task(model_name, config)
    dense_result = train_model(model, task, train_cfg)
    dense_state = model.state_dict()

    out = AccuracyResult(
        model=model_name,
        metric_name=model.metric_name,
        dense_metric=dense_result.final_metric,
    )
    for spec in specs:
        for sparsity in sparsities:
            model.load_state_dict(dense_state)
            pruner = _make_pruner_for(spec, config, seed=config.seed)
            masks, _ = build_masks(model, pruner, sparsity)
            finetuned = train_model(model, task, finetune_cfg, masks=masks)
            out.results[(spec.label, sparsity)] = finetuned.final_metric
    # Restore the dense weights so callers can keep using the model.
    model.load_state_dict(dense_state)
    return out


def table1_sweep(
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    sparsities: tuple[float, ...] = (0.80, 0.90),
    config: AccuracyConfig | None = None,
    specs: list[PatternSpec] | None = None,
) -> dict[str, AccuracyResult]:
    """Table 1: every model x pattern x sparsity configuration."""
    config = config or AccuracyConfig()
    specs = specs if specs is not None else [s for s in table1_pattern_specs() if s.label != "Unstructured"]
    return {
        model: evaluate_model_accuracy(model, sparsities, specs, config) for model in models
    }
