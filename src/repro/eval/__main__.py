"""Command-line entry point: ``python -m repro.eval <experiment> [options]``.

Examples
--------
Regenerate the Figure 6 speedup tables::

    python -m repro.eval figure6

Run the Table 1 accuracy protocol at full scale (slower)::

    python -m repro.eval table1 --full

List the available experiments::

    python -m repro.eval --list
"""

from __future__ import annotations

import argparse
import sys

from .experiments import available_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(available_experiments())})",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--full",
        action="store_true",
        help="run accuracy experiments at full scale (slower, smoother numbers)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of plain text"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("Available experiments:")
        for name in available_experiments():
            print(f"  {name}")
        return 0

    kwargs = {}
    if args.experiment in ("table1", "figure2"):
        kwargs["quick"] = not args.full
    report = run_experiment(args.experiment, **kwargs)
    print(report.to_markdown() if args.markdown else report.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
