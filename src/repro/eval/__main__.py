"""Command-line entry point: ``python -m repro.eval <experiment> [options]``.

Examples
--------
Regenerate the Figure 6 speedup tables::

    python -m repro.eval figure6

Fan the sweep out over 4 worker processes and export the structured records::

    python -m repro.eval figure6 --jobs 4 --json figure6.json --csv figure6.csv

Re-run against a persistent result cache (only the delta is computed; the
hit rate is reported after the tables)::

    python -m repro.eval figure6 --cache-dir .sweep-cache

Autotune per-layer kernel plans and compare them against the best
single-kernel baseline, with a persistent plan cache::

    python -m repro.eval autotune --plan-dir .plan-cache

Run the Table 1 accuracy protocol at full scale (slower)::

    python -m repro.eval table1 --full

Inspect and maintain a cache directory (the content-addressed blob stores
and their legacy single-file ancestors)::

    python -m repro.eval cache stats --cache-dir .sweep-cache
    python -m repro.eval cache migrate --cache-dir .sweep-cache
    python -m repro.eval cache gc --cache-dir .sweep-cache --keep-salt timing-v2

List the available experiments::

    python -m repro.eval --list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..tune import Autotuner, MeasuredRefiner
from .experiments import (
    ACCURACY_EXPERIMENTS,
    RUNNER_EXPERIMENTS,
    TUNABLE_EXPERIMENTS,
    available_experiments,
    resolve_experiment,
    run_experiment,
)
from .runner import SweepRunner


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        # Cache maintenance is its own CLI surface (stats / gc / migrate),
        # routed before the experiment parser so its subcommand flags never
        # collide with experiment options.
        from .runner import MODEL_VERSION
        from .store import cache_main

        return cache_main(argv[1:], default_salt=MODEL_VERSION)
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures on the simulated substrate.",
        epilog=(
            "Cache maintenance: python -m repro.eval cache {stats,gc,migrate} "
            "--cache-dir PATH"
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(available_experiments())})",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--full",
        action="store_true",
        help="run accuracy experiments at full scale (slower, smoother numbers)",
    )
    scale.add_argument(
        "--tiny",
        action="store_true",
        help=(
            "run accuracy experiments at smoke scale (seconds per cell, noisy "
            "metrics; for CI and cache demonstrations)"
        ),
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of plain text"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep experiments (default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result cache directory for sweep experiments",
    )
    parser.add_argument(
        "--tune",
        action="store_true",
        help=(
            "run the autotuner alongside the experiment: figure6/headline gain "
            "an 'Autotuned plan' entry (autotune always tunes)"
        ),
    )
    parser.add_argument(
        "--plan-dir",
        default=None,
        metavar="PATH",
        help="persistent tuning-plan cache directory (implies --tune)",
    )
    parser.add_argument(
        "--measured",
        action="store_true",
        help=(
            "refine the analytical plan by measured functional runs "
            "(machine-dependent; implies --tune)"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="OUT",
        help="also write the report (tables, notes, metadata, records) as JSON",
    )
    parser.add_argument(
        "--csv",
        dest="csv_out",
        default=None,
        metavar="OUT",
        help="also write the report's records as CSV",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("Available experiments:")
        for name in available_experiments():
            print(f"  {name}")
        return 0

    try:
        experiment = resolve_experiment(args.experiment)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    kwargs = {}
    if experiment in ACCURACY_EXPERIMENTS:
        kwargs["quick"] = not args.full
        kwargs["tiny"] = args.tiny
    elif experiment == "pattern-search":
        kwargs["quick"] = not args.full
        if args.tiny:
            print(
                "note: pattern-search has no tiny scale (--full raises its "
                "Lloyd iteration budget); --tiny ignored",
                file=sys.stderr,
            )
    elif args.full or args.tiny:
        print(
            f"note: --full/--tiny only apply to the accuracy and "
            f"pattern-search experiments "
            f"({', '.join(sorted(ACCURACY_EXPERIMENTS | {'pattern-search'}))}); "
            f"ignored for {experiment!r}",
            file=sys.stderr,
        )
    runner = None
    if experiment in RUNNER_EXPERIMENTS:
        runner = SweepRunner(jobs=args.jobs, cache_dir=args.cache_dir)
        kwargs["runner"] = runner
    elif args.jobs is not None or args.cache_dir is not None:
        print(
            f"note: --jobs/--cache-dir only apply to sweep experiments "
            f"({', '.join(sorted(RUNNER_EXPERIMENTS))}); ignored for {experiment!r}",
            file=sys.stderr,
        )

    tune = args.tune or args.plan_dir is not None or args.measured
    tuner = None
    if experiment == "autotune" or (tune and experiment in TUNABLE_EXPERIMENTS):
        tuner = Autotuner(
            cache_dir=args.plan_dir,
            refiner=MeasuredRefiner() if args.measured else None,
        )
        kwargs["tuner"] = tuner
    elif tune:
        print(
            f"note: --tune/--plan-dir/--measured only apply to tunable "
            f"experiments ({', '.join(sorted(TUNABLE_EXPERIMENTS))}); "
            f"ignored for {experiment!r}",
            file=sys.stderr,
        )

    report = run_experiment(experiment, **kwargs)
    print(report.to_markdown() if args.markdown else report.to_text())
    if args.json_out:
        Path(args.json_out).write_text(report.to_json(), encoding="utf-8")
        print(f"wrote JSON report to {args.json_out}")
    if args.csv_out:
        Path(args.csv_out).write_text(report.to_csv(), encoding="utf-8")
        print(f"wrote CSV records to {args.csv_out}")
    if runner is not None and args.cache_dir is not None:
        stats = runner.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate) in {args.cache_dir}"
        )
    if tuner is not None and args.plan_dir is not None:
        stats = tuner.stats
        print(
            f"plan cache: {stats.hits} hits, {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate) in {args.plan_dir}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
