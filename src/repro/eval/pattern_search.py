"""Shfl-BW pattern search on the paper's real layer shapes (Section 5).

The accuracy experiments run the search on scaled-down proxy layers; this
experiment runs :func:`repro.core.pruning.search_shflbw_pattern` on the
*actual* GNMT / Transformer / ResNet50 weight shapes of
:mod:`repro.models.shapes` — up to the 32000 x 1024 GNMT projection — and
reports the fraction of total importance each vector size retains at each
sparsity.  That is the quantity the pattern trades against kernel speedup
(larger V -> faster kernels, lower retained importance), and evaluating it
at real scale is feasible only with the vectorized search engine: the seed
implementation walks ``n * k`` sorted distance pairs per Lloyd step in a
Python loop and materialises ``(n, k, K)`` distance intermediates.

Importance scores are synthetic but deterministic: magnitude-like
``|N(0, 1)|`` draws seeded per (model, layer, seed), standing in for the
absolute trained weights the paper prunes (offline training at these shapes
is not reproducible; the *relative* retained-importance ordering across V
and sparsity is what the experiment surfaces).

Execution mirrors the other sweeps: the grid expands into hashable
:class:`PatternSearchCell` configs, :func:`execute_pattern_search_cell` is a
module-level pure function, and :class:`~repro.eval.runner.SweepRunner` adds
process-pool parallelism across cells plus a persistent per-task cache.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..core.pruning import search_shflbw_pattern
from ..models.shapes import MODEL_NAMES, model_layers
from .runner import MODEL_VERSION, CellTask, SweepRunner, canonical_config_hash

__all__ = [
    "PatternSearchCell",
    "PatternSearchRecord",
    "PATTERN_SEARCH_CACHE_FILENAME",
    "PATTERN_SEARCH_TASK",
    "PAPER_VECTOR_SIZES",
    "layer_scores",
    "pattern_search_cells",
    "execute_pattern_search_cell",
    "collate_pattern_search",
    "pattern_search_sweep",
]

#: File the pattern-search sweep keeps inside a runner's cache directory.
PATTERN_SEARCH_CACHE_FILENAME = "pattern-search-cache.json"

#: The vector sizes the paper evaluates (Figure 2 adds V=128).
PAPER_VECTOR_SIZES = (32, 64, 128)


@dataclass(frozen=True)
class PatternSearchCell:
    """One hashable (model, layer, V, sparsity) cell of a pattern search."""

    model: str
    layer: str
    vector_size: int
    sparsity: float
    beta_factor: float = 2.0
    kmeans_iters: int = 4
    seed: int = 0
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")

    @property
    def density(self) -> float:
        return 1.0 - self.sparsity

    def to_dict(self) -> dict:
        """Canonical JSON-compatible form (used for hashing and export)."""
        return {
            "model": self.model,
            "layer": self.layer,
            "vector_size": self.vector_size,
            "sparsity": self.sparsity,
            "beta_factor": self.beta_factor,
            "kmeans_iters": self.kmeans_iters,
            "seed": self.seed,
        }

    def config_hash(self, *, salt: str = MODEL_VERSION) -> str:
        """Stable hex digest (shared keying scheme of every cell family)."""
        return canonical_config_hash(self.to_dict(), salt=salt)


@dataclass(frozen=True)
class PatternSearchRecord:
    """Result of one pattern-search cell.

    ``status`` is ``"ok"`` or ``"not-applicable"`` (a layer whose row count
    is not divisible by V cannot hold the pattern — e.g. the 64-channel
    ResNet convolutions at V=128).  ``retained_score`` / ``total_score``
    carry the raw sums so collation can weight layers exactly;
    ``layer_count`` is the layer's multiplicity in the model.
    """

    config: PatternSearchCell
    status: str
    retained_score: float | None = None
    total_score: float | None = None
    density: float | None = None
    layer_count: int = 1
    detail: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retained_fraction(self) -> float | None:
        if not self.ok or not self.total_score:
            return None
        return self.retained_score / self.total_score

    def to_dict(self) -> dict:
        """Flat JSON/CSV-friendly form (one row per record)."""
        return {
            **self.config.to_dict(),
            "status": self.status,
            "retained_score": self.retained_score,
            "total_score": self.total_score,
            "retained_fraction": self.retained_fraction,
            "density": self.density,
            "layer_count": self.layer_count,
            "detail": self.detail,
        }


def layer_scores(model: str, layer: str, m: int, k: int, seed: int) -> np.ndarray:
    """Deterministic synthetic importance scores for one layer.

    Magnitude-like ``|N(0, 1)|`` draws; the generator is seeded from a
    stable digest of (model, layer, seed) so every process and platform
    draws the identical matrix.
    """
    digest = hashlib.blake2b(
        f"pattern-search/{model}/{layer}/{seed}".encode("utf-8"), digest_size=8
    ).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "little"))
    return np.abs(rng.standard_normal((m, k)))


_LAYER_CACHE: dict[str, dict[str, object]] = {}


def _find_layer(model: str, layer: str):
    layers = _LAYER_CACHE.get(model)
    if layers is None:
        layers = _LAYER_CACHE.setdefault(
            model, {shape.name: shape for shape in model_layers(model)}
        )
    if layer not in layers:
        raise ValueError(f"model {model!r} has no layer {layer!r}")
    return layers[layer]


def execute_pattern_search_cell(cell: PatternSearchCell) -> PatternSearchRecord:
    """Run the two-stage search for one cell on its real layer shape.

    Pure function of ``cell`` (module-level, so it pickles into process-pool
    workers).  Unknown models/layers raise — the *grid* is wrong; a layer
    shape that cannot hold the pattern returns ``"not-applicable"``.
    """
    shape = _find_layer(cell.model, cell.layer)
    m, k = shape.gemm.m, shape.gemm.k
    if m % cell.vector_size:
        return PatternSearchRecord(
            cell,
            status="not-applicable",
            layer_count=shape.count,
            detail=f"M={m} is not divisible by V={cell.vector_size}",
        )
    scores = layer_scores(cell.model, cell.layer, m, k, cell.seed)
    result = search_shflbw_pattern(
        scores,
        density=cell.density,
        vector_size=cell.vector_size,
        beta_factor=cell.beta_factor,
        kmeans_iters=cell.kmeans_iters,
        seed=cell.seed,
    )
    return PatternSearchRecord(
        cell,
        status="ok",
        retained_score=result.retained_score,
        total_score=result.total_score,
        density=result.density,
        layer_count=shape.count,
    )


def _execute_pattern_search_cells(
    cells: list[PatternSearchCell],
) -> list[PatternSearchRecord]:
    """Serial batch executor (the :class:`CellTask` entry point)."""
    return [execute_pattern_search_cell(cell) for cell in cells]


def _encode_pattern_search_record(record: PatternSearchRecord) -> dict:
    return {
        "config": record.config.to_dict(),
        "status": record.status,
        "retained_score": record.retained_score,
        "total_score": record.total_score,
        "density": record.density,
        "layer_count": record.layer_count,
        "detail": record.detail,
    }


def _decode_pattern_search_record(
    cell: PatternSearchCell, entry: Mapping
) -> PatternSearchRecord | None:
    if "status" not in entry:
        return None
    return PatternSearchRecord(
        config=cell,
        status=entry["status"],
        retained_score=entry.get("retained_score"),
        total_score=entry.get("total_score"),
        density=entry.get("density"),
        layer_count=entry.get("layer_count", 1),
        detail=entry.get("detail"),
    )


#: The pattern search as a sweep-runner cell family.
PATTERN_SEARCH_TASK = CellTask(
    name="pattern-search",
    execute=_execute_pattern_search_cells,
    cache_filename=PATTERN_SEARCH_CACHE_FILENAME,
    encode=_encode_pattern_search_record,
    decode=_decode_pattern_search_record,
)


def pattern_search_cells(
    models: tuple[str, ...] = MODEL_NAMES,
    vector_sizes: tuple[int, ...] = PAPER_VECTOR_SIZES,
    sparsities: tuple[float, ...] = (0.80, 0.90),
    *,
    kmeans_iters: int = 4,
    beta_factor: float = 2.0,
    seed: int = 0,
) -> list[PatternSearchCell]:
    """Expand the grid: one cell per (model, layer, V, sparsity)."""
    cells: list[PatternSearchCell] = []
    for model in models:
        for shape in model_layers(model):
            for vector_size in vector_sizes:
                for sparsity in sparsities:
                    cells.append(
                        PatternSearchCell(
                            model=model,
                            layer=shape.name,
                            vector_size=vector_size,
                            sparsity=sparsity,
                            beta_factor=beta_factor,
                            kmeans_iters=kmeans_iters,
                            seed=seed,
                        )
                    )
    return cells


def collate_pattern_search(
    records: list[PatternSearchRecord],
) -> dict[tuple[str, int], dict[float, float | None]]:
    """Per-(model, V) retained-importance fraction by sparsity.

    Layers are weighted by their raw score sums times their multiplicity in
    the model, so the fraction is exactly "importance kept / importance
    present" over the whole model.  A (model, V, sparsity) point where *no*
    layer can hold the pattern reads as ``None``.
    """
    retained: dict[tuple[str, int, float], float] = {}
    totals: dict[tuple[str, int, float], float] = {}
    seen: dict[tuple[str, int], set[float]] = {}
    for record in records:
        cell = record.config
        group = (cell.model, cell.vector_size)
        seen.setdefault(group, set()).add(cell.sparsity)
        if not record.ok:
            continue
        key = (cell.model, cell.vector_size, cell.sparsity)
        retained[key] = retained.get(key, 0.0) + record.retained_score * record.layer_count
        totals[key] = totals.get(key, 0.0) + record.total_score * record.layer_count
    out: dict[tuple[str, int], dict[float, float | None]] = {}
    for group, sparsities in seen.items():
        model, vector_size = group
        out[group] = {
            sparsity: (
                retained[(model, vector_size, sparsity)]
                / totals[(model, vector_size, sparsity)]
                if totals.get((model, vector_size, sparsity))
                else None
            )
            for sparsity in sorted(sparsities)
        }
    return out


def pattern_search_sweep(
    models: tuple[str, ...] = MODEL_NAMES,
    vector_sizes: tuple[int, ...] = PAPER_VECTOR_SIZES,
    sparsities: tuple[float, ...] = (0.80, 0.90),
    *,
    kmeans_iters: int = 4,
    beta_factor: float = 2.0,
    seed: int = 0,
    runner: SweepRunner | None = None,
) -> list[PatternSearchRecord]:
    """Run the whole grid through the sweep runner; records in grid order."""
    cells = pattern_search_cells(
        tuple(models),
        tuple(vector_sizes),
        tuple(sparsities),
        kmeans_iters=kmeans_iters,
        beta_factor=beta_factor,
        seed=seed,
    )
    runner = runner if runner is not None else SweepRunner()
    return runner.run_cells(cells, PATTERN_SEARCH_TASK).records
