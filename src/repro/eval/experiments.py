"""Experiment registry: one entry per table / figure of the paper.

Each experiment returns a :class:`repro.eval.report.Report`; the command-line
entry point (``python -m repro.eval <experiment>``) prints it, and the
benchmark harness in ``benchmarks/`` asserts on the underlying numbers.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.analysis import compare_patterns, log_row_shuffle_multiplier
from ..gpu.arch import get_gpu
from .accuracy import AccuracyConfig, collate_accuracy, table1_records
from .pattern_search import (
    PAPER_VECTOR_SIZES,
    collate_pattern_search,
    pattern_search_sweep,
)
from .report import Report, Table
from .runner import SweepRunner
from .speedup import (
    FIGURE1_DENSITIES,
    PAPER_GPUS,
    collate_figure1,
    collate_figure6,
    collate_headline,
    figure1_spec,
    figure6_spec,
    headline_spec,
)
from .tradeoff import figure2_sweep

__all__ = [
    "available_experiments",
    "resolve_experiment",
    "run_experiment",
    "RUNNER_EXPERIMENTS",
    "ACCURACY_EXPERIMENTS",
    "TUNABLE_EXPERIMENTS",
]

#: Experiments that run on the sweep runner and accept the ``runner``,
#: ``--jobs`` and ``--cache-dir`` machinery.
RUNNER_EXPERIMENTS = frozenset(
    {
        "figure1",
        "figure6",
        "headline",
        "autotune",
        "table1",
        "figure2",
        "pattern-search",
    }
)

#: Accuracy-protocol experiments that additionally understand ``--full`` /
#: ``--tiny`` training scales.
ACCURACY_EXPERIMENTS = frozenset({"table1", "figure2"})

#: Experiments that understand the autotuner (``--tune`` / ``--plan-dir``).
TUNABLE_EXPERIMENTS = frozenset({"figure6", "headline", "autotune"})

#: Paper-claimed sparsity thresholds of the Figure 1 regions.
FIGURE1_PAPER_REGIONS = {"A": 0.65, "B": 0.95, "C": 0.90}


def figure1_regions(
    curves: dict[str, dict[float, float]]
) -> dict[str, dict[str, object]]:
    """Structured Figure 1 region boundaries from the swept curves.

    Each region reports the lowest swept sparsity at which its comparison
    flips (or ``None`` when the sweep never reaches it) next to the paper's
    claimed threshold.
    """
    densities = sorted(next(iter(curves.values())).keys())
    sparse_cc = curves["Cuda-Core Sparse"]
    sparse_tc = curves["Tensor-Core Sparse (Ours)"]
    dense_tc = curves["Tensor-Core"]
    comparisons = {
        "A": (
            "CUDA-core sparse beats CUDA-core dense",
            [1 - d for d in densities if sparse_cc[d] >= 1.0],
        ),
        "B": (
            "CUDA-core sparse beats tensor-core dense",
            [1 - d for d in densities if sparse_cc[d] >= dense_tc[d]],
        ),
        "C": (
            "tensor-core sparse (ours) beats tensor-core dense",
            [1 - d for d in densities if sparse_tc[d] >= dense_tc[d]],
        ),
    }
    return {
        name: {
            "description": description,
            "threshold_sparsity": min(reached) if reached else None,
            "paper_threshold_sparsity": FIGURE1_PAPER_REGIONS[name],
        }
        for name, (description, reached) in comparisons.items()
    }


def run_figure1(
    *, runner: SweepRunner | None = None, densities=FIGURE1_DENSITIES, **kwargs
) -> Report:
    """Figure 1: SpMM throughput vs density, normalised to CUDA-core dense."""
    spec = figure1_spec(densities=tuple(densities), **kwargs)
    result = (runner or SweepRunner()).run(spec)
    curves = collate_figure1(result, tuple(densities))
    densities = sorted(next(iter(curves.values())).keys())
    report = Report("Figure 1 - SpMM throughput vs density (GEMM 2048/128/2048, V100)")
    table = Table(
        "Throughput normalised to CUDA-core dense GEMM",
        ["density"] + list(curves.keys()),
    )
    for density in densities:
        table.add_row(density, *[curves[name][density] for name in curves])
    report.add_table(table)

    regions = figure1_regions(curves)
    for name, region in regions.items():
        threshold = region["threshold_sparsity"]
        report.add_note(
            f"Region {name} ({region['description']}) starts at "
            f"~{threshold:.0%} sparsity"
            if threshold is not None
            else f"Region {name} not reached in sweep"
        )
    report.add_note("Paper: region A ~65%, region B ~95%, region C well below 90%.")
    report.add_metadata("regions", regions)
    report.add_metadata(
        "paper_comparison",
        "Paper thresholds: region A ~65%, region B ~95%, region C well below 90%.",
    )
    report.add_records(result.record_dicts())
    return report


def run_figure2(
    *,
    quick: bool = True,
    tiny: bool = False,
    runner: SweepRunner | None = None,
    **kwargs,
) -> Report:
    """Figure 2: accuracy-speedup trade-off for GNMT on V100.

    The accuracy cells run through ``runner`` (``--jobs`` parallelism and a
    persistent ``--cache-dir`` record cache), like the timing sweeps.
    """
    points = figure2_sweep(
        config=AccuracyConfig(quick=quick, tiny=tiny), runner=runner, **kwargs
    )
    report = Report("Figure 2 - GNMT accuracy vs speedup trade-off (V100)")
    table = Table(
        "Accuracy (proxy BLEU) and kernel speedup over tensor-core dense",
        ["pattern", "sparsity", "BLEU (proxy)", "speedup"],
    )
    for point in sorted(points, key=lambda p: (p.sparsity, p.label)):
        table.add_row(point.label, point.sparsity, point.accuracy, point.speedup)
    report.add_table(table)
    report.add_note(
        "Paper claims to check: unstructured stays below 1x speedup; Shfl-BW "
        "achieves real speedup with small BLEU loss and dominates vector-wise; "
        "larger V gains speedup at a small accuracy cost."
    )
    return report


def run_figure6(*, runner: SweepRunner | None = None, tuner=None, **kwargs) -> Report:
    """Figure 6: speedup over dense for 3 models x 3 GPUs x 4 sparsities.

    ``tuner`` (a :class:`repro.tune.Autotuner`) appends an "Autotuned plan"
    row to every (model, GPU) table: the whole-model speedup when each layer
    runs its tuned per-layer kernel instead of one kernel everywhere.
    """
    spec = figure6_spec(**kwargs)
    result = (runner or SweepRunner()).run(spec)
    results = collate_figure6(result)
    lookup = result.by_config()
    report = Report("Figure 6 - Speedup over the dense tensor-core baseline")
    sparsities = spec.sparsities
    for (model, gpu), per_kernel in results.items():
        table = Table(
            f"{model} on {gpu}",
            ["kernel"] + [f"{s:.0%}" for s in sparsities],
        )
        for label, by_sparsity in per_kernel.items():
            table.add_row(label, *[by_sparsity.get(s) for s in sparsities])
        if tuner is not None:
            dense_time = lookup[spec.dense_config(model, gpu)].time_s
            table.add_row(
                "Autotuned plan",
                *[
                    dense_time / tuner.plan(model, gpu, s).total_time_s
                    for s in sparsities
                ],
            )
        report.add_table(table)
    report.add_note("Missing entries (-) are configurations the kernel cannot run, as in the paper.")
    if tuner is not None:
        report.add_note(
            "The 'Autotuned plan' row runs each layer on its tuned per-layer "
            "kernel (repro.tune); "
            + (
                "it is never below the best single-kernel row."
                if tuner.mode == "model"
                else "measured-refined plans may trade modelled time for "
                "measured wall-clock wins, so the row can dip below the best "
                "single-kernel row."
            )
        )
    report.add_metadata(
        "grid",
        {
            "models": list(spec.models),
            "gpus": list(spec.gpus),
            "sparsities": list(spec.sparsities),
            "kernels": [k.display_label for k in spec.kernels],
        },
    )
    report.add_records(result.record_dicts())
    return report


def run_headline(*, runner: SweepRunner | None = None, tuner=None, **kwargs) -> Report:
    """Section 6.2 headline speedups for Transformer at 75 % sparsity.

    ``tuner`` adds an "autotuned" column: the aggregate speedup of the tuned
    per-layer plan on the same cells.
    """
    spec = headline_spec(**kwargs)
    result = (runner or SweepRunner()).run(spec)
    speedups = collate_headline(result)
    lookup = result.by_config()
    (model,) = spec.models
    (sparsity,) = spec.sparsities
    report = Report("Section 6.2 headline - Transformer GEMM layers at 75% sparsity (Shfl-BW V=64)")
    columns = ["GPU", "measured", "paper"] + (["autotuned"] if tuner is not None else [])
    table = Table("Speedup over dense", columns)
    paper = {"V100": 1.81, "T4": 4.18, "A100": 1.90}
    for gpu in PAPER_GPUS:
        row = [gpu, speedups[gpu], paper.get(gpu)]
        if tuner is not None:
            dense_time = lookup[spec.dense_config(model, gpu)].time_s
            row.append(dense_time / tuner.plan(model, gpu, sparsity).total_time_s)
        table.add_row(*row)
    report.add_table(table)
    report.add_records(result.record_dicts())
    return report


def run_autotune(
    *,
    runner: SweepRunner | None = None,
    tuner=None,
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    gpus: tuple[str, ...] = PAPER_GPUS,
    sparsity: float = 0.75,
    plan_dir: str | None = None,
    measured: bool = False,
) -> Report:
    """Autotuned execution plans: per-layer kernel assignments and the
    aggregate speedup versus the best single-kernel baseline."""
    # Imported lazily: repro.tune builds on repro.eval.runner, so a module-
    # level import here would be circular through the package __init__.
    from ..tune import Autotuner, MeasuredRefiner, compare_with_single_kernels

    if tuner is None:
        tuner = Autotuner(
            cache_dir=plan_dir,
            refiner=MeasuredRefiner() if measured else None,
        )
    runner = runner or SweepRunner()
    report = Report(
        f"Autotuned kernel selection - per-layer plans at {sparsity:.0%} sparsity "
        f"({tuner.mode} mode)"
    )
    summary = Table(
        "Whole-model speedup over dense: tuned plan vs best single kernel",
        ["model", "GPU", "planned", "best single kernel", "best single", "advantage"],
    )
    records: list[dict] = []
    comparisons = {}
    for model in models:
        for gpu in gpus:
            comparison = compare_with_single_kernels(
                model, gpu, sparsity, tuner=tuner, runner=runner
            )
            comparisons[(model, gpu)] = comparison
            summary.add_row(
                model,
                gpu,
                comparison.planned_speedup,
                comparison.best_single_label,
                comparison.best_single_speedup,
                comparison.advantage,
            )
            records.append(
                {
                    "model": model,
                    "gpu": gpu,
                    "sparsity": sparsity,
                    "label": "Autotuned plan",
                    "status": "ok",
                    "time_s": comparison.planned_time_s,
                }
            )
            records.extend(
                {
                    "model": model,
                    "gpu": gpu,
                    "sparsity": sparsity,
                    "label": label,
                    "status": "ok",
                    "time_s": time_s,
                }
                for label, time_s in comparison.single_kernel_times
            )
    report.add_table(summary)
    for (model, gpu), comparison in comparisons.items():
        plan = comparison.plan
        table = Table(
            f"{model} on {gpu}: per-layer assignments",
            ["layer", "kernel", "count", "time share"],
        )
        total = plan.total_time_s
        for assignment in plan.assignments:
            table.add_row(
                assignment.layer,
                assignment.label,
                assignment.count,
                assignment.total_time_s / total,
            )
        report.add_table(table)
    report.add_note(
        "'advantage' is best-single-kernel time / planned time; "
        + (
            "the per-layer argmin construction guarantees it is >= 1."
            if tuner.mode == "model"
            else "measured-refined plans may trade modelled time for measured "
            "wall-clock wins, so it can dip below 1."
        )
    )
    report.add_metadata(
        "plans",
        {
            f"{model}|{gpu}": comparison.plan.to_dict()
            for (model, gpu), comparison in comparisons.items()
        },
    )
    report.add_metadata(
        "plan_cache",
        {"hits": tuner.stats.hits, "misses": tuner.stats.misses},
    )
    report.add_records(records)
    return report


def run_table1(
    *,
    quick: bool = True,
    tiny: bool = False,
    runner: SweepRunner | None = None,
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    sparsities: tuple[float, ...] = (0.80, 0.90),
    specs=None,
) -> Report:
    """Table 1: accuracy of pruned models per pattern and sparsity.

    The (model, pattern, sparsity) cells run through ``runner``: ``--jobs``
    fans them over a process pool, ``--cache-dir`` persists finished
    records so a re-run only computes the delta.
    """
    config = AccuracyConfig(quick=quick, tiny=tiny)
    records = table1_records(
        tuple(models), tuple(sparsities), config, specs, runner=runner
    )
    results = collate_accuracy(records)

    report = Report("Table 1 - Accuracy of pruned proxy models")
    for model in models:
        result = results.get(model)
        if result is None:
            continue
        labels = sorted({label for (label, _) in result.results})
        table_sparsities = sorted({s for (_, s) in result.results})
        table = Table(
            f"{model} ({result.metric_name}), dense = {result.dense_metric:.2f}",
            ["pattern"] + [f"{s:.0%}" for s in table_sparsities],
        )
        for label in labels:
            table.add_row(label, *[result.metric(label, s) for s in table_sparsities])
        report.add_table(table)
    report.add_note(
        "Proxy models on synthetic tasks: compare the ordering between "
        "patterns at equal sparsity, not absolute values."
    )
    report.add_records([record.to_dict() for record in records])
    return report


def run_pattern_search(
    *,
    runner: SweepRunner | None = None,
    quick: bool = True,
    models: tuple[str, ...] = ("transformer", "gnmt", "resnet50"),
    vector_sizes: tuple[int, ...] = PAPER_VECTOR_SIZES,
    sparsities: tuple[float, ...] = (0.80, 0.90),
    kmeans_iters: int | None = None,
    seed: int = 0,
) -> Report:
    """Shfl-BW pattern search on the real model layer shapes.

    Reports, per model and vector size, the fraction of total weight
    importance the searched pattern retains at each sparsity — the accuracy
    side of the pattern's V/speedup trade-off, evaluated at the paper's
    actual layer scale (only feasible on the vectorized search engine).
    ``quick`` caps the Lloyd iterations at 2 (the retained fraction
    converges within a few); ``--full`` runs 8.
    """
    if kmeans_iters is None:
        kmeans_iters = 2 if quick else 8
    records = pattern_search_sweep(
        tuple(models),
        tuple(vector_sizes),
        tuple(sparsities),
        kmeans_iters=kmeans_iters,
        seed=seed,
        runner=runner,
    )
    curves = collate_pattern_search(records)

    report = Report(
        "Pattern search - retained importance on real layer shapes (Section 5)"
    )
    sparsity_grid = sorted(set(tuple(sparsities)))
    for model in models:
        table = Table(
            f"{model}: fraction of importance retained by Shfl-BW",
            ["V"] + [f"{s:.0%} sparsity" for s in sparsity_grid],
        )
        for vector_size in vector_sizes:
            by_sparsity = curves.get((model, vector_size), {})
            table.add_row(vector_size, *[by_sparsity.get(s) for s in sparsity_grid])
        report.add_table(table)
    report.add_note(
        "Scores are deterministic synthetic magnitudes on the real GEMM "
        "shapes; smaller V retains more importance, trading away kernel "
        "speedup (Figure 2). Missing entries (-) are layers V cannot divide."
    )
    skipped = sorted(
        {
            f"{r.config.model}/{r.config.layer} @ V={r.config.vector_size}"
            for r in records
            if not r.ok
        }
    )
    if skipped:
        report.add_note(
            "Layers left dense (row count not divisible by V): "
            + ", ".join(skipped)
        )
    report.add_metadata(
        "grid",
        {
            "models": list(models),
            "vector_sizes": list(vector_sizes),
            "sparsities": list(sparsity_grid),
            "kmeans_iters": kmeans_iters,
        },
    )
    report.add_records([record.to_dict() for record in records])
    return report


def run_analysis(*, m: int = 2048, k: int = 2048, density: float = 0.10, vector_size: int = 64) -> Report:
    """Section 3.2: flexibility and data-reuse analysis per pattern."""
    report = Report("Section 3.2 - Flexibility and computation efficiency")
    table = Table(
        f"Patterns at density {density:.0%}, V={vector_size}, matrix {m}x{k}",
        ["pattern", "ln(candidates)", "max reuse (flop/byte)", "reuse vs dense"],
    )
    for analysis in compare_patterns(get_gpu("V100"), m, k, density, vector_size):
        table.add_row(
            analysis.pattern,
            analysis.log_candidates,
            analysis.max_reuse_flop_per_byte,
            analysis.reuse_vs_dense,
        )
    report.add_table(table)
    report.add_note(
        "Row-shuffle multiplier ln(M!/(V!)^(M/V)) for M=512, V=128: "
        f"{log_row_shuffle_multiplier(512, 128):.1f} (paper: > 700)."
    )
    return report


_EXPERIMENTS: dict[str, Callable[..., Report]] = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure6": run_figure6,
    "table1": run_table1,
    "headline": run_headline,
    "analysis": run_analysis,
    "autotune": run_autotune,
    "pattern-search": run_pattern_search,
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(_EXPERIMENTS)


def resolve_experiment(name: str) -> str:
    """Normalise an experiment name, raising ``KeyError`` for unknown ones.

    The single place the normalisation and the unknown-name message live:
    both :func:`run_experiment` and the CLI resolve through here.
    """
    key = name.strip().lower()
    if key not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(available_experiments())}"
        )
    return key


def run_experiment(name: str, **kwargs) -> Report:
    """Run one experiment by its paper table/figure id."""
    return _EXPERIMENTS[resolve_experiment(name)](**kwargs)
