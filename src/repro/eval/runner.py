"""Parallel, cached sweep runner for the paper's evaluation grids.

The paper's evaluation is one large cross-product — models x GPUs x
sparsities x kernels x vector sizes (Figures 1/2/6, Table 1, the Section 6.2
headline) — and every scaling PR grows it further.  This module turns those
sweeps into data:

* :class:`SweepSpec` declares a grid and expands it into hashable
  :class:`RunConfig` cells in a deterministic order;
* :func:`execute_config` evaluates one cell on the analytical timing model
  (it is a module-level pure function, so it pickles into worker processes);
* :class:`SweepRunner` maps configs through a ``concurrent.futures`` process
  pool with deterministic chunking — or through any injected executor, e.g.
  :func:`serial_executor` for tests — and deduplicates identical cells;
* :class:`ResultCache` persists finished :class:`RunRecord` results to disk
  as JSON, keyed by a stable config hash salted with :data:`MODEL_VERSION`,
  so re-running a sweep only computes the delta;
* :class:`SweepResult` carries the records (in grid order) plus cache-hit
  accounting, ready for JSON/CSV export via :class:`repro.eval.report.Report`.

Records are bit-identical between the serial and parallel paths: every cell
is a pure function of its :class:`RunConfig`, so the executor only decides
*where* the float is computed, never its value.

Bump :data:`MODEL_VERSION` whenever the timing model changes semantically;
the salt flows into every cache key, so stale caches invalidate themselves.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, TypeVar, cast

from .store import (
    BlobStore,
    CacheStore,
    CorruptCacheWarning,
    JsonFileStore,
    make_store,
)

if TYPE_CHECKING:
    from ..gpu.simulator import LaunchBatch
    from ..kernels.base import SpMMKernel

#: Config / record element types of the generic process-pool maps.
C = TypeVar("C")
R = TypeVar("R")

__all__ = [
    "MODEL_VERSION",
    "CACHE_FILENAME",
    "canonical_config_hash",
    "RunConfig",
    "RunRecord",
    "KernelSpec",
    "SweepSpec",
    "SweepResult",
    "CellTask",
    "CellSweepResult",
    "CacheStats",
    "BlobStore",
    "CacheStore",
    "CorruptCacheWarning",
    "JsonFileStore",
    "ResultCache",
    "SweepRunner",
    "execute_config",
    "serial_executor",
    "batched_executor",
    "process_executor",
    "strided_process_map",
    "contiguous_process_map",
]

#: Version salt of the analytical timing model.  It participates in every
#: cache key, so bumping it (whenever simulator / kernel timing semantics
#: change) orphans all previously cached results instead of silently
#: serving stale numbers.
MODEL_VERSION = "timing-v2"

#: Legacy single-file store of the :class:`ResultCache` inside its cache
#: directory; the default blob backend derives its root from this name
#: (``sweep-cache.blobs/``) and reads through to the file while migrating.
CACHE_FILENAME = "sweep-cache.json"


def canonical_config_hash(payload: Mapping, *, salt: str = MODEL_VERSION) -> str:
    """Stable hex digest of a config's canonical dict form.

    The one keying scheme every sweep-cell family shares (timing
    :class:`RunConfig`, accuracy and pattern-search cells): canonical JSON
    (sorted keys, exact float ``repr``) with the salt folded into the
    payload, digested with blake2b — never Python's per-process ``hash()``,
    so the same config hashes identically across interpreter restarts,
    ``PYTHONHASHSEED`` values and kwargs insertion orders.

    A payload carrying its own top-level ``"salt"`` key is rejected: it
    would silently *replace* the :data:`MODEL_VERSION` salt in the hashed
    dict (``{"salt": salt, **payload}`` lets the payload win), so such a
    config would never invalidate on a model-version bump.  Nested dicts
    (e.g. ``kernel_kwargs``) may use the name freely.
    """
    if "salt" in payload:
        raise ValueError(
            "config payloads must not define a top-level 'salt' key: it "
            "would override the cache's MODEL_VERSION salt and survive "
            "version bumps"
        )
    data = json.dumps(
        {"salt": salt, **payload}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(data.encode("utf-8"), digest_size=16).hexdigest()


def _freeze_kwargs(
    kwargs: Mapping[str, object] | Iterable[tuple[str, object]],
) -> tuple[tuple[str, object], ...]:
    """Normalise kernel kwargs (mapping or pair-iterable) to a sorted tuple."""
    if isinstance(kwargs, Mapping):
        items = kwargs.items()
    else:
        items = tuple(kwargs)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class RunConfig:
    """One hashable cell of a sweep grid.

    Exactly one of ``model`` (a :func:`repro.models.shapes.model_layers`
    name) or ``gemm`` (an explicit ``(M, N, K)`` problem) identifies the
    workload.  ``sparsity`` is the weight sparsity (0 for dense baselines),
    ``kernel`` a :func:`repro.kernels.registry.make_kernel` name and
    ``kernel_kwargs`` its constructor arguments (``vector_size``,
    ``block_size``, ...) as a sorted tuple of pairs so insertion order never
    leaks into equality or the cache key.  ``label`` is the display name used
    in reports; it is cosmetic and excluded from equality and hashing.
    """

    kernel: str
    gpu: str
    sparsity: float
    model: str | None = None
    gemm: tuple[int, int, int] | None = None
    kernel_kwargs: tuple[tuple[str, object], ...] = ()
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.model is None) == (self.gemm is None):
            raise ValueError("exactly one of model / gemm must be set")
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        if self.gemm is not None:
            object.__setattr__(self, "gemm", tuple(int(v) for v in self.gemm))
        object.__setattr__(self, "kernel_kwargs", _freeze_kwargs(self.kernel_kwargs))

    @property
    def density(self) -> float:
        """Non-zero fraction of the weight matrix."""
        return 1.0 - self.sparsity

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.kernel

    def to_dict(self) -> dict:
        """Canonical JSON-compatible form (used for hashing and export)."""
        return {
            "kernel": self.kernel,
            "gpu": self.gpu,
            "sparsity": self.sparsity,
            "model": self.model,
            "gemm": list(self.gemm) if self.gemm is not None else None,
            "kernel_kwargs": dict(self.kernel_kwargs),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunConfig":
        gemm = data.get("gemm")
        return cls(
            kernel=data["kernel"],
            gpu=data["gpu"],
            sparsity=data["sparsity"],
            model=data.get("model"),
            gemm=tuple(gemm) if gemm is not None else None,
            kernel_kwargs=_freeze_kwargs(data.get("kernel_kwargs", {})),
            label=data.get("label"),
        )

    def config_hash(self, *, salt: str = MODEL_VERSION) -> str:
        """Stable hex digest of this config (see
        :func:`canonical_config_hash`)."""
        return canonical_config_hash(self.to_dict(), salt=salt)


@dataclass(frozen=True)
class RunRecord:
    """Result of evaluating one :class:`RunConfig` on the timing model.

    ``status`` is ``"ok"`` (with ``time_s`` set, plus ``bound`` for
    single-GEMM cells) or ``"not-applicable"`` (with ``detail`` naming the
    reason), mirroring the bars missing from the paper's figures.
    """

    config: RunConfig
    status: str
    time_s: float | None = None
    bound: str | None = None
    detail: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Flat JSON/CSV-friendly form (one row per record)."""
        return {
            **self.config.to_dict(),
            "label": self.config.display_label,
            "status": self.status,
            "time_s": self.time_s,
            "bound": self.bound,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class KernelSpec:
    """One kernel line of a sweep: registry name, constructor kwargs, display
    label and an optional per-kernel sparsity override (e.g. dense reference
    curves that only run at sparsity 0)."""

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()
    label: str | None = None
    sparsities: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kwargs", _freeze_kwargs(self.kwargs))
        if self.sparsities is not None:
            object.__setattr__(self, "sparsities", tuple(self.sparsities))

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.name


@dataclass(frozen=True)
class SweepSpec:
    """Declarative sweep grid.

    ``models`` names workloads evaluated with :func:`repro.eval.speedup.
    model_time` over their real layer shapes; alternatively ``gemm`` pins one
    explicit ``(M, N, K)`` problem (the Figure 1 mode).  ``dense_baseline``
    (a registry name, or ``None`` to disable) adds one sparsity-0 config per
    (workload, GPU) so speedups can be formed without re-simulating the dense
    reference per kernel cell.
    """

    kernels: tuple[KernelSpec, ...]
    gpus: tuple[str, ...]
    sparsities: tuple[float, ...]
    models: tuple[str, ...] = ()
    gemm: tuple[int, int, int] | None = None
    dense_baseline: str | None = "dense"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "gpus", tuple(self.gpus))
        object.__setattr__(self, "sparsities", tuple(self.sparsities))
        object.__setattr__(self, "models", tuple(self.models))
        if bool(self.models) == (self.gemm is not None):
            raise ValueError("exactly one of models / gemm must be set")
        if self.gemm is not None:
            object.__setattr__(self, "gemm", tuple(int(v) for v in self.gemm))
        if not self.kernels:
            raise ValueError("a sweep needs at least one kernel")
        if not self.gpus:
            raise ValueError("a sweep needs at least one GPU")

    def dense_config(self, model: str | None, gpu: str) -> RunConfig:
        """The dense-baseline cell of one (workload, GPU) pair."""
        if self.dense_baseline is None:
            raise ValueError("this spec has no dense baseline")
        return RunConfig(
            kernel=self.dense_baseline,
            gpu=gpu,
            sparsity=0.0,
            model=model,
            gemm=self.gemm,
            label=f"{self.dense_baseline} (baseline)",
        )

    def config(
        self, kernel: KernelSpec, model: str | None, gpu: str, sparsity: float
    ) -> RunConfig:
        """The cell of one kernel line at one operating point."""
        return RunConfig(
            kernel=kernel.name,
            gpu=gpu,
            sparsity=sparsity,
            model=model,
            gemm=self.gemm,
            kernel_kwargs=kernel.kwargs,
            label=kernel.display_label,
        )

    def expand(self) -> list[RunConfig]:
        """The full grid, workload-major, in a deterministic order."""
        subjects: tuple[str | None, ...] = self.models if self.models else (None,)
        configs: list[RunConfig] = []
        for model in subjects:
            for gpu in self.gpus:
                if self.dense_baseline is not None:
                    configs.append(self.dense_config(model, gpu))
                for kernel in self.kernels:
                    grid = (
                        kernel.sparsities
                        if kernel.sparsities is not None
                        else self.sparsities
                    )
                    for sparsity in grid:
                        configs.append(self.config(kernel, model, gpu, sparsity))
        return configs


def _evaluate_cell(config: RunConfig, kernel, arch, shape, layers) -> RunRecord:
    """Evaluate one cell on the scalar timing model with resolved inputs.

    The estimate half of :func:`execute_config`, shared with the batched
    executor's fallback path so both produce identical records from the same
    code (and the fallback reuses cached kernels / layer lists instead of
    re-resolving them per cell).
    """
    from ..kernels.base import KernelNotApplicableError
    from .speedup import model_time

    if shape is not None:
        try:
            timing = kernel.estimate(arch, shape, config.density)
        except (KernelNotApplicableError, ValueError) as exc:
            return RunRecord(config, status="not-applicable", detail=str(exc))
        return RunRecord(
            config, status="ok", time_s=timing.total_time_s, bound=timing.bound
        )
    try:
        total = model_time(kernel, arch, layers, config.density)
    except (KernelNotApplicableError, ValueError) as exc:
        return RunRecord(config, status="not-applicable", detail=str(exc))
    return RunRecord(config, status="ok", time_s=total)


def execute_config(config: RunConfig) -> RunRecord:
    """Evaluate one grid cell on the analytical timing model.

    Pure function of ``config`` (module-level, so it pickles into
    ``ProcessPoolExecutor`` workers).  Kernel-inapplicability — wrong GPU,
    fixed-density patterns, missing convolution support — is data, not an
    exception: it returns a ``"not-applicable"`` record.
    """
    # Imported lazily: this module is the orchestration substrate the sweep
    # modules build on, so importing them at the top would be circular.
    from ..gpu.arch import get_gpu
    from ..kernels.base import GEMMShape
    from ..kernels.registry import make_kernel
    from ..models.shapes import model_layers

    # Grid-setup errors — unknown GPU / kernel / model, malformed GEMM shape
    # — must raise, not read as "not-applicable": they mean the *spec* is
    # wrong, not that a kernel cannot run a cell.  Only the estimate itself
    # is allowed to declare inapplicability.
    arch = get_gpu(config.gpu)
    kernel = make_kernel(config.kernel, **dict(config.kernel_kwargs))
    supported = getattr(kernel, "supported_archs", None)
    if supported is not None and arch.name not in supported:
        return RunRecord(
            config,
            status="not-applicable",
            detail=f"kernel {kernel.name!r} only runs on {', '.join(supported)}",
        )
    if config.gemm is not None:
        return _evaluate_cell(config, kernel, arch, GEMMShape(*config.gemm), None)
    return _evaluate_cell(config, kernel, arch, None, model_layers(config.model))


def serial_executor(configs: list[RunConfig], *, jobs: int | None = None) -> list[RunRecord]:
    """Evaluate every config in-process, in order (the scalar oracle
    executor: one :func:`execute_config` call per cell)."""
    return [execute_config(config) for config in configs]


def _statically_feasible(capabilities, arch, kinds, density: float) -> bool:
    """Whether every layer kind of a cell passes the kernel's static
    capability check (cells that do not are routed to the scalar path, which
    reproduces the exact not-applicable detail strings)."""
    return all(
        capabilities.infeasible_reason(arch, kind=kind, density=density) is None
        for kind in kinds
    )


def batched_executor(
    configs: list[RunConfig], *, jobs: int | None = None
) -> list[RunRecord]:
    """Evaluate configs through the batched estimation engine.

    Cells are grouped by (kernel, kwargs, GPU) and each group's whole
    workload x sparsity grid — every layer of every model cell plus every
    explicit GEMM cell — is evaluated in a single
    :meth:`~repro.kernels.base.SpMMKernel.estimate_grid` call; model cells
    then reduce their layer slices with the scalar accumulation order.
    Records are bit-identical to :func:`serial_executor`: the batched math
    reproduces the scalar model exactly, and any cell the batch cannot
    express (static infeasibility, per-cell applicability errors) falls back
    to the scalar :func:`_evaluate_cell` path.
    """
    # Imported lazily for the same circularity reason as execute_config.
    import numpy as np

    from ..gpu.arch import get_gpu
    from ..gpu.simulator import LaunchBatch, simulate_batch
    from ..kernels.base import (
        GEMMShape,
        KernelNotApplicableError,
        conv_unfold_factor,
        no_conv_support_detail,
    )
    from ..kernels.registry import make_kernel
    from ..models.shapes import model_layers

    records: list[RunRecord | None] = [None] * len(configs)
    groups: dict[tuple, list[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(
            (config.kernel, config.kernel_kwargs, config.gpu), []
        ).append(index)

    kernels: dict[tuple[str, tuple[tuple[str, object], ...]], SpMMKernel] = {}
    model_cache: dict[str, list] = {}
    # Per-model cell templates: the layer shapes, conv unfold factors and
    # occurrence counts every model cell of a group expands to.
    template_cache: dict[str, tuple[list, list[float], list[int], frozenset]] = {}
    per_gpu_batches: dict[str, list] = {}
    per_gpu_groups: dict[str, list] = {}
    batch_cache: dict[tuple, LaunchBatch] = {}
    for (kernel_name, kernel_kwargs, gpu), indices in groups.items():
        # Grid-setup errors (unknown GPU / kernel / model, malformed GEMM
        # shape) must raise exactly as in execute_config.
        arch = get_gpu(gpu)
        kernel_key = (kernel_name, kernel_kwargs)
        kernel = kernels.get(kernel_key)
        if kernel is None:
            kernel = kernels.setdefault(
                kernel_key, make_kernel(kernel_name, **dict(kernel_kwargs))
            )
        supported = getattr(kernel, "supported_archs", None)
        if supported is not None and arch.name not in supported:
            detail = f"kernel {kernel.name!r} only runs on {', '.join(supported)}"
            for i in indices:
                records[i] = RunRecord(
                    configs[i], status="not-applicable", detail=detail
                )
            continue

        # Flatten every statically feasible cell of the group into one list
        # of (shape, density) simulator cells; statically infeasible cells
        # take the scalar path, which reproduces the exact detail strings.
        capabilities = kernel.capabilities()
        # A kernel with no static constraints at all (dense, vector-wise,
        # Shfl-BW) accepts every cell; skip the per-cell capability walk.
        unconstrained = (
            capabilities.supported_archs is None
            and not capabilities.requires_sparse_tensor_core
            and capabilities.fixed_density is None
            and capabilities.supports_conv
        )
        feasibility: dict[tuple, bool] = {}
        cells = 0
        shape_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        density_parts: list[tuple[float, int]] = []
        unfold_factors: list[float] = []
        counts: list[int] = []
        spans: list[tuple[int, int, int, object, object]] = []
        for i in indices:
            config = configs[i]
            if config.gemm is not None:
                shape = GEMMShape(*config.gemm)
                layers = None
                template = (
                    (
                        np.array([shape.m], dtype=np.int64),
                        np.array([shape.n], dtype=np.int64),
                        np.array([shape.k], dtype=np.int64),
                    ),
                    [0.0],
                    [1],
                    frozenset(("linear",)),
                )
            else:
                shape = None
                template = template_cache.get(config.model)
                if template is None:
                    layers = model_cache.setdefault(
                        config.model, model_layers(config.model)
                    )
                    template = template_cache.setdefault(
                        config.model,
                        (
                            (
                                np.array([la.gemm.m for la in layers], dtype=np.int64),
                                np.array([la.gemm.n for la in layers], dtype=np.int64),
                                np.array([la.gemm.k for la in layers], dtype=np.int64),
                            ),
                            [
                                conv_unfold_factor(layer.conv.kernel_size)
                                if layer.kind == "conv"
                                else 0.0
                                for layer in layers
                            ],
                            [layer.count for layer in layers],
                            frozenset(layer.kind for layer in layers),
                        ),
                    )
                layers = model_cache[config.model]
            cell_arrays, cell_factors, cell_counts, kinds = template
            density = config.density
            if unconstrained:
                feasible = True
            else:
                feasible = feasibility.get((kinds, density))
                if feasible is None:
                    feasible = feasibility.setdefault(
                        (kinds, density),
                        _statically_feasible(capabilities, arch, kinds, density),
                    )
            if not feasible:
                if (
                    layers is not None
                    and layers[0].kind == "conv"
                    and not kernel.supports_conv
                ):
                    # The scalar path would raise on the first layer with
                    # exactly this message; skip the exception machinery.
                    records[i] = RunRecord(
                        config,
                        status="not-applicable",
                        detail=no_conv_support_detail(kernel.name),
                    )
                else:
                    records[i] = _evaluate_cell(config, kernel, arch, shape, layers)
                continue
            start = cells
            cells += len(cell_factors)
            shape_parts.append(cell_arrays)
            density_parts.append((density, len(cell_factors)))
            unfold_factors.extend(cell_factors)
            counts.extend(cell_counts)
            spans.append((i, start, cells, shape, layers))
        if not spans:
            continue

        # Arch-agnostic kernels produce identical launch batches on every
        # GPU; reuse the batch built for the same cell composition instead
        # of rebuilding it per architecture.
        signature = None
        if kernel.launch_arch_agnostic:
            signature = (
                kernel_name,
                kernel_kwargs,
                tuple(
                    (configs[i].model, configs[i].gemm, configs[i].density)
                    for i, _, _, _, _ in spans
                ),
            )
            batch = batch_cache.get(signature)
            if batch is not None:
                per_gpu_batches.setdefault(gpu, []).append(batch)
                per_gpu_groups.setdefault(gpu, []).append(
                    (spans, unfold_factors, counts, kernel.conv_unfold_overhead)
                )
                continue

        shapes = (
            np.concatenate([part[0] for part in shape_parts]),
            np.concatenate([part[1] for part in shape_parts]),
            np.concatenate([part[2] for part in shape_parts]),
        )
        densities = np.repeat(
            np.array([density for density, _ in density_parts]),
            np.array([count for _, count in density_parts]),
        )
        try:
            batch = kernel.build_launch_batch(arch, shapes, densities)
        except (KernelNotApplicableError, ValueError):
            # Per-cell applicability the static stage cannot see (e.g. shape
            # divisibility): the scalar path reproduces the exact records.
            for i, _, _, shape, layers in spans:
                records[i] = _evaluate_cell(configs[i], kernel, arch, shape, layers)
            continue
        if signature is not None:
            batch_cache[signature] = batch
        per_gpu_batches.setdefault(gpu, []).append(batch)
        per_gpu_groups.setdefault(gpu, []).append(
            (spans, unfold_factors, counts, kernel.conv_unfold_overhead)
        )

    # One simulate_batch call per GPU covers every kernel group's cells (the
    # model is element-wise, so concatenation cannot change any number).
    for gpu, batches in per_gpu_batches.items():
        arch = get_gpu(gpu)
        timing = simulate_batch(arch, LaunchBatch.concat(batches))
        offset = 0
        for (spans, unfold_factors, counts, unfold_overhead), batch in zip(
            per_gpu_groups[gpu], batches, strict=True
        ):
            totals = timing.total_time_s[offset : offset + len(batch)]
            # Convolution unfolding overhead, exactly the estimate_conv
            # expression; factors are 0.0 for linear / 1x1 cells, where the
            # adjustment adds an exact 0.0.  The per-layer `time * count`
            # terms then accumulate in the same order as the scalar sum in
            # model_time (plain Python floats, not a pairwise reduction).
            factors = np.asarray(unfold_factors)
            totals = totals + totals * unfold_overhead * factors
            weighted = (totals * np.asarray(counts)).tolist()
            for i, start, stop, shape, layers in spans:
                config = configs[i]
                if shape is not None:
                    records[i] = RunRecord(
                        config,
                        status="ok",
                        time_s=float(totals[start]),
                        bound=timing.bound[offset + start],
                    )
                else:
                    total = 0.0
                    for term in weighted[start:stop]:
                        total += term
                    records[i] = RunRecord(config, status="ok", time_s=total)
            offset += len(batch)

    assert all(record is not None for record in records)
    return cast("list[RunRecord]", records)


def _execute_chunk(configs: list[RunConfig]) -> list[RunRecord]:
    return batched_executor(configs)


def strided_process_map(
    execute: Callable[[list[C]], list[R]], configs: list[C], jobs: int | None = None
) -> list[R]:
    """Map an executor over configs across a process pool, deterministically.

    Configs are strided round-robin over ``jobs`` contiguous worker chunks
    (``configs[i::jobs]``), which both balances heavyweight workloads and is
    a pure function of the input order, so the reassembled record list is
    identical to running ``execute`` over the whole list serially.
    ``execute`` must be a module-level function (it pickles into the worker
    processes by reference) mapping a config list to a record list in order.
    """
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    jobs = min(jobs, len(configs))
    if jobs <= 1:
        return execute(configs)
    chunks = [configs[i::jobs] for i in range(jobs)]
    records: list[R | None] = [None] * len(configs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for offset, chunk_records in zip(range(jobs), pool.map(execute, chunks), strict=True):
            for index, record in zip(range(offset, len(configs), jobs), chunk_records, strict=True):
                records[index] = record
    assert all(record is not None for record in records)
    return cast("list[R]", records)


def contiguous_process_map(
    execute: Callable[[list[C]], list[R]], configs: list[C], jobs: int | None = None
) -> list[R]:
    """Map an executor over configs across a process pool in contiguous runs.

    The deterministic counterpart of :func:`strided_process_map` for cell
    families whose executor memoises expensive shared state per *adjacent*
    group — e.g. the accuracy cells, laid out model-major, whose executor
    trains one dense proxy per model and process.  Contiguous chunks mean
    each worker crosses at most one group boundary per neighbour instead of
    re-deriving every group's state, while reassembly (plain concatenation)
    stays a pure function of the input order.
    """
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    jobs = min(jobs, len(configs))
    if jobs <= 1:
        return execute(configs)
    bounds = [round(i * len(configs) / jobs) for i in range(jobs + 1)]
    chunks = [configs[bounds[i] : bounds[i + 1]] for i in range(jobs)]
    records: list[R] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for chunk_records in pool.map(execute, chunks):
            records.extend(chunk_records)
    assert len(records) == len(configs)
    return records


def process_executor(
    configs: list[RunConfig], *, jobs: int | None = None
) -> list[RunRecord]:
    """Evaluate configs across a process pool with deterministic chunking.

    The strided chunking interleaves the convolution-heavy ResNet cells with
    the cheap GEMM cells; each worker batches its chunk through
    :func:`batched_executor`, so the records are identical to the serial
    path.
    """
    if len(configs) <= 1:
        return serial_executor(configs)
    return strided_process_map(_execute_chunk, configs, jobs)


def _encode_run_record(record: RunRecord) -> dict:
    """Default cache codec: a :class:`RunRecord` as a debuggable JSON entry."""
    return {
        "config": record.config.to_dict(),
        "status": record.status,
        "time_s": record.time_s,
        "bound": record.bound,
        "detail": record.detail,
    }


def _decode_run_record(config: RunConfig, entry: Mapping) -> RunRecord | None:
    """Default cache codec: rebuild a :class:`RunRecord` from a JSON entry
    (a structurally malformed entry reads as a miss, not a crash)."""
    if "status" not in entry:
        return None
    return RunRecord(
        config=config,
        status=entry["status"],
        time_s=entry.get("time_s"),
        bound=entry.get("bound"),
        detail=entry.get("detail"),
    )


class ResultCache:
    """Persistent on-disk cache of sweep-cell results.

    Keys are ``config.config_hash(salt=...)`` digests salted with the timing
    :data:`MODEL_VERSION`, so a model bump reads as a cold cache rather than
    as stale hits.  The default substrate (``backend="blob"``) is the
    content-addressed :class:`~repro.eval.store.BlobStore`: one atomic
    canonical-JSON blob per key under ``<filename stem>.blobs/`` inside
    ``cache_dir``, safe for concurrent writers, reading through to (and
    migrating from) the legacy single file named by ``filename`` (by default
    :data:`CACHE_FILENAME`).  ``backend="json"`` keeps everything in that
    single legacy :class:`~repro.eval.store.JsonFileStore` file —
    last-writer-wins across processes, so only for single-writer uses.  In
    both layouts each entry keeps the canonical config dict next to the
    result payload so the store is debuggable by eye.

    By default the cache speaks :class:`RunRecord`; other cell families (the
    accuracy and pattern-search sweeps) plug in their own ``encode`` /
    ``decode`` codec and filename through :class:`CellTask`, sharing the
    keying, atomic-write and tolerant-load machinery.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        salt: str = MODEL_VERSION,
        filename: str = CACHE_FILENAME,
        encode: Callable[[object], dict] | None = None,
        decode: Callable[[object, Mapping], object | None] | None = None,
        backend: str = "blob",
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = salt
        self.backend = backend
        self._encode = encode if encode is not None else _encode_run_record
        self._decode = decode if decode is not None else _decode_run_record
        self._store: CacheStore = make_store(
            self.cache_dir / filename, backend=backend, salt=salt
        )
        self.path = self._store.path

    def __len__(self) -> int:
        return len(self._store)

    def key(self, config) -> str:
        return config.config_hash(salt=self.salt)

    def get(self, config):
        """Cached record for ``config``, re-bound to the caller's config
        instance (which may carry a different cosmetic label)."""
        entry = self._store.get(self.key(config))
        if entry is None:
            return None
        return self._decode(config, entry)

    def put(self, config, record) -> None:
        self._store.put(self.key(config), self._encode(record))

    def flush(self) -> None:
        """Persist staged entries atomically (unique temp + fsync + rename;
        one file per entry on the blob backend)."""
        self._store.flush()


@dataclass
class CacheStats:
    """Cache accounting accumulated across a runner's lifetime."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run`: records in grid order plus
    cache accounting."""

    spec: SweepSpec
    records: list[RunRecord]
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def by_config(self) -> dict[RunConfig, RunRecord]:
        """Lookup table from config to record (labels ignored, like equality)."""
        return {record.config: record for record in self.records}

    def record_dicts(self) -> list[dict]:
        return [record.to_dict() for record in self.records]


@dataclass(frozen=True)
class CellTask:
    """Execution and persistence recipe for one family of sweep cells.

    The timing grids speak :class:`RunConfig`/:class:`RunRecord` natively;
    other workloads (the Table 1 / Figure 2 accuracy protocol, the Shfl-BW
    pattern search) define their own hashable config dataclasses and route
    through :meth:`SweepRunner.run_cells` by describing themselves here:

    * ``execute`` maps a config list to a record list *in order*.  It must
      be a module-level function so it pickles by reference into
      ``ProcessPoolExecutor`` workers, and every record must be a frozen
      dataclass with a ``config`` field (records are re-bound to the
      requesting config after deduplication and cache round-trips).
    * ``cache_filename`` names the task's own JSON file inside the runner's
      cache directory, so different record schemas never share a store.
    * ``encode`` / ``decode`` are the cache codec (record -> JSON entry and
      back; ``decode`` returns ``None`` for malformed entries).
    * ``chunking`` picks how a parallel run splits cells over workers:
      ``"strided"`` (round-robin, balances heterogeneous cell costs) or
      ``"contiguous"`` (runs of adjacent cells, preserves per-worker memo
      locality when the executor caches expensive state per adjacent group
      — the accuracy cells' per-model dense proxies).

    Configs must expose ``config_hash(salt=...)`` built on canonical JSON,
    like :class:`RunConfig`.
    """

    name: str
    execute: Callable[[list], list]
    cache_filename: str
    encode: Callable[[object], dict]
    decode: Callable[[object, Mapping], object | None]
    chunking: str = "strided"

    def __post_init__(self) -> None:
        if self.chunking not in ("strided", "contiguous"):
            raise ValueError("chunking must be 'strided' or 'contiguous'")


@dataclass
class CellSweepResult:
    """Outcome of one :meth:`SweepRunner.run_cells` call: records in request
    order plus cache accounting."""

    records: list
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class SweepRunner:
    """Executes :class:`SweepSpec` grids with caching and parallelism.

    The default executor is :func:`batched_executor` — the pure-analytical
    fast path that evaluates each (kernel, GPU, workload) group's sparsity
    grid through the batched estimation engine and produces records
    bit-identical to the scalar :func:`serial_executor`.  ``jobs`` > 1
    selects the process-pool executor (whose workers batch their chunks the
    same way); ``executor`` injects a custom one (tests pass
    :func:`serial_executor` as the oracle).  ``cache_dir`` enables the
    persistent :class:`ResultCache`; ``store`` picks its substrate —
    ``"blob"`` (default: the content-addressed multi-writer-safe
    :class:`~repro.eval.store.BlobStore`, migrating any legacy single-file
    cache it finds) or ``"json"`` (the legacy single-file store).  The
    runner deduplicates identical cells within a grid, so a config appearing
    twice is computed once.  ``stats`` accumulates hit/miss counts across
    every ``run`` call on this runner.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        executor: Callable[..., list[RunRecord]] | None = None,
        salt: str = MODEL_VERSION,
        store: str = "blob",
    ) -> None:
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.salt = salt
        self.store = store
        self.cache = (
            ResultCache(cache_dir, salt=salt, backend=store)
            if cache_dir is not None
            else None
        )
        if executor is None:
            executor = process_executor if (jobs or 0) > 1 else batched_executor
        self._executor = executor
        self._cell_caches: dict[str, ResultCache] = {}
        self.stats = CacheStats()

    def _resolve(
        self,
        configs: list,
        cache: ResultCache | None,
        execute: Callable[[list], list],
    ) -> tuple[list, int, int]:
        """Shared dedup -> cache lookup -> execute -> cache write core.

        Returns the records in request order (each re-bound to the
        requesting config so cosmetic labels survive deduplication and cache
        round-trips) plus the hit/miss counts.
        """
        digests = [config.config_hash(salt=self.salt) for config in configs]
        unique: dict[str, object] = {}
        for digest, config in zip(digests, configs, strict=True):
            unique.setdefault(digest, config)

        hits = 0
        resolved: dict[str, object] = {}
        pending: list[tuple[str, object]] = []
        for digest, config in unique.items():
            cached = cache.get(config) if cache is not None else None
            if cached is not None:
                resolved[digest] = cached
                hits += 1
            else:
                pending.append((digest, config))

        if pending:
            computed = execute([c for _, c in pending])
            for (digest, config), record in zip(pending, computed, strict=True):
                resolved[digest] = record
                if cache is not None:
                    cache.put(config, record)
            if cache is not None:
                cache.flush()

        misses = len(pending)
        self.stats.hits += hits
        self.stats.misses += misses
        records = [
            replace(resolved[digest], config=config)
            for digest, config in zip(digests, configs, strict=True)
        ]
        return records, hits, misses

    def run(self, spec: SweepSpec) -> SweepResult:
        start = time.monotonic()
        configs = spec.expand()
        records, hits, misses = self._resolve(
            configs, self.cache, lambda pending: self._executor(pending, jobs=self.jobs)
        )
        return SweepResult(
            spec=spec,
            records=records,
            cache_hits=hits,
            cache_misses=misses,
            elapsed_s=time.monotonic() - start,
        )

    def cell_cache(self, task: CellTask) -> ResultCache | None:
        """The per-task :class:`ResultCache` (``None`` without a cache dir).

        Each cell family keeps its own JSON file inside the runner's cache
        directory, with the task's codec and the runner's salt.
        """
        if self.cache_dir is None:
            return None
        cache = self._cell_caches.get(task.name)
        if cache is None:
            cache = self._cell_caches.setdefault(
                task.name,
                ResultCache(
                    self.cache_dir,
                    salt=self.salt,
                    filename=task.cache_filename,
                    encode=task.encode,
                    decode=task.decode,
                    backend=self.store,
                ),
            )
        return cache

    def run_cells(self, configs: Iterable, task: CellTask) -> CellSweepResult:
        """Evaluate one family of sweep cells with caching and parallelism.

        The generic counterpart of :meth:`run` for non-timing workloads: the
        same deduplication, persistent caching (in the task's own cache
        file) and hit/miss accounting, with execution delegated to the
        task's ``execute`` — serially in-process, or strided across a
        process pool when the runner was built with ``jobs`` > 1.
        """
        start = time.monotonic()
        configs = list(configs)
        cache = self.cell_cache(task)
        if (self.jobs or 0) > 1:
            process_map = (
                contiguous_process_map
                if task.chunking == "contiguous"
                else strided_process_map
            )

            def execute(pending: list) -> list:
                return process_map(task.execute, pending, self.jobs)
        else:
            execute = task.execute
        records, hits, misses = self._resolve(configs, cache, execute)
        return CellSweepResult(
            records=records,
            cache_hits=hits,
            cache_misses=misses,
            elapsed_s=time.monotonic() - start,
        )

    def run_configs(self, configs: Iterable[RunConfig]) -> list[RunRecord]:
        """Evaluate an explicit config list (no spec), without caching."""
        return self._executor(list(configs), jobs=self.jobs)
