"""Content-addressed cache stores: the multi-writer-safe persistence substrate.

The sweep caches began life as one JSON file per cell family
(:class:`JsonFileStore`): a single mutable blob, loaded wholesale at
construction and rewritten wholesale on flush.  That shape is last-writer-wins
by construction — two concurrent sweeps against one ``--cache-dir`` each load
the file once, compute their deltas, and the second flush silently discards
the first writer's entries.  This module replaces it with a store that is
safe for concurrent writers *by construction*:

* :class:`BlobStore` is a **content-addressed dir-of-blobs**: one
  canonical-JSON file per ``canonical_config_hash`` key, fanned out under
  two-hex-char shard directories (``<root>/ab/abcdef....json``).  Every write
  goes through a unique temp file (:func:`tempfile.mkstemp` in the target
  directory) + ``fsync`` + ``os.replace``, so a reader never observes a
  partial entry, a crashed writer never corrupts the store, and concurrent
  writers of *different* keys touch different files.  Concurrent writers of
  the *same* key write byte-identical content (cells are pure functions of
  their hashed config — the SC001 contract), so per-entry last-write-wins is
  harmless.
* :class:`JsonFileStore` survives as the legacy single-file substrate with
  the same :class:`CacheStore` surface (and the temp-file collision and
  corrupt-file-clobbering bugs fixed); :class:`BlobStore` reads *through* to
  a legacy file and migrates entries into blobs on first touch, so existing
  cache directories stay warm across the switch.
* Corrupt cache files are never silently destroyed: the raw bytes are
  preserved as a ``.corrupt-<digest>`` sidecar (:func:`preserve_corrupt_file`)
  with a once-per-file :class:`CorruptCacheWarning` before the store treats
  them as empty.
* :func:`cache_main` is the fleet-hygiene CLI behind ``python -m repro.eval
  cache``: ``stats`` (per-family entry/byte/salt accounting), ``gc``
  (``--keep-salt`` retires entries of orphaned ``MODEL_VERSION`` salts and
  stray temp files) and ``migrate`` (bulk legacy-file -> blob conversion).

The module is deliberately stdlib-only (no numpy, no repro imports), so the
higher layers — :class:`repro.eval.runner.ResultCache`,
:class:`repro.tune.planner.PlanCache` — can plug either backend in through
:func:`make_store` without import cycles.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
import tempfile
import warnings
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol

__all__ = [
    "BLOB_SUFFIX",
    "BlobStore",
    "CacheStore",
    "CorruptCacheWarning",
    "FamilyStats",
    "GcResult",
    "JsonFileStore",
    "MigrateResult",
    "atomic_write_bytes",
    "blob_root_for",
    "cache_main",
    "collect_stats",
    "discover_families",
    "gc_blobs",
    "load_json_entries",
    "make_store",
    "migrate_legacy_file",
    "preserve_corrupt_file",
]

#: A JSON object as Python data — the entry currency of every cache store.
JsonDict = dict[str, Any]

#: Directory suffix pairing a blob root with its legacy file:
#: ``sweep-cache.json`` migrates into ``sweep-cache.blobs/``.
BLOB_SUFFIX = ".blobs"

#: Valid store keys: lowercase hex digests (``canonical_config_hash`` /
#: ``plan_request_hash`` outputs).  The two leading characters name the shard
#: directory, so anything outside this alphabet never becomes a path.
_KEY_PATTERN = re.compile(r"[0-9a-f]{3,128}")

#: ``(path, digest)`` pairs already warned about, so a corrupt file produces
#: exactly one :class:`CorruptCacheWarning` per process.
_WARNED_CORRUPT: set[tuple[str, str]] = set()


class CorruptCacheWarning(UserWarning):
    """A cache file failed to parse; its bytes were preserved as a
    ``.corrupt-<digest>`` sidecar before the store read it as empty."""


class CacheStore(Protocol):
    """The persistence surface :class:`~repro.eval.runner.ResultCache` and
    :class:`~repro.tune.planner.PlanCache` program against.

    ``get`` returns the entry under a key or ``None`` (missing and malformed
    are both misses); ``put`` stages an entry; ``flush`` persists staged
    entries atomically; ``keys`` lists every visible key (persisted, staged
    and — for migrating stores — legacy).
    """

    @property
    def path(self) -> Path: ...

    def __len__(self) -> int: ...

    def get(self, key: str) -> JsonDict | None: ...

    def put(self, key: str, entry: JsonDict) -> None: ...

    def flush(self) -> None: ...

    def keys(self) -> list[str]: ...


# --------------------------------------------------------------------------- #
# Atomic-write and corrupt-file primitives
# --------------------------------------------------------------------------- #


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` crash- and multi-writer-safely.

    A unique temp file (:func:`tempfile.mkstemp`, so concurrent writers never
    collide on a shared ``.tmp`` name) in the target directory is written,
    ``fsync``-ed and renamed over ``path`` with :func:`os.replace`.  Readers
    observe either the old bytes or the new bytes, never a prefix; a writer
    that dies mid-write leaves only a stray ``*.tmp`` for ``cache gc``.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def preserve_corrupt_file(path: Path, raw: bytes, *, reason: str) -> Path:
    """Quarantine a corrupt cache file's bytes next to it.

    The evidence lands in ``<name>.corrupt-<digest>`` (content-addressed, so
    repeated loads of the same corruption are idempotent) and a
    :class:`CorruptCacheWarning` fires once per ``(path, digest)`` per
    process.  The original file is left for the caller to overwrite or
    remove — the point is that the next flush no longer destroys the only
    copy of whatever went wrong.
    """
    digest = hashlib.blake2b(raw, digest_size=8).hexdigest()
    sidecar = path.with_name(f"{path.name}.corrupt-{digest}")
    if not sidecar.exists():
        atomic_write_bytes(sidecar, raw)
    token = (str(path), digest)
    if token not in _WARNED_CORRUPT:
        _WARNED_CORRUPT.add(token)
        warnings.warn(
            f"cache file {path} is corrupt ({reason}); its bytes were "
            f"preserved as {sidecar.name} and the store reads as empty",
            CorruptCacheWarning,
            stacklevel=2,
        )
    return sidecar


def load_json_entries(path: Path, *, quarantine: bool = True) -> dict[str, Any]:
    """Tolerantly load a legacy single-file store's key -> entry mapping.

    A missing file reads as empty.  A file that is not a JSON object is
    *corrupt*: its bytes are preserved via :func:`preserve_corrupt_file`
    (unless ``quarantine`` is false) and it reads as empty.  Values are
    returned untyped — entry-level malformation is the caller's per-key
    miss, not a file-level failure.
    """
    try:
        raw = path.read_bytes()
    except OSError:
        return {}
    loaded: object = None
    try:
        loaded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        loaded = None
    if not isinstance(loaded, dict):
        if quarantine and raw.strip():
            preserve_corrupt_file(path, raw, reason="not a JSON object")
        return {}
    return {str(key): value for key, value in loaded.items()}


# --------------------------------------------------------------------------- #
# Stores
# --------------------------------------------------------------------------- #


class JsonFileStore:
    """Single-file JSON store with tolerant loads and atomic writes.

    The **legacy** persistence substrate: one debuggable JSON file mapping
    string keys to dict entries, loaded eagerly and rewritten wholesale on
    ``flush``.  It is inherently last-writer-wins across processes — two
    concurrent writers each load the file once and the second flush drops the
    first writer's entries — which is why :class:`BlobStore` replaced it as
    the default; it remains for single-writer uses and as the read-through
    migration source.

    The flush path uses :func:`atomic_write_bytes` (unique temp file +
    ``fsync`` + ``os.replace``), so two processes flushing the same path can
    race on *which* snapshot wins but can never interleave bytes; a corrupt
    file on load is preserved as a ``.corrupt-<digest>`` sidecar instead of
    being clobbered by the next flush.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._dirty = False
        self._entries: dict[str, Any] = load_json_entries(self.path)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> JsonDict | None:
        """The entry under ``key``, or ``None`` for missing/malformed ones."""
        entry = self._entries.get(key)
        return entry if isinstance(entry, dict) else None

    def put(self, key: str, entry: JsonDict) -> None:
        self._entries[key] = entry
        self._dirty = True

    def keys(self) -> list[str]:
        return sorted(
            key for key, entry in self._entries.items() if isinstance(entry, dict)
        )

    def flush(self) -> None:
        """Write the store atomically (unique temp + fsync + rename)."""
        if not self._dirty:
            return
        data = json.dumps(self._entries, sort_keys=True, indent=1)
        atomic_write_bytes(self.path, data.encode("utf-8"))
        self._dirty = False


class BlobStore:
    """Content-addressed, sharded dir-of-blobs cache store.

    One canonical-JSON envelope per key under ``<root>/<key[:2]>/<key>.json``;
    every write is atomic per entry (:func:`atomic_write_bytes`), so N
    processes hammering one store lose nothing — each key is its own file,
    and writers of the same key write byte-identical content by the purity
    contract.  ``salt`` stamps each envelope with the cache generation that
    produced it (``cache gc --keep-salt`` retires orphaned generations);
    ``legacy_path`` names the single-file store this root migrates from —
    keys missing from the blob tree are served from it and written back as
    blobs on first touch, so a warm legacy cache stays warm with zero
    recomputation.

    ``put`` stages entries in memory; ``flush`` persists them one atomic
    file per key.  ``get`` always consults the staged set, then the blob
    tree, then the legacy file — so entries written by *other* processes
    after construction are visible, unlike the eagerly-loaded legacy store.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        salt: str | None = None,
        legacy_path: str | Path | None = None,
    ) -> None:
        self.root = Path(root)
        self.salt = salt
        self.legacy_path = Path(legacy_path) if legacy_path is not None else None
        self._pending: dict[str, JsonDict] = {}
        self._legacy: dict[str, Any] | None = None

    @property
    def path(self) -> Path:
        """The store's on-disk location (the shard-tree root)."""
        return self.root

    # ------------------------------ reading ------------------------------ #
    def _legacy_entries(self) -> dict[str, Any]:
        if self._legacy is None:
            if self.legacy_path is not None:
                self._legacy = load_json_entries(self.legacy_path)
            else:
                self._legacy = {}
        return self._legacy

    def _blob_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _read_blob(self, key: str) -> JsonDict | None:
        if _KEY_PATTERN.fullmatch(key) is None:
            return None
        path = self._blob_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        envelope: object = None
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # A blob only ever appears via os.replace, so a parse failure
            # means outside interference, not a crashed writer: preserve the
            # evidence and clear the slot so the cell can be recomputed.
            preserve_corrupt_file(path, raw, reason="unparseable blob")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(envelope, dict):
            return None
        entry = envelope.get("entry")
        return entry if isinstance(entry, dict) else None

    def get(self, key: str) -> JsonDict | None:
        """The entry under ``key`` from the staged set, the blob tree or the
        legacy file — or ``None``.  A legacy hit is written back as a blob
        (read-through migration), so even an all-hits warm run migrates."""
        staged = self._pending.get(key)
        if staged is not None:
            return staged
        entry = self._read_blob(key)
        if entry is not None:
            return entry
        legacy = self._legacy_entries().get(key)
        if isinstance(legacy, dict):
            if _KEY_PATTERN.fullmatch(key) is not None:
                self._write_blob(key, legacy)
            return legacy
        return None

    def keys(self) -> list[str]:
        """Every visible key: persisted blobs, staged entries and
        (well-formed) legacy entries."""
        found = set(self._pending)
        for blob in _iter_blob_files(self.root):
            found.add(blob.name[: -len(".json")])
        for key, entry in self._legacy_entries().items():
            if isinstance(entry, dict):
                found.add(key)
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------ writing ------------------------------ #
    def put(self, key: str, entry: JsonDict) -> None:
        if _KEY_PATTERN.fullmatch(key) is None:
            raise ValueError(
                f"invalid cache key {key!r}: blob keys are lowercase hex "
                "digests (canonical_config_hash output)"
            )
        self._pending[key] = entry

    def _write_blob(self, key: str, entry: JsonDict) -> None:
        envelope = {"key": key, "salt": self.salt, "entry": entry}
        data = json.dumps(envelope, sort_keys=True, indent=1)
        atomic_write_bytes(self._blob_path(key), data.encode("utf-8"))

    def flush(self) -> None:
        """Persist every staged entry, one atomic file per key."""
        for key in sorted(self._pending):
            self._write_blob(key, self._pending[key])
        self._pending.clear()


def blob_root_for(path: str | Path) -> Path:
    """The blob root paired with a legacy single-file store path
    (``sweep-cache.json`` -> ``sweep-cache.blobs``)."""
    resolved = Path(path)
    return resolved.with_name(resolved.stem + BLOB_SUFFIX)


def make_store(
    path: str | Path, *, backend: str = "blob", salt: str | None = None
) -> CacheStore:
    """Build the cache store behind a legacy-store path.

    ``backend="blob"`` (the default) returns a :class:`BlobStore` rooted at
    :func:`blob_root_for` the path, reading through to the legacy file;
    ``backend="json"`` returns the legacy :class:`JsonFileStore` itself.
    """
    resolved = Path(path)
    if backend == "json":
        return JsonFileStore(resolved)
    if backend == "blob":
        return BlobStore(blob_root_for(resolved), salt=salt, legacy_path=resolved)
    raise ValueError(f"unknown cache store backend {backend!r}: use 'blob' or 'json'")


# --------------------------------------------------------------------------- #
# Fleet hygiene: stats / gc / migrate
# --------------------------------------------------------------------------- #


def _iter_blob_files(root: Path) -> Iterator[Path]:
    """Every committed blob file under a shard-tree root, in sorted order
    (corrupt sidecars and stray temp files excluded)."""
    if not root.is_dir():
        return
    for shard in sorted(root.iterdir()):
        if not shard.is_dir():
            continue
        for blob in sorted(shard.iterdir()):
            if (
                blob.is_file()
                and blob.suffix == ".json"
                and ".corrupt-" not in blob.name
            ):
                yield blob


def _iter_stray_tmp_files(root: Path) -> Iterator[Path]:
    """Temp files a crashed writer left behind under a shard-tree root."""
    if not root.is_dir():
        return
    for shard in sorted(root.iterdir()):
        if not shard.is_dir():
            continue
        for child in sorted(shard.iterdir()):
            if child.is_file() and child.suffix == ".tmp":
                yield child


@dataclass
class FamilyStats:
    """Accounting for one cell family inside a cache directory."""

    name: str
    blobs: int = 0
    blob_bytes: int = 0
    shards: int = 0
    salts: dict[str, int] = field(default_factory=dict)
    legacy_entries: int = 0
    corrupt_sidecars: int = 0
    stray_tmp: int = 0

    def to_dict(self) -> JsonDict:
        return {
            "name": self.name,
            "blobs": self.blobs,
            "blob_bytes": self.blob_bytes,
            "shards": self.shards,
            "salts": dict(sorted(self.salts.items())),
            "legacy_entries": self.legacy_entries,
            "corrupt_sidecars": self.corrupt_sidecars,
            "stray_tmp": self.stray_tmp,
        }

    def describe(self) -> str:
        salts = (
            ", ".join(f"{salt}={n}" for salt, n in sorted(self.salts.items()))
            or "none"
        )
        return (
            f"{self.name}: {self.blobs} blobs ({self.blob_bytes} bytes, "
            f"{self.shards} shards; salts: {salts}), legacy entries: "
            f"{self.legacy_entries}, corrupt sidecars: {self.corrupt_sidecars}, "
            f"stray tmp: {self.stray_tmp}"
        )


def discover_families(cache_dir: Path) -> list[str]:
    """The cell-family names present in a cache directory — one per blob
    root (``<name>.blobs/``) or legacy file (``<name>.json``)."""
    names: set[str] = set()
    if not cache_dir.is_dir():
        return []
    for child in sorted(cache_dir.iterdir()):
        if child.is_dir() and child.name.endswith(BLOB_SUFFIX):
            names.add(child.name[: -len(BLOB_SUFFIX)])
        elif (
            child.is_file()
            and child.suffix == ".json"
            and ".corrupt-" not in child.name
        ):
            names.add(child.stem)
    return sorted(names)


def _count_corrupt_sidecars(cache_dir: Path, name: str) -> int:
    count = 0
    legacy_prefix = f"{name}.json.corrupt-"
    if cache_dir.is_dir():
        count += sum(
            1
            for child in cache_dir.iterdir()
            if child.is_file() and child.name.startswith(legacy_prefix)
        )
    root = cache_dir / (name + BLOB_SUFFIX)
    if root.is_dir():
        for shard in root.iterdir():
            if shard.is_dir():
                count += sum(
                    1
                    for child in shard.iterdir()
                    if child.is_file() and ".corrupt-" in child.name
                )
    return count


def collect_stats(cache_dir: Path) -> list[FamilyStats]:
    """Per-family accounting over every store in a cache directory."""
    stats: list[FamilyStats] = []
    for name in discover_families(cache_dir):
        family = FamilyStats(name=name)
        root = cache_dir / (name + BLOB_SUFFIX)
        shards: set[str] = set()
        for blob in _iter_blob_files(root):
            family.blobs += 1
            family.blob_bytes += blob.stat().st_size
            shards.add(blob.parent.name)
            envelope: object = None
            try:
                envelope = json.loads(blob.read_bytes().decode("utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                envelope = None
            salt = envelope.get("salt") if isinstance(envelope, dict) else None
            label = salt if isinstance(salt, str) else "<unsalted>"
            family.salts[label] = family.salts.get(label, 0) + 1
        family.shards = len(shards)
        family.stray_tmp = sum(1 for _ in _iter_stray_tmp_files(root))
        legacy = cache_dir / (name + ".json")
        if legacy.is_file():
            family.legacy_entries = sum(
                1
                for entry in load_json_entries(legacy, quarantine=False).values()
                if isinstance(entry, dict)
            )
        family.corrupt_sidecars = _count_corrupt_sidecars(cache_dir, name)
        stats.append(family)
    return stats


@dataclass
class GcResult:
    """Outcome of one :func:`gc_blobs` pass over a blob root."""

    examined: int = 0
    kept: int = 0
    removed: int = 0
    removed_bytes: int = 0
    quarantined: int = 0
    tmp_removed: int = 0

    def to_dict(self) -> JsonDict:
        return {
            "examined": self.examined,
            "kept": self.kept,
            "removed": self.removed,
            "removed_bytes": self.removed_bytes,
            "quarantined": self.quarantined,
            "tmp_removed": self.tmp_removed,
        }


def gc_blobs(
    root: Path,
    keep_salts: frozenset[str],
    *,
    drop_unsalted: bool = False,
    dry_run: bool = False,
) -> GcResult:
    """Retire blobs whose envelope salt is not in ``keep_salts``.

    Unsalted envelopes (read-through-migrated legacy entries carry
    ``salt: null``) are kept unless ``drop_unsalted``; unparseable blobs are
    quarantined as ``.corrupt-`` sidecars and removed; stray ``*.tmp`` files
    from crashed writers are deleted.  ``dry_run`` counts without deleting.
    Run gc only while no sweep is writing to the directory — it may remove a
    live writer's in-flight temp file.
    """
    result = GcResult()
    for blob in _iter_blob_files(root):
        result.examined += 1
        size = blob.stat().st_size
        envelope: object = None
        raw = b""
        try:
            raw = blob.read_bytes()
            envelope = json.loads(raw.decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            envelope = None
        if not isinstance(envelope, dict):
            result.quarantined += 1
            if not dry_run:
                preserve_corrupt_file(blob, raw, reason="unparseable blob")
                blob.unlink(missing_ok=True)
            continue
        salt = envelope.get("salt")
        keep = (isinstance(salt, str) and salt in keep_salts) or (
            salt is None and not drop_unsalted
        )
        if keep:
            result.kept += 1
            continue
        result.removed += 1
        result.removed_bytes += size
        if not dry_run:
            blob.unlink(missing_ok=True)
    for tmp in _iter_stray_tmp_files(root):
        result.tmp_removed += 1
        if not dry_run:
            tmp.unlink(missing_ok=True)
    return result


@dataclass
class MigrateResult:
    """Outcome of one :func:`migrate_legacy_file` pass."""

    migrated: int = 0
    skipped_existing: int = 0
    skipped_invalid: int = 0
    removed_legacy: bool = False

    def to_dict(self) -> JsonDict:
        return {
            "migrated": self.migrated,
            "skipped_existing": self.skipped_existing,
            "skipped_invalid": self.skipped_invalid,
            "removed_legacy": self.removed_legacy,
        }


def migrate_legacy_file(
    legacy_path: Path, *, remove_legacy: bool = False
) -> MigrateResult:
    """Bulk-migrate a legacy single-file store into its paired blob root.

    Entries already present as blobs are skipped (blobs win: they may be
    fresher than the legacy snapshot); non-dict entries and non-hex keys are
    counted as invalid and left behind.  Migrated envelopes carry
    ``salt: null`` — the legacy format never recorded which generation wrote
    an entry (the salt only participated in the key), so gc keeps them until
    ``--drop-unsalted``.  With ``remove_legacy`` the file is deleted once
    every valid entry is safely a blob.
    """
    result = MigrateResult()
    entries = load_json_entries(legacy_path)
    store = BlobStore(blob_root_for(legacy_path))
    for key in sorted(entries):
        entry = entries[key]
        if not isinstance(entry, dict) or _KEY_PATTERN.fullmatch(key) is None:
            result.skipped_invalid += 1
            continue
        if store._read_blob(key) is not None:
            result.skipped_existing += 1
            continue
        store.put(key, entry)
        result.migrated += 1
    store.flush()
    if remove_legacy and result.skipped_invalid == 0 and legacy_path.is_file():
        legacy_path.unlink()
        result.removed_legacy = True
    return result


# --------------------------------------------------------------------------- #
# CLI: python -m repro.eval cache {stats,gc,migrate}
# --------------------------------------------------------------------------- #


def _build_parser(default_salt: str | None) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval cache",
        description=(
            "Inspect and maintain a sweep-cache directory (content-addressed "
            "blob stores plus their legacy single-file ancestors)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser(
        "stats", help="per-family entry / byte / salt accounting"
    )
    stats.add_argument("--cache-dir", required=True, metavar="PATH")
    stats.add_argument(
        "--json", dest="as_json", action="store_true", help="emit JSON instead of text"
    )

    gc = commands.add_parser(
        "gc", help="retire blobs of orphaned cache salts and stray temp files"
    )
    gc.add_argument("--cache-dir", required=True, metavar="PATH")
    gc.add_argument(
        "--keep-salt",
        action="append",
        default=None,
        metavar="SALT",
        help=(
            "cache generation to keep (repeatable; defaults to the current "
            "MODEL_VERSION)"
        ),
    )
    gc.add_argument(
        "--drop-unsalted",
        action="store_true",
        help="also remove migrated legacy entries (their envelopes carry salt: null)",
    )
    gc.add_argument(
        "--dry-run", action="store_true", help="report what would be removed"
    )

    migrate = commands.add_parser(
        "migrate", help="bulk-convert legacy single-file stores into blob roots"
    )
    migrate.add_argument("--cache-dir", required=True, metavar="PATH")
    migrate.add_argument(
        "--remove-legacy",
        action="store_true",
        help="delete each legacy file after its entries are safely blobs",
    )
    return parser


def cache_main(
    argv: list[str] | None = None, *, default_salt: str | None = None
) -> int:
    """Entry point of ``python -m repro.eval cache`` (see module docstring)."""
    parser = _build_parser(default_salt)
    args = parser.parse_args(argv)
    cache_dir = Path(args.cache_dir)
    if not cache_dir.is_dir():
        print(f"error: cache directory {cache_dir} does not exist", file=sys.stderr)
        return 2

    if args.command == "stats":
        stats = collect_stats(cache_dir)
        if args.as_json:
            print(json.dumps([family.to_dict() for family in stats], indent=1))
        elif not stats:
            print(f"no cache stores in {cache_dir}")
        else:
            for family in stats:
                print(family.describe())
            print(
                f"total: {sum(f.blobs for f in stats)} blobs, "
                f"{sum(f.blob_bytes for f in stats)} bytes, "
                f"{sum(f.legacy_entries for f in stats)} legacy entries"
            )
        return 0

    if args.command == "gc":
        salts = args.keep_salt if args.keep_salt else None
        if salts is None:
            if default_salt is None:
                print("error: gc needs at least one --keep-salt", file=sys.stderr)
                return 2
            salts = [default_salt]
        keep = frozenset(salts)
        for name in discover_families(cache_dir):
            root = cache_dir / (name + BLOB_SUFFIX)
            result = gc_blobs(
                root, keep, drop_unsalted=args.drop_unsalted, dry_run=args.dry_run
            )
            verb = "would remove" if args.dry_run else "removed"
            print(
                f"{name}: {verb} {result.removed} of {result.examined} blobs "
                f"({result.removed_bytes} bytes), kept {result.kept}, "
                f"quarantined {result.quarantined}, stray tmp: {result.tmp_removed}"
            )
        print(f"keep salts: {', '.join(sorted(keep))}")
        return 0

    if args.command == "migrate":
        migrated_any = False
        for name in discover_families(cache_dir):
            legacy = cache_dir / (name + ".json")
            if not legacy.is_file():
                continue
            migrated_any = True
            result = migrate_legacy_file(legacy, remove_legacy=args.remove_legacy)
            removed = ", legacy file removed" if result.removed_legacy else ""
            print(
                f"{name}: migrated {result.migrated} entries "
                f"(already blobs: {result.skipped_existing}, invalid: "
                f"{result.skipped_invalid}){removed}"
            )
        if not migrated_any:
            print(f"no legacy stores to migrate in {cache_dir}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")
