"""ResNet proxy model for the accuracy experiments.

A small residual CNN (conv stem, two residual stages with batch-norm, global
average pooling and a linear classifier) standing in for ResNet50.  Its
prunable weights are the convolution weights in implicit-GEMM layout — the
matrices the Shfl-BW convolution kernel prunes — and it is evaluated with
top-1 accuracy on the synthetic classification task, mirroring the ResNet50
column of Table 1.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Batch
from ..nn.functional import cross_entropy
from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
)
from ..nn.metrics import top1_accuracy
from ..nn.tensor import Tensor, no_grad

__all__ = ["ResNetConfig", "ResidualBlock", "ResNetProxy"]


class ResNetConfig:
    """Hyper-parameters of the proxy ResNet."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width: int = 64,
        num_blocks: int = 2,
        seed: int = 0,
    ):
        if width <= 0 or num_blocks <= 0:
            raise ValueError("width and num_blocks must be positive")
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.width = width
        self.num_blocks = num_blocks
        self.seed = seed


class ResidualBlock(Module):
    """Two 3x3 convolutions with batch norm and an identity skip."""

    def __init__(self, channels: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.conv2 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + x).relu()


class ResNetProxy(Module):
    """Small residual CNN classifier (ResNet50 stand-in)."""

    metric_name = "Top-1 Acc.%"

    def __init__(self, config: ResNetConfig | None = None):
        super().__init__()
        self.config = config or ResNetConfig()
        rng = np.random.default_rng(self.config.seed)
        self.stem = Conv2d(
            self.config.in_channels, self.config.width, 3, padding=1, bias=False, rng=rng
        )
        self.stem_bn = BatchNorm2d(self.config.width)
        self.blocks = [ResidualBlock(self.config.width, rng) for _ in range(self.config.num_blocks)]
        for idx, block in enumerate(self.blocks):
            setattr(self, f"block{idx}", block)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(self.config.width, self.config.num_classes, rng=rng)

    def forward(self, images: np.ndarray | Tensor) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images, dtype=np.float64))
        x = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            x = block(x)
        features = self.pool(x)
        return self.classifier(features)

    def loss(self, batch: Batch) -> Tensor:
        logits = self.forward(batch.inputs)
        return cross_entropy(logits, batch.targets)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.forward(inputs)
        return logits.data.argmax(axis=-1)

    def evaluate(self, batch: Batch) -> float:
        """Top-1 accuracy (percent) on a batch."""
        predictions = self.predict(batch.inputs)
        return top1_accuracy(batch.targets, predictions)
