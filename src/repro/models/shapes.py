"""Real layer shapes of the paper's three workloads.

The kernel-speedup experiments (Figure 6 and the Section 6.2 headline
numbers) run on the GEMM shapes of the *real* models — Transformer [1],
GNMT [5] and ResNet50 [4] — exactly as the paper does ("when reporting model
kernel speedup, we use the shapes in real model").  Only the
computation-intensive linear and 2-D convolution layers are counted
(Section 6.1).

Linear layers are described directly by their ``(M, K)`` weight shape with
``N`` tokens of activation; convolutions carry their :class:`Conv2dSpec` and
input resolution and are lowered to implicit-GEMM shapes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..kernels.base import GEMMShape, conv_to_gemm_shape
from ..sparse.spconv import Conv2dSpec

__all__ = [
    "LayerShape",
    "transformer_layers",
    "gnmt_layers",
    "resnet50_layers",
    "model_layers",
    "MODEL_NAMES",
]

MODEL_NAMES = ("transformer", "gnmt", "resnet50")


@dataclass(frozen=True)
class LayerShape:
    """One prunable layer of a workload, in implicit-GEMM terms.

    Attributes
    ----------
    name:
        Layer label, e.g. ``"ffn1"`` or ``"conv3_1x1"``.
    gemm:
        GEMM shape: ``M`` is the weight-row (output feature) dimension — the
        dimension the sparsity patterns group — ``K`` the reduction and ``N``
        the token / pixel batch.
    count:
        How many times the layer (shape) occurs in the model; speedups are
        weighted by ``count`` so frequent layers dominate, as they do in the
        real model.
    kind:
        ``"linear"`` or ``"conv"``.
    conv:
        The convolution description for ``kind == "conv"`` layers, so the
        evaluation harness can route them through the kernels'
        ``estimate_conv`` (implicit GEMM + unfolding overhead) instead of
        treating them as plain GEMMs.
    batch, height, width:
        Input batch and spatial resolution of a convolution layer.
    """

    name: str
    gemm: GEMMShape
    count: int = 1
    kind: str = "linear"
    conv: Conv2dSpec | None = None
    batch: int = 1
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.kind not in ("linear", "conv"):
            raise ValueError("kind must be 'linear' or 'conv'")
        if self.kind == "conv":
            if self.conv is None:
                raise ValueError("conv layers must carry their Conv2dSpec")
            if min(self.batch, self.height, self.width) <= 0:
                raise ValueError("conv layers need positive batch/height/width")
            expected = conv_to_gemm_shape(self.conv, self.batch, self.height, self.width)
            if expected != self.gemm:
                raise ValueError(
                    f"gemm shape {self.gemm} does not match the implicit-GEMM "
                    f"lowering {expected} of the conv spec"
                )

    @property
    def weighted_flops(self) -> float:
        """Dense FLOPs of all occurrences of this layer."""
        return self.gemm.flops * self.count

    def with_tokens(self, tokens: int) -> "LayerShape":
        """This layer re-shaped to a different activation batch width.

        Linear layers only: ``N`` is the token dimension of their GEMM, so a
        serving-time batch sweep just swaps it (decode-time widths are as
        skinny as ``N = 1``).  A convolution's ``N`` is ``batch * OH * OW`` —
        re-batching it changes the lowering, not just one dimension — so it
        is rejected rather than silently mis-shaped.
        """
        if self.kind != "linear":
            raise ValueError(
                f"layer {self.name!r} is {self.kind}; only linear layers "
                "support token re-batching"
            )
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        return dataclasses.replace(
            self, gemm=GEMMShape(m=self.gemm.m, n=int(tokens), k=self.gemm.k)
        )


def transformer_layers(*, tokens: int = 256) -> list[LayerShape]:
    """Transformer-big encoder/decoder GEMM layers (d_model=1024, d_ff=4096).

    ``tokens`` is the activation batch (batch size x sequence length) used
    for the SpMM's dense operand.
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    d_model, d_ff, layers = 1024, 4096, 6
    return [
        LayerShape("attn_qkv", GEMMShape(m=3 * d_model, n=tokens, k=d_model), count=2 * layers),
        LayerShape("attn_out", GEMMShape(m=d_model, n=tokens, k=d_model), count=2 * layers),
        LayerShape("ffn1", GEMMShape(m=d_ff, n=tokens, k=d_model), count=2 * layers),
        LayerShape("ffn2", GEMMShape(m=d_model, n=tokens, k=d_ff), count=2 * layers),
    ]


def gnmt_layers(*, batch: int = 128) -> list[LayerShape]:
    """GNMT LSTM GEMM layers (hidden size 1024, 8 layers, 4 decoder steps
    batched).

    Each LSTM layer multiplies a ``4096 x 1024`` gate matrix by the input and
    the recurrent state; the attention and the output projection are the other
    computation-intensive GEMMs.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    hidden, layers, vocab = 1024, 8, 32000
    return [
        LayerShape("lstm_ih", GEMMShape(m=4 * hidden, n=batch, k=hidden), count=layers),
        LayerShape("lstm_hh", GEMMShape(m=4 * hidden, n=batch, k=hidden), count=layers),
        LayerShape("attention", GEMMShape(m=hidden, n=batch, k=2 * hidden), count=1),
        LayerShape("proj", GEMMShape(m=vocab, n=batch, k=hidden), count=1),
    ]


def resnet50_layers(*, batch: int = 32, image_size: int = 224) -> list[LayerShape]:
    """Representative ResNet50 convolution layers as implicit-GEMM shapes.

    One bottleneck block per stage is listed with the block's repeat count;
    the 7x7 stem and the final FC are excluded (their channel counts make
    them poor pruning targets, matching common practice).
    """
    if batch <= 0 or image_size <= 0:
        raise ValueError("batch and image_size must be positive")

    def conv(name: str, cin: int, cout: int, k: int, resolution: int, count: int, stride: int = 1) -> LayerShape:
        spec = Conv2dSpec(
            in_channels=cin,
            out_channels=cout,
            kernel_size=k,
            stride=stride,
            padding=k // 2,
        )
        gemm = conv_to_gemm_shape(spec, batch, resolution, resolution)
        return LayerShape(
            name,
            gemm,
            count=count,
            kind="conv",
            conv=spec,
            batch=batch,
            height=resolution,
            width=resolution,
        )

    scale = image_size / 224.0
    r56 = max(1, int(56 * scale))
    r28 = max(1, int(28 * scale))
    r14 = max(1, int(14 * scale))
    r7 = max(1, int(7 * scale))
    return [
        conv("conv2_1x1a", 256, 64, 1, r56, count=3),
        conv("conv2_3x3", 64, 64, 3, r56, count=3),
        conv("conv2_1x1b", 64, 256, 1, r56, count=3),
        conv("conv3_1x1a", 512, 128, 1, r28, count=4),
        conv("conv3_3x3", 128, 128, 3, r28, count=4),
        conv("conv3_1x1b", 128, 512, 1, r28, count=4),
        conv("conv4_1x1a", 1024, 256, 1, r14, count=6),
        conv("conv4_3x3", 256, 256, 3, r14, count=6),
        conv("conv4_1x1b", 256, 1024, 1, r14, count=6),
        conv("conv5_1x1a", 2048, 512, 1, r7, count=3),
        conv("conv5_3x3", 512, 512, 3, r7, count=3),
        conv("conv5_1x1b", 512, 2048, 1, r7, count=3),
    ]


def model_layers(model: str, **kwargs) -> list[LayerShape]:
    """Layer shapes of one of the paper's three workloads by name."""
    key = model.strip().lower()
    if key == "transformer":
        return transformer_layers(**kwargs)
    if key == "gnmt":
        return gnmt_layers(**kwargs)
    if key in ("resnet50", "resnet"):
        return resnet50_layers(**kwargs)
    raise ValueError(f"unknown model {model!r}; expected one of {MODEL_NAMES}")
