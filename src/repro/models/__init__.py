"""Workload definitions: real Transformer / GNMT / ResNet50 layer shapes for
the kernel-speedup experiments, and small proxy models (trained on synthetic
tasks) for the accuracy experiments."""

from .gnmt import GNMTConfig, GNMTProxy
from .resnet import ResidualBlock, ResNetConfig, ResNetProxy
from .shapes import (
    MODEL_NAMES,
    LayerShape,
    gnmt_layers,
    model_layers,
    resnet50_layers,
    transformer_layers,
)
from .transformer import TransformerBlock, TransformerConfig, TransformerProxy

__all__ = [
    "GNMTConfig",
    "GNMTProxy",
    "ResidualBlock",
    "ResNetConfig",
    "ResNetProxy",
    "MODEL_NAMES",
    "LayerShape",
    "gnmt_layers",
    "model_layers",
    "resnet50_layers",
    "transformer_layers",
    "TransformerBlock",
    "TransformerConfig",
    "TransformerProxy",
]
